//! # winslett
//!
//! Umbrella crate for the reproduction of Winslett, *"A Model-Theoretic
//! Approach to Updating Logical Databases"* (PODS 1986). Re-exports the
//! workspace crates under stable module names:
//!
//! * [`logic`] — ground FOL kernel (atoms, wffs, parser, CNF, SAT).
//! * [`theory`] — extended relational theories and the §3.6 indexed store.
//! * [`worlds`] — alternative worlds and the possible-worlds baseline.
//! * [`ldml`] — the LDML update language and equivalence theorems.
//! * [`gua`] — the Ground Update Algorithm and simplification.
//! * [`db`] — the `LogicalDatabase` façade, queries, nulls, workloads.
//! * [`analyze`] — the pre-execution static analyzer behind `ldml-lint`.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.
//!
//! ```
//! use winslett::db::LogicalDatabase;
//!
//! let mut db = LogicalDatabase::new();
//! db.declare_relation("Orders", 3)?;
//! db.declare_relation("InStock", 2)?;
//! db.load_fact("Orders", &["700", "32", "9"])?;
//! db.load_fact("InStock", &["32", "1"])?;
//!
//! // Incomplete information: a branching update.
//! db.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")?;
//! assert_eq!(db.world_names()?.len(), 3);
//! assert!(db.is_possible("Orders(100,32,1)")?);
//! assert!(!db.is_certain("Orders(100,32,1)")?);
//!
//! // The paper's MODIFY example.
//! db.execute("MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)")?;
//!
//! // Exact knowledge arrives: ASSERT prunes worlds.
//! db.execute("ASSERT Orders(100,32,7) & !Orders(100,32,1)")?;
//! assert!(db.is_certain("Orders(100,32,7)")?);
//!
//! // Certain vs possible answers to conjunctive queries.
//! let ans = db.query("Orders(?o, 32, ?q)")?;
//! assert_eq!(ans.certain.len(), 2);
//!
//! // Updates with variables (§4): expanded to a set of ground updates and
//! // applied simultaneously.
//! db.execute_variable("DELETE Orders(?o, 32, ?q) WHERE T")?;
//! assert!(db.is_certain("!Orders(100,32,7)")?);
//! # Ok::<(), winslett::db::DbError>(())
//! ```

pub use winslett_analyze as analyze;
pub use winslett_core as db;
pub use winslett_gua as gua;
pub use winslett_ldml as ldml;
pub use winslett_logic as logic;
pub use winslett_theory as theory;
pub use winslett_worlds as worlds;
