//! Side-by-side comparison of the PODS-1986 update semantics and the PMA
//! (minimal-change) semantics of Winslett's 1988 follow-up — the
//! "other possible choices for update semantics" that §3.4 defers to a
//! future publication.
//!
//! ```sh
//! cargo run --example semantics_compare
//! ```

use winslett::ldml::Update;
use winslett::logic::{Formula, ModelLimit, Wff};
use winslett::theory::Theory;
use winslett::worlds::WorldsEngine;

fn show(label: &str, engine: &WorldsEngine, t: &Theory) {
    println!("  {label}: {} world(s)", engine.len());
    for w in engine.worlds() {
        println!("    {{{}}}", t.format_world(w).join(", "));
    }
}

fn main() {
    // One relation, two tuples; `a` is known to hold.
    let mut t = Theory::new();
    let r = t.declare_relation("R", 1).expect("fresh schema");
    let ca = t.constant("a");
    let cb = t.constant("b");
    let a = t.atom(r, &[ca]);
    let b = t.atom(r, &[cb]);
    t.assert_atom(a);
    t.assert_not_atom(b);

    let base = WorldsEngine::from_theory(&t, ModelLimit::default()).expect("one world");
    println!("start:");
    show("both", &base, &t);

    // The discriminating update: INSERT R(a) ∨ R(b) — already satisfied.
    let u = Update::insert(Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]), Wff::t());
    println!("\nINSERT R(a) | R(b) WHERE T   (already true in the only world)");

    let mut w1986 = base.clone();
    w1986.apply(&u, &t).expect("1986 applies");
    let mut pma = base.clone();
    pma.apply_pma(&u, &t).expect("PMA applies");

    println!("\nPODS-1986 semantics — ω overrides everything known about its atoms:");
    show("1986", &w1986, &t);
    println!("\nPMA (1988) — keep models minimally distant from the original:");
    show("PMA", &pma, &t);

    assert_eq!(w1986.len(), 3);
    assert_eq!(pma.len(), 1);

    // Where change is genuinely required, the two semantics differ in how
    // much they allow: from the empty world, 1986 admits {a}, {b}, {a,b};
    // PMA only the minimal {a} and {b}.
    let mut t2 = Theory::new();
    let r2 = t2.declare_relation("R", 1).expect("fresh schema");
    let ca2 = t2.constant("a");
    let cb2 = t2.constant("b");
    let a2 = t2.atom(r2, &[ca2]);
    let b2 = t2.atom(r2, &[cb2]);
    t2.assert_not_atom(a2);
    t2.assert_not_atom(b2);
    let base2 = WorldsEngine::from_theory(&t2, ModelLimit::default()).expect("one world");
    let u2 = Update::insert(Formula::Or(vec![Wff::Atom(a2), Wff::Atom(b2)]), Wff::t());

    println!("\nfrom the empty world, same insert:");
    let mut w1986 = base2.clone();
    w1986.apply(&u2, &t2).expect("1986 applies");
    let mut pma = base2.clone();
    pma.apply_pma(&u2, &t2).expect("PMA applies");
    show("1986", &w1986, &t2);
    show("PMA ", &pma, &t2);
    assert_eq!(w1986.len(), 3);
    assert_eq!(pma.len(), 2);

    println!(
        "\nWhy the 1986 paper chose differently: its updates mean \"this wff is now\n\
         the most exact and most recent state of knowledge about these atoms\" —\n\
         INSERT g ∨ ¬g deliberately *forgets* g. PMA instead treats updates as\n\
         changes to the world. Both are implemented here; GUA realizes the 1986\n\
         semantics syntactically, and the worlds engine provides PMA for\n\
         comparison (see EXPERIMENTS.md, E9)."
    );
}
