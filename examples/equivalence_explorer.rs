//! Update-equivalence explorer (§3.4).
//!
//! Runs the Theorem 2/3/4 deciders over a catalogue of update pairs —
//! including every example the paper discusses — printing the verdict, the
//! deciding condition, and a brute-force cross-check. "Such theorems tell
//! us exactly when two updates look similar but really aren't, and when
//! two different-looking updates really are the same."
//!
//! ```sh
//! cargo run --example equivalence_explorer
//! ```

use winslett::ldml::{equivalent_brute, equivalent_updates, theorem2_sufficient, Update};
use winslett::logic::{AtomId, Formula, Wff};

fn atom(i: u32) -> Wff {
    Wff::Atom(AtomId(i))
}

fn main() {
    // Language: p = atom 0, q = atom 1, g = atom 2.
    const NUM_ATOMS: usize = 3;
    let p = || atom(0);
    let q = || atom(1);
    let g = || atom(2);

    let catalogue: Vec<(&str, Update, Update)> = vec![
        (
            "paper §3.4: INSERT p WHERE T  vs  INSERT p ∨ T WHERE T",
            Update::insert(p(), Wff::t()),
            Update::insert(Formula::Or(vec![p(), Wff::t()]), Wff::t()),
        ),
        (
            "paper §3.4: INSERT p WHERE p ∧ q  vs  INSERT q WHERE p ∧ q",
            Update::insert(p(), Formula::And(vec![p(), q()])),
            Update::insert(q(), Formula::And(vec![p(), q()])),
        ),
        (
            "paper §3.2: INSERT T  vs  INSERT g ∨ ¬g (forgetting)",
            Update::insert(Wff::t(), Wff::t()),
            Update::insert(Formula::Or(vec![g(), g().not()]), Wff::t()),
        ),
        (
            "reordered ω (Theorem 2 case): INSERT p ∧ q  vs  INSERT q ∧ p",
            Update::insert(Formula::And(vec![p(), q()]), g()),
            Update::insert(Formula::And(vec![q(), p()]), g()),
        ),
        (
            "paper §3.2 reduction: DELETE g  vs  MODIFY g TO BE ¬g",
            Update::delete(AtomId(2), Wff::t()),
            Update::modify(AtomId(2), g().not(), Wff::t()),
        ),
        (
            "paper §3.2 reduction: ASSERT p  vs  INSERT F WHERE ¬p",
            Update::assert(p()),
            Update::insert(Wff::f(), p().not()),
        ),
        (
            "different selections, lone region a no-op: INSERT p WHERE p∧q  vs  INSERT p WHERE p",
            Update::insert(p(), Formula::And(vec![p(), q()])),
            Update::insert(p(), p()),
        ),
        (
            "different selections, lone region NOT a no-op: INSERT p WHERE p∧q  vs  INSERT p WHERE q",
            Update::insert(p(), Formula::And(vec![p(), q()])),
            Update::insert(p(), q()),
        ),
        (
            "unsatisfiable selections: INSERT p WHERE p∧¬p  vs  INSERT ¬q WHERE p∧¬p",
            Update::insert(p(), Formula::And(vec![p(), p().not()])),
            Update::insert(q().not(), Formula::And(vec![p(), p().not()])),
        ),
        (
            "one-sided frozen atom: INSERT p∧q WHERE q  vs  INSERT p WHERE q",
            Update::insert(Formula::And(vec![p(), q()]), q()),
            Update::insert(p(), q()),
        ),
    ];

    println!("{:<82} {:>6} {:>6}", "update pair", "thm", "brute");
    println!("{}", "-".repeat(96));
    for (label, b1, b2) in &catalogue {
        let verdict = equivalent_updates(b1, b2, NUM_ATOMS).expect("small updates");
        let brute = equivalent_brute(b1, b2, NUM_ATOMS).expect("small universe");
        assert_eq!(
            verdict.equivalent, brute,
            "decider and brute force must agree on `{label}`"
        );
        let t2 = theorem2_sufficient(b1, b2, NUM_ATOMS);
        println!(
            "{:<82} {:>6} {:>6}",
            label,
            if verdict.equivalent { "EQ" } else { "NEQ" },
            if brute { "EQ" } else { "NEQ" },
        );
        println!(
            "    reason: {}{}",
            verdict.reason,
            if t2 {
                "  [Theorem 2 already sufficient]"
            } else {
                ""
            }
        );
    }
    println!(
        "\nAll {} verdicts cross-checked against per-model brute force.",
        catalogue.len()
    );
}
