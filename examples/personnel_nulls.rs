//! Null values in a personnel database.
//!
//! "Attribute values that are known to lie in a certain domain but whose
//! value is currently unknown" (§1) — here, new hires whose department
//! assignment is pending. Each null expands to an exactly-one disjunction
//! over its candidate domain (the finite-domain Skolem treatment; see
//! `winslett_core::nulls`), queries report certain vs possible answers,
//! and ASSERT resolves nulls as HR decides.
//!
//! ```sh
//! cargo run --example personnel_nulls
//! ```

use winslett::db::{LogicalDatabase, NullCatalog, NullableArg};
use winslett::logic::Wff;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = LogicalDatabase::new();
    db.declare_relation("WorksIn", 2)?; // WorksIn(person, dept)
    db.declare_relation("Budget", 2)?; // Budget(dept, level)

    db.load_fact("WorksIn", &["alice", "engineering"])?;
    db.load_fact("Budget", &["engineering", "high"])?;
    db.load_fact("Budget", &["sales", "low"])?;
    db.load_fact("Budget", &["support", "low"])?;

    // Bob is hired; the department is one of three.
    let mut nulls = NullCatalog::new();
    nulls.declare("bobdept", &["engineering", "sales", "support"])?;
    let insert_bob = nulls.expand_insert(
        db.theory_mut(),
        "WorksIn",
        &[NullableArg::parse("bob"), NullableArg::parse("@bobdept")],
        Wff::t(),
    )?;
    db.update(&insert_bob)?;

    println!("worlds after hiring bob with a null department:");
    for w in db.world_names()? {
        println!("  {{{}}}", w.join(", "));
    }
    assert_eq!(db.world_names()?.len(), 3);

    // Queries under the null.
    let ans = db.query("WorksIn(bob, ?d)")?;
    println!("\nbob's department — certain: {:?}", ans.certain);
    println!("bob's department — possible: {:?}", ans.possible);
    assert!(ans.certain.is_empty());
    assert_eq!(ans.possible.len(), 3);

    // A join through the null: in which budget levels might bob sit?
    let ans = db.query("WorksIn(bob, ?d) & Budget(?d, ?lvl)")?;
    println!("\nbob's (dept, budget) possibilities: {:?}", ans.possible);

    // Certain regardless of the null: bob works *somewhere* low-or-high.
    assert!(db.is_certain("WorksIn(bob,engineering) | WorksIn(bob,sales) | WorksIn(bob,support)")?);
    // Exactly-one: bob cannot be in two departments at once.
    assert!(!db.is_possible("WorksIn(bob,sales) & WorksIn(bob,support)")?);

    // Partial information first: "definitely not support".
    db.execute("ASSERT !WorksIn(bob,support)")?;
    println!(
        "\nafter ruling out support: {} worlds",
        db.world_names()?.len()
    );
    assert_eq!(db.world_names()?.len(), 2);

    // Full resolution.
    db.execute("ASSERT WorksIn(bob,engineering)")?;
    let ans = db.query("WorksIn(bob, ?d)")?;
    println!("resolved: bob certainly in {:?}", ans.certain);
    assert_eq!(ans.certain, vec![vec!["engineering".to_string()]]);

    // Engineering head-count is now certain.
    let ans = db.query("WorksIn(?p, engineering)")?;
    println!("engineering staff: {:?}", ans.certain);
    assert_eq!(ans.certain.len(), 2);

    println!("\nfinal stats: {}", db.stats());
    Ok(())
}
