//! A narrated replay of the paper's own worked examples (§3.2–§3.3),
//! printing the theory and the alternative worlds at each step so the
//! output can be checked against the paper line by line.
//!
//! ```sh
//! cargo run --example paper_walkthrough
//! ```

use winslett::gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett::ldml::Update;
use winslett::logic::{display_wff, Formula, ModelLimit, Wff};
use winslett::theory::Theory;

fn print_theory(title: &str, t: &Theory) {
    println!("\n== {title} ==");
    println!("non-axiomatic section:");
    for (_, w) in t.store.iter() {
        println!("  {}", display_wff(&w, &t.vocab, &t.atoms));
    }
    println!("alternative worlds:");
    let mut worlds: Vec<Vec<String>> = t
        .alternative_worlds(ModelLimit::default())
        .expect("small theory")
        .iter()
        .map(|w| t.format_world(w))
        .collect();
    worlds.sort();
    for w in worlds {
        println!("  {{{}}}", w.join(", "));
    }
}

fn base_theory() -> Theory {
    // §3.3: "one non-axiomatic section of the extended relational theory
    // for this database is the two wffs a and a ∨ b", with worlds
    // Model 1: a, b and Model 2: a.
    let mut t = Theory::new();
    let r = t.declare_relation("Tup", 1).expect("fresh schema");
    let ca = t.constant("a");
    let cb = t.constant("b");
    let a = t.atom(r, &[ca]);
    let b = t.atom(r, &[cb]);
    t.assert_atom(a);
    t.assert_wff(&Wff::or2(Wff::Atom(a), Wff::Atom(b)));
    t
}

fn main() {
    // ---- §3.3, the non-branching example --------------------------------
    let mut t = base_theory();
    print_theory("§3.3 start: {a, a ∨ b}", &t);

    let a = t.atom_by_name("Tup", &["a"]).expect("known atom");
    let a2 = t.atom_by_name("Tup", &["a'"]).expect("internable");
    let b = t.atom_by_name("Tup", &["b"]).expect("known atom");

    // "INSERT ¬a ∧ a′ WHERE b ∧ a, which is equivalent to the more
    //  familiar MODIFY a TO BE a′ WHERE b ∧ a"
    let update = Update::insert(
        Formula::And(vec![Wff::Atom(a).not(), Wff::Atom(a2)]),
        Formula::And(vec![Wff::Atom(b), Wff::Atom(a)]),
    );
    let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::None));
    engine.apply(&update).expect("update applies");
    print_theory(
        "§3.3 after MODIFY a TO BE a′ WHERE b ∧ a (raw GUA output)",
        &engine.theory,
    );
    engine.simplify(SimplifyLevel::Full);
    print_theory("…after §4 simplification", &engine.theory);

    // ---- §3.3, the branching example -------------------------------------
    let mut t = base_theory();
    let a = t.atom_by_name("Tup", &["a"]).expect("known atom");
    let b = t.atom_by_name("Tup", &["b"]).expect("known atom");
    let c = t.atom_by_name("Tup", &["c"]).expect("internable");
    print_theory("§3.3 branching example start: {a, a ∨ b}", &t);

    // "INSERT c ∨ a WHERE b ∧ a or, in its more familiar form,
    //  MODIFY a TO BE c ∨ a WHERE b ∧ a"
    let update = Update::modify(
        a,
        Formula::Or(vec![Wff::Atom(c), Wff::Atom(a)]),
        Wff::Atom(b),
    );
    let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::None));
    engine.set_tracing(true);
    let report = engine.apply(&update).expect("update applies");
    println!("\nGUA transcript:");
    for line in engine.take_trace() {
        println!("  {line}");
    }
    println!(
        "branching update: g = {}, renamed = {}, branching = {}",
        report.g, report.renamed, report.branching
    );
    print_theory(
        "§3.3 after MODIFY a TO BE c ∨ a WHERE b ∧ a — the paper's four worlds",
        &engine.theory,
    );

    engine.simplify(SimplifyLevel::Full);
    print_theory(
        "…after §4 simplification (worlds unchanged)",
        &engine.theory,
    );

    println!(
        "\nNote: the paper suggests the simplified section {{a ∨ b, b → (c ∨ a)}},\n\
         but that form admits a fifth world {{a, c}} — see EXPERIMENTS.md,\n\
         reproduction finding F1. Our simplifier preserves the four worlds."
    );
}
