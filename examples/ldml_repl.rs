//! An interactive LDML shell — the paper's update language as a REPL.
//!
//! ```sh
//! cargo run --example ldml_repl
//! ```
//!
//! ```text
//! > .relation Orders/3
//! > .fact Orders(700,32,9)
//! > INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T
//! ok: 1 update (branching), 3 worlds
//! > ?- Orders(?o, 32, ?q)
//! certain : [700, 9]
//! possible: [100, 1] [100, 7] [700, 9]
//! > DELETE Orders(?o, 32, ?q) WHERE T          -- variables expand + apply simultaneously
//! > .worlds
//! > .save /tmp/db.json
//! > .quit
//! ```

use std::io::{BufRead, Write as _};
use winslett::db::{save_theory, LogicalDatabase};
use winslett::gua::SimplifyLevel;

const HELP: &str = "\
LDML statements:
  INSERT <wff> WHERE <wff>          DELETE <atom> WHERE <wff>
  MODIFY <atom> TO BE <wff> WHERE <wff>          ASSERT <wff>
  (terms may be ?variables: the statement expands over matching tuples
   and the instances apply simultaneously)
Queries:
  ?- <atom> [& [!]<atom> ...]       e.g. ?- Orders(?o, 32, ?q) & !InStock(32, ?q)
  ??- <query>                       same, with per-answer world-support counts
Commands:
  .relation Name/arity    declare a relation
  .fact R(a,b,...)        load a certain fact
  .wff <wff>              load an arbitrary ground wff (disjunctive info etc.)
  .worlds                 list the alternative worlds
  .certain                tuples true in every world
  .possible               tuples true in some world
  .explain <wff>          verdict + witness/counterexample worlds
  .stats                  theory statistics
  .simplify               run a full simplification pass
  .save <path>            dump the theory as JSON
  .help                   this text
  .quit                   exit";

fn main() {
    let mut db = LogicalDatabase::new();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    println!("winslett LDML shell — .help for commands");
    loop {
        print!("> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        match run(&mut db, line) {
            Ok(Reply::Quit) => break,
            Ok(Reply::Text(t)) => println!("{t}"),
            Err(e) => println!("error: {e}"),
        }
    }
}

enum Reply {
    Text(String),
    Quit,
}

fn run(db: &mut LogicalDatabase, line: &str) -> Result<Reply, Box<dyn std::error::Error>> {
    if let Some(rest) = line.strip_prefix('.') {
        let (cmd, arg) = match rest.find(char::is_whitespace) {
            Some(i) => (&rest[..i], rest[i..].trim()),
            None => (rest, ""),
        };
        return match cmd {
            "help" => Ok(Reply::Text(HELP.into())),
            "quit" | "exit" => Ok(Reply::Quit),
            "relation" => {
                let (name, arity) = arg.split_once('/').ok_or("usage: .relation Name/arity")?;
                let arity: usize = arity.trim().parse()?;
                db.declare_relation(name.trim(), arity)?;
                Ok(Reply::Text(format!("declared {name}/{arity}")))
            }
            "fact" => {
                let open = arg.find('(').ok_or("usage: .fact R(a,b,...)")?;
                let name = arg[..open].trim();
                let body = arg[open + 1..].trim_end_matches(')');
                let args: Vec<&str> = body.split(',').map(str::trim).collect();
                db.load_fact(name, &args)?;
                Ok(Reply::Text("ok".into()))
            }
            "wff" => {
                db.load_wff(arg)?;
                Ok(Reply::Text("ok".into()))
            }
            "worlds" => {
                let worlds = db.world_names()?;
                let mut s = format!("{} alternative world(s)", worlds.len());
                for w in worlds.iter().take(32) {
                    s.push_str(&format!("\n  {{{}}}", w.join(", ")));
                }
                if worlds.len() > 32 {
                    s.push_str("\n  …");
                }
                Ok(Reply::Text(s))
            }
            "explain" => Ok(Reply::Text(db.explain(arg)?.describe())),
            "stats" => Ok(Reply::Text(db.stats().to_string())),
            "certain" | "possible" => {
                let rdb = if cmd == "certain" {
                    db.certain_facts()?
                } else {
                    db.possible_facts()?
                };
                let mut out = String::new();
                for (rel, tuples) in &rdb.relations {
                    for t in tuples {
                        out.push_str(&format!("{rel}({})\n", t.join(",")));
                    }
                }
                if out.is_empty() {
                    out = "(none)".into();
                }
                Ok(Reply::Text(out.trim_end().to_string()))
            }
            "simplify" => {
                let r = db.simplify(SimplifyLevel::Full);
                Ok(Reply::Text(format!(
                    "{} → {} nodes, {} → {} wffs",
                    r.nodes_before, r.nodes_after, r.formulas_before, r.formulas_after
                )))
            }
            "save" => {
                let json = save_theory(db.theory())?;
                std::fs::write(arg, json)?;
                Ok(Reply::Text(format!("saved to {arg}")))
            }
            other => Err(format!("unknown command .{other} (try .help)").into()),
        };
    }

    if let Some(q) = line.strip_prefix("??-") {
        let (supported, total) = db.query_with_support(q)?;
        let mut out = format!("{total} world(s)");
        for s in supported {
            out.push_str(&format!(
                "\n  [{}]  {}/{}{}",
                s.row.join(", "),
                s.support,
                total,
                if s.support == total {
                    "  (certain)"
                } else {
                    ""
                }
            ));
        }
        return Ok(Reply::Text(out));
    }

    if let Some(q) = line.strip_prefix("?-") {
        let ans = db.query(q)?;
        let fmt = |rows: &[Vec<String>]| {
            if rows.is_empty() {
                "(none)".to_string()
            } else {
                rows.iter()
                    .map(|r| format!("[{}]", r.join(", ")))
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        };
        return Ok(Reply::Text(format!(
            "certain : {}\npossible: {}",
            fmt(&ans.certain),
            fmt(&ans.possible)
        )));
    }

    // An LDML statement; route through the variable path when `?` appears.
    if line.contains('?') {
        let (n, report) = db.execute_variable(line)?;
        let worlds = db.world_names()?.len();
        Ok(Reply::Text(format!(
            "ok: {n} ground instance(s){}, {worlds} world(s)",
            if report.branching { " (branching)" } else { "" }
        )))
    } else {
        let report = db.execute(line)?;
        let worlds = db.world_names()?.len();
        Ok(Reply::Text(format!(
            "ok: 1 update{}, {worlds} world(s)",
            if report.branching { " (branching)" } else { "" }
        )))
    }
}
