//! Inventory audit under incomplete information.
//!
//! The scenario the paper's introduction motivates: a database that must
//! *record* uncertainty (an auditor knows one of several bins holds the
//! part, a shipment's quantity is disputed), keep integrity while updating
//! through it, and narrow to certainty as evidence arrives.
//!
//! Demonstrates: disjunctive loads, functional dependencies, constraint
//! enforcement via `INSERT F WHERE …`, branching updates, ASSERT
//! resolution, and certain/possible queries along the way.
//!
//! ```sh
//! cargo run --example inventory_audit
//! ```

use winslett::db::LogicalDatabase;
use winslett::theory::Dependency;

fn show(db: &LogicalDatabase, label: &str) {
    let worlds = db.world_names().expect("worlds enumerable");
    println!("\n-- {label}: {} alternative world(s)", worlds.len());
    for w in &worlds {
        println!("   {{{}}}", w.join(", "));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = LogicalDatabase::new();
    // Stored(part, bin) — where a part is stored; each part sits in one bin.
    let stored = db.declare_relation("Stored", 2)?;
    // Counted(part, qty) — audited quantity; one count per part.
    let counted = db.declare_relation("Counted", 2)?;
    db.add_dependency(Dependency::functional("one-bin", stored, 2, &[0])?);
    db.add_dependency(Dependency::functional("one-count", counted, 2, &[0])?);

    // Known facts.
    db.load_fact("Stored", &["widget", "bin1"])?;
    db.load_fact("Counted", &["widget", "40"])?;

    // The auditor knows the gadget is in bin2 or bin3, not which.
    db.load_wff("(Stored(gadget,bin2) & !Stored(gadget,bin3)) | (Stored(gadget,bin3) & !Stored(gadget,bin2))")?;
    show(&db, "after disjunctive load");

    let ans = db.query("Stored(gadget, ?b)")?;
    println!(
        "gadget bin — certain: {:?}, possible: {:?}",
        ans.certain, ans.possible
    );

    // A recount of the widget is disputed: 40 stands, or it is 38.
    db.execute("MODIFY Counted(widget,40) TO BE Counted(widget,40) | Counted(widget,38) WHERE T")?;
    show(&db, "after disputed recount (branching update)");
    assert!(!db.is_certain("Counted(widget,40)")?);
    assert!(db.is_certain("Counted(widget,40) | Counted(widget,38)")?);

    // Business rule: every stored part must have a count. Enforce for the
    // gadget: worlds without a gadget count are impossible once we record
    // its count range.
    db.execute("INSERT Counted(gadget,12) WHERE Stored(gadget,bin2)")?;
    db.execute("INSERT Counted(gadget,15) WHERE Stored(gadget,bin3)")?;
    show(
        &db,
        "after per-bin counts (selection clauses referencing other tuples)",
    );

    // Evidence arrives: bin3's camera shows the gadget.
    db.execute("ASSERT Stored(gadget,bin3)")?;
    show(&db, "after ASSERT Stored(gadget,bin3)");
    let ans = db.query("Counted(gadget, ?q)")?;
    println!("gadget count — certain: {:?}", ans.certain);
    assert_eq!(ans.certain, vec![vec!["15".to_string()]]);

    // The recount dispute resolves too.
    db.execute("ASSERT !Counted(widget,38)")?;
    show(&db, "fully resolved");
    assert_eq!(db.world_names()?.len(), 1);

    // An FD-violating update is caught: a second bin for the widget
    // without vacating bin1 leaves no possible world.
    let mut probe = db.clone();
    probe.execute("INSERT Stored(widget,bin9) WHERE T")?;
    println!(
        "\nFD probe: inserting a second bin without vacating the first → consistent = {}",
        probe.is_consistent()
    );
    assert!(!probe.is_consistent());

    // The correct move (atomic): move the widget.
    db.execute("INSERT Stored(widget,bin9) & !Stored(widget,bin1) WHERE T")?;
    show(&db, "after atomic move to bin9");
    assert!(db.is_certain("Stored(widget,bin9)")?);

    println!("\nfinal stats: {}", db.stats());
    Ok(())
}
