//! Quickstart: a five-minute tour of the library.
//!
//! Builds the paper's order database, runs the §3.1 example updates, asks
//! certain/possible queries, and inspects the alternative worlds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use winslett::db::LogicalDatabase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Schema: Orders(OrderNo, PartNo, Quan) and InStock(PartNo, Quan).
    let mut db = LogicalDatabase::new();
    db.declare_relation("Orders", 3)?;
    db.declare_relation("InStock", 2)?;

    // 2. Complete-information facts.
    db.load_fact("Orders", &["700", "32", "9"])?;
    db.load_fact("InStock", &["32", "1"])?;
    println!("loaded: {}", db.stats());

    // 3. Incomplete information: a disjunctive insert (a *branching*
    //    update). We know order 100 is for part 32, quantity 1 or 7.
    db.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")?;
    println!("\nafter disjunctive insert, alternative worlds:");
    for w in db.world_names()? {
        println!("  {{{}}}", w.join(", "));
    }

    // 4. Queries distinguish certain from possible answers.
    let ans = db.query("Orders(?o, 32, ?q)")?;
    println!("\nOrders(?o, 32, ?q):");
    println!("  certain : {:?}", ans.certain);
    println!("  possible: {:?}", ans.possible);

    // 5. The paper's MODIFY example, guarded by stock.
    db.execute("MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)")?;
    println!(
        "\nOrders(700,32,1) certain? {}",
        db.is_certain("Orders(700,32,1)")?
    );

    // 6. ASSERT removes incompleteness when exact knowledge arrives.
    db.execute("ASSERT Orders(100,32,7) & !Orders(100,32,1)")?;
    println!("after ASSERT, worlds:");
    for w in db.world_names()? {
        println!("  {{{}}}", w.join(", "));
    }
    assert!(db.is_certain("Orders(100,32,7)")?);

    // 7. Theory bookkeeping stays small thanks to §4 simplification.
    println!("\nfinal: {}", db.stats());
    Ok(())
}
