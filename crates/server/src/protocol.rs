//! The wire protocol: length-prefixed, CRC-checked JSON frames.
//!
//! Framing deliberately mirrors the WAL record format of
//! `winslett_core::wal` (and reuses its table-driven CRC32):
//!
//! ```text
//! ┌───────────────┬───────────────┬─────────────────────┐
//! │ len: u32 (LE) │ crc: u32 (LE) │ payload (len bytes)  │
//! └───────────────┴───────────────┴─────────────────────┘
//! ```
//!
//! where `crc = crc32(payload)` and the payload is one JSON-encoded
//! [`Request`] or [`Response`]. Every defect a peer can inflict — torn
//! header, torn payload, oversized length, checksum mismatch, unparsable
//! JSON — decodes to a typed [`FrameError`], never a panic.

use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};
use winslett_core::wal::crc32;
use winslett_core::{WalEntry, WalSnapshot};

/// Hard ceiling on a frame payload (4 MiB): a length word above this is
/// treated as garbage rather than obeyed as an allocation request.
pub const MAX_FRAME_LEN: u32 = 1 << 22;

/// Everything that can go wrong reading or decoding one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The read timed out (idle connection or a stalled mid-frame peer).
    TimedOut,
    /// EOF struck inside a frame: `got` of `want` bytes arrived.
    Torn {
        /// Bytes received before the cut.
        got: usize,
        /// Bytes the frame promised.
        want: usize,
    },
    /// The length word exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The payload checksum does not match the header.
    BadCrc {
        /// CRC the header promised.
        expected: u32,
        /// CRC of the bytes that arrived.
        found: u32,
    },
    /// The payload is not valid JSON for the expected type (this is also
    /// what an *unknown request kind* decodes to).
    Decode(String),
    /// Any other I/O failure, stringified.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TimedOut => write!(f, "read timed out"),
            FrameError::Torn { got, want } => {
                write!(f, "torn frame: {got} of {want} bytes before EOF")
            }
            FrameError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes (max {MAX_FRAME_LEN})")
            }
            FrameError::BadCrc { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#010x}, payload {found:#010x}"
                )
            }
            FrameError::Decode(m) => write!(f, "undecodable frame: {m}"),
            FrameError::Io(m) => write!(f, "frame i/o error: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn io_error(e: std::io::Error) -> FrameError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => FrameError::TimedOut,
        _ => FrameError::Io(e.to_string()),
    }
}

/// Reads until `buf` is full or EOF; returns bytes read (≤ `buf.len()`).
fn fill(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error(e)),
        }
    }
    Ok(got)
}

/// Writes one frame around `payload`. An over-cap payload is a typed
/// [`FrameError::Oversized`] before any byte hits the wire — the peer
/// would refuse it anyway, and half a giant frame would poison the
/// stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(FrameError::Oversized {
            len: payload.len().min(u32::MAX as usize) as u32,
        });
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame).map_err(io_error)?;
    w.flush().map_err(io_error)
}

/// Reads one frame, verifying length bound and checksum.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    match fill(r, &mut header)? {
        0 => return Err(FrameError::Closed),
        8 => {}
        got => return Err(FrameError::Torn { got, want: 8 }),
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let expected = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    let got = fill(r, &mut payload)?;
    if got < len as usize {
        return Err(FrameError::Torn {
            got: 8 + got,
            want: 8 + len as usize,
        });
    }
    let found = crc32(&payload);
    if found != expected {
        return Err(FrameError::BadCrc { expected, found });
    }
    Ok(payload)
}

/// Serializes `value` into one frame.
pub fn send<T: Serialize>(w: &mut impl Write, value: &T) -> Result<(), FrameError> {
    let json = serde_json::to_string(value).map_err(|e| FrameError::Decode(e.to_string()))?;
    write_frame(w, json.as_bytes())
}

/// Reads one frame and deserializes it as `T`.
pub fn recv<T: Deserialize>(r: &mut impl Read) -> Result<T, FrameError> {
    let payload = read_frame(r)?;
    decode(&payload)
}

/// Deserializes an already-read payload as `T`.
pub fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let text =
        std::str::from_utf8(payload).map_err(|e| FrameError::Decode(format!("not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Decode(e.to_string()))
}

// ----- nonblocking incremental framing ---------------------------------------

/// How a nonblocking fill ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillStatus {
    /// Bytes appended to the buffer by this call.
    pub received: usize,
    /// The peer closed its write side (EOF observed).
    pub eof: bool,
}

/// Per-connection receive buffer for a nonblocking socket: bytes
/// accumulate across partial reads and frames are decoded **in place** —
/// [`FrameBuf::next_frame`] parses the length/CRC header straight out of
/// the buffer and hands back the payload's range, so the only copy a
/// request ever makes is the kernel's copy into this buffer. The range
/// feeds [`decode`] as a borrowed `&[u8]` slice; no intermediate `Vec`.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Start of the unconsumed region; everything before it belongs to
    /// frames already handed out and is reclaimed by `compact`.
    start: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the readable bytes of `r` (which must be nonblocking) into
    /// the buffer. `WouldBlock` is the normal stop, not an error; EOF is
    /// reported in the status so the caller can distinguish a clean close
    /// (no pending bytes) from a torn frame.
    pub fn fill_nonblocking(&mut self, r: &mut impl Read) -> std::io::Result<FillStatus> {
        const CHUNK: usize = 16 * 1024;
        let mut received = 0usize;
        loop {
            let len = self.buf.len();
            self.buf.resize(len + CHUNK, 0);
            match r.read(&mut self.buf[len..]) {
                Ok(0) => {
                    self.buf.truncate(len);
                    return Ok(FillStatus {
                        received,
                        eof: true,
                    });
                }
                Ok(n) => {
                    self.buf.truncate(len + n);
                    received += n;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => self.buf.truncate(len),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.buf.truncate(len);
                    return Ok(FillStatus {
                        received,
                        eof: false,
                    });
                }
                Err(e) => {
                    self.buf.truncate(len);
                    return Err(e);
                }
            }
        }
    }

    /// Parses the next complete frame in place. `Ok(Some(range))` is the
    /// payload's position (valid until the next fill or `compact`);
    /// `Ok(None)` means more bytes are needed. Oversized lengths and
    /// checksum mismatches are the same typed errors the blocking
    /// [`read_frame`] reports.
    pub fn next_frame(&mut self) -> Result<Option<std::ops::Range<usize>>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized { len });
        }
        let expected = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
        let total = 8 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload_start = self.start + 8;
        let range = payload_start..payload_start + len as usize;
        let found = crc32(&self.buf[range.clone()]);
        if found != expected {
            return Err(FrameError::BadCrc { expected, found });
        }
        self.start += total;
        Ok(Some(range))
    }

    /// The payload bytes of a range returned by [`FrameBuf::next_frame`].
    pub fn payload(&self, range: std::ops::Range<usize>) -> &[u8] {
        &self.buf[range]
    }

    /// Unconsumed bytes currently buffered: a partial frame, or complete
    /// frames not yet parsed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Reclaims consumed space. Call between pump rounds — never between
    /// `next_frame` and the use of its range.
    pub fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
        } else {
            self.buf.drain(..self.start);
        }
        self.start = 0;
    }
}

/// Per-connection transmit buffer: responses are framed into it and
/// flushed opportunistically; whatever the socket won't take stays queued
/// until the reactor sees `EPOLLOUT`.
#[derive(Debug, Default)]
pub struct OutBuf {
    buf: Vec<u8>,
    start: usize,
}

impl OutBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// No bytes awaiting the socket.
    pub fn is_empty(&self) -> bool {
        self.start == self.buf.len()
    }

    /// Bytes awaiting the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Frames `payload` into the buffer — same refusal as [`write_frame`]:
    /// an over-cap payload never reaches the stream.
    pub fn push_frame(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        if payload.len() as u64 > MAX_FRAME_LEN as u64 {
            return Err(FrameError::Oversized {
                len: payload.len().min(u32::MAX as usize) as u32,
            });
        }
        self.buf.reserve(8 + payload.len());
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        Ok(())
    }

    /// Serializes `value` into one queued frame.
    pub fn push_value<T: Serialize>(&mut self, value: &T) -> Result<(), FrameError> {
        let json = serde_json::to_string(value).map_err(|e| FrameError::Decode(e.to_string()))?;
        self.push_frame(json.as_bytes())
    }

    /// Writes as much as the (nonblocking) socket will take and returns
    /// the byte count; `WouldBlock` is the normal stop. A fully drained
    /// buffer resets so its capacity is reused.
    pub fn flush_nonblocking(&mut self, w: &mut impl Write) -> std::io::Result<usize> {
        let mut wrote = 0usize;
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.start += n;
                    wrote += n;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(wrote)
    }
}

// ----- request/response vocabulary ------------------------------------------

/// One client request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Execute one LDML statement (`INSERT`/`DELETE`/`MODIFY`/`ASSERT`)
    /// through the journaled write path.
    Execute(String),
    /// Declare an untyped relation `(name, arity)` (journaled).
    DeclareRelation(String, u64),
    /// Declare a unary attribute predicate (journaled).
    DeclareAttribute(String),
    /// Load a ground fact `(predicate, args)` as certainly true
    /// (journaled).
    LoadFact(String, Vec<String>),
    /// Load an arbitrary ground wff into the initial state (journaled).
    LoadWff(String),
    /// Run a conjunctive query (certain + possible answer sets).
    Query(String),
    /// Entailment check on a ground wff: `(possible, certain)`.
    Check(String),
    /// Three-valued EXPLAIN with witness/counterexample worlds.
    Explain(String),
    /// Pin the connection to the current snapshot: every later read runs
    /// at this generation until `Unpin`.
    Pin,
    /// Release the pinned snapshot; reads follow the latest publication.
    Unpin,
    /// Server and WAL counters.
    Stats,
    /// Force a WAL checkpoint (snapshot + log reset).
    Checkpoint,
    /// Graceful shutdown: stop accepting, drain, flush the WAL.
    Shutdown,
    /// Liveness probe.
    Ping,
    /// Pin the connection to a snapshot whose last acknowledged LSN is
    /// **at least** the given value — the replica-consistency handshake.
    /// Refused with [`ErrorKindWire::LagBehind`] when the serving node
    /// has not caught up that far yet; the client retries or falls back
    /// to the primary.
    PinAt(u64),
    /// Become a WAL subscriber from the given LSN cursor (a replica's
    /// next-expected LSN). The server answers with one
    /// [`Response::Catchup`], then the backlog and all future records as
    /// a stream of [`Response::WalBatch`] frames; the connection speaks
    /// nothing else afterwards. Only the primary accepts this.
    Subscribe(u64),
    /// Open a multi-statement transaction on this connection. Until
    /// `Commit`/`Rollback`, every Execute/Declare/Load runs against a
    /// private workspace under footprint-granularity locks; reads on the
    /// same connection still see the published snapshot (the transaction's
    /// own writes are visible only to its statements). One transaction per
    /// connection; a second `Begin` is refused.
    Begin,
    /// Commit the connection's open transaction: reapply its statements
    /// to the live theory, journal the commit marker, fsync, publish.
    Commit,
    /// Abandon the connection's open transaction, releasing its locks.
    Rollback,
}

/// What an [`Request::Execute`] did.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecReply {
    /// LSN of the journaled record — the serialization order of this
    /// update among all acknowledged writes.
    pub lsn: u64,
    /// Theory generation after the update.
    pub generation: u64,
    /// Net store growth in AST nodes (the paper's O(g) claim).
    pub nodes_added: i64,
    /// Atoms newly added to completion axioms.
    pub completion_added: u64,
}

/// Certain/possible rows for a conjunctive query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryReply {
    /// Substitutions true in every alternative world.
    pub certain: Vec<Vec<String>>,
    /// Substitutions true in some alternative world.
    pub possible: Vec<Vec<String>>,
    /// Generation of the snapshot the query ran against.
    pub generation: u64,
}

/// The two-bit answer to an entailment check.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TruthReply {
    /// True in some alternative world.
    pub possible: bool,
    /// True in every alternative world.
    pub certain: bool,
    /// Generation of the snapshot the check ran against.
    pub generation: u64,
}

/// The verdict lattice of EXPLAIN, on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireVerdict {
    /// True in every world.
    Certain,
    /// True in some worlds, false in others.
    Uncertain,
    /// False in every world.
    Impossible,
    /// The theory has no worlds at all.
    Inconsistent,
}

/// An EXPLAIN result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExplainReply {
    /// The verdict.
    pub verdict: WireVerdict,
    /// A world (atom names) where the wff holds, if any.
    pub witness: Option<Vec<String>>,
    /// A world where the wff fails, if any.
    pub counterexample: Option<Vec<String>>,
    /// Generation of the snapshot explained against.
    pub generation: u64,
}

/// The snapshot a `Pin` nailed down.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SnapshotReply {
    /// Theory generation of the pinned snapshot.
    pub generation: u64,
    /// Acknowledged updates folded into this snapshot (a prefix count of
    /// the LSN order).
    pub updates_applied: u64,
    /// LSN of the last update in the snapshot (0 if none).
    pub last_lsn: u64,
}

/// What a transaction-control request accomplished.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TxnReply {
    /// The transaction id (the LSN of its begin record).
    pub txn: u64,
    /// For `Commit`: the LSN of the commit marker (0 for begin/rollback).
    #[serde(default)]
    pub lsn: u64,
    /// For `Commit`: how many journaled statements the transaction
    /// reapplied (0 for begin/rollback).
    #[serde(default)]
    pub statements: u64,
}

/// Server + WAL counters, over the wire.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Connections accepted into service.
    pub accepted: u64,
    /// Connections refused with `Busy` at the admission gate.
    pub rejected_busy: u64,
    /// Requests served (all kinds).
    pub requests: u64,
    /// Updates acknowledged.
    pub updates: u64,
    /// Read requests (query/check/explain) served.
    pub reads: u64,
    /// Snapshots published by the writer.
    pub snapshots_published: u64,
    /// Connections closed by the idle timeout.
    pub idle_closes: u64,
    /// Malformed frames / undecodable requests observed.
    pub protocol_errors: u64,
    /// Write batches flushed by the batching leader (each batch = one
    /// sync + one snapshot publication).
    pub write_batches: u64,
    /// Writes that shared a batch with at least one other write.
    pub coalesced_writes: u64,
    /// Current theory generation at the writer.
    pub generation: u64,
    /// Next WAL LSN.
    pub next_lsn: u64,
    /// WAL records appended.
    pub wal_records: u64,
    /// WAL fsyncs issued.
    pub wal_syncs: u64,
    /// WAL checkpoints taken.
    pub wal_checkpoints: u64,
    /// Snapshot generations currently held pinned by connections (gauge:
    /// rises on `Pin`, falls on `Unpin` *and* when a pinned connection is
    /// closed or reaped).
    pub pinned_generations: u64,
    /// Superseded snapshot generations whose `Arc<Theory>` allocation is
    /// still alive — retained by a pin, an in-flight read, or a cached
    /// session (gauge; 0 once eager release has let them all go). Absent
    /// from older servers.
    #[serde(default)]
    pub retained_generations: u64,
    /// Background-compaction swaps installed.
    pub compactions: u64,
    /// Compaction rounds abandoned (swap-time replay failure).
    pub compaction_aborts: u64,
    /// Store nodes reclaimed across all compaction swaps.
    pub compaction_nodes_reclaimed: u64,
    /// Total writer-lock pause spent in compaction swaps, µs.
    pub compaction_swap_pause_us: u64,
    /// Longest single compaction swap pause, µs.
    pub compaction_swap_pause_max_us: u64,
    /// Primary: live WAL subscribers (replicas currently streaming).
    pub subscribers: u64,
    /// Primary: WAL records shipped to subscribers (sum over subscribers).
    pub records_shipped: u64,
    /// Replica: WAL batches applied from the subscription stream.
    pub replica_batches: u64,
    /// Replica: records replayed from the stream.
    pub replica_records: u64,
    /// Replica: snapshot bootstraps performed (initial + after falling
    /// behind the primary's checkpoint).
    pub replica_snapshots_loaded: u64,
    /// Replica: subscription reconnects after a broken stream.
    pub replica_reconnects: u64,
    /// `PinAt` requests refused with [`ErrorKindWire::LagBehind`].
    pub lag_refusals: u64,
    /// Transactions begun. Absent from older servers.
    #[serde(default)]
    pub txn_begun: u64,
    /// Transactions committed.
    #[serde(default)]
    pub txn_committed: u64,
    /// Transactions rolled back (client request, statement failure,
    /// timeout auto-abort, disconnect, or drain).
    #[serde(default)]
    pub txn_aborted: u64,
    /// Transactions currently open (gauge).
    #[serde(default)]
    pub txn_active: u64,
    /// Lock acquisitions that had to wait for a holder.
    #[serde(default)]
    pub lock_waits: u64,
    /// Lock acquisitions that gave up at their deadline.
    #[serde(default)]
    pub lock_timeouts: u64,
    /// Plain (non-transactional) writes refused or requeued because an
    /// open transaction held a conflicting lock.
    #[serde(default)]
    pub txn_conflicts: u64,
}

/// The opening answer to a [`Request::Subscribe`]: everything the
/// follower needs before the live stream starts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CatchupReply {
    /// `Some` when the subscriber's cursor predates the primary's
    /// checkpoint — the log no longer reaches back that far, so the
    /// follower must rebuild from this snapshot (records with
    /// `lsn < snapshot.lsn` are already folded in). `None` when the log
    /// suffix alone suffices.
    pub snapshot: Option<WalSnapshot>,
    /// The primary's next LSN at subscription time; the follower is
    /// caught up once it has applied everything below this.
    pub next_lsn: u64,
    /// `true` when the snapshot was too large to ride inline: `snapshot`
    /// is `None` and the document follows as a series of
    /// [`Response::CatchupChunk`] frames, terminated by the chunk whose
    /// `done` flag is set. Absent (false) from older primaries.
    #[serde(default)]
    pub chunked: bool,
}

/// One piece of a chunked catch-up snapshot: the JSON document of the
/// [`WalSnapshot`], split on character boundaries into frame-sized parts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CatchupChunkReply {
    /// The next run of the snapshot document.
    pub part: String,
    /// Set on the final chunk — the stream's terminator; the `WalBatch`
    /// backlog begins after it.
    pub done: bool,
}

/// One batch of shipped WAL records — the backlog during catch-up, then
/// each write batch as the primary commits it. An empty batch is a
/// heartbeat: the stream is alive, there is just nothing to ship.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalBatchReply {
    /// Effective records (aborted pairs already removed), in LSN order.
    /// LSN holes mark annulled operations and are harmless.
    pub entries: Vec<WalEntry>,
}

/// What a `Checkpoint` accomplished.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointReply {
    /// LSN the on-storage snapshot is now current through.
    pub lsn: u64,
}

/// Machine-readable failure category.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKindWire {
    /// The statement or wff did not parse / referenced unknown symbols.
    Parse,
    /// GUA (or schema validation) refused the operation.
    Refused,
    /// Admission control: too many concurrent connections.
    Busy,
    /// The frame decoded but the request is not usable (e.g. unknown
    /// request kind, wrong payload shape).
    BadRequest,
    /// The server is draining for shutdown; no new writes.
    ShuttingDown,
    /// Storage-layer failure underneath the write path.
    Storage,
    /// The node serving this request is a read replica that has not yet
    /// replayed up to the LSN a [`Request::PinAt`] demanded. Retry after
    /// the lag closes, or read from the primary.
    LagBehind,
    /// The node is a read replica; writes, checkpoints, and subscriptions
    /// must go to the primary.
    ReadOnly,
    /// The journaled form of the statement would exceed the WAL record
    /// cap (and therefore the wire-frame cap); the operation was refused
    /// before anything was written.
    TooLarge,
    /// The operation conflicts with locks held by an open transaction and
    /// could not proceed within its patience. Retry once the holder
    /// commits or rolls back.
    TxnConflict,
    /// A lock acquisition inside a transaction gave up at its
    /// deadlock-avoidance deadline. The transaction has been rolled back;
    /// begin again and retry.
    TxnTimeout,
    /// Anything else; the message says what.
    Internal,
}

/// A typed server-side error.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// The category.
    pub kind: ErrorKindWire,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// One server response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// `Execute` succeeded.
    Executed(ExecReply),
    /// `Query` result.
    Rows(QueryReply),
    /// `Check` result.
    Truth(TruthReply),
    /// `Explain` result.
    Explained(ExplainReply),
    /// `Pin` took a snapshot.
    Pinned(SnapshotReply),
    /// `Unpin` released it.
    Unpinned,
    /// `Stats` counters.
    Stats(Box<StatsReply>),
    /// `Checkpoint` completed.
    Checkpointed(CheckpointReply),
    /// `Shutdown` acknowledged; the server is draining.
    ShuttingDown,
    /// `Ping` reply.
    Pong,
    /// First answer on a subscription stream: catch-up material.
    Catchup(Box<CatchupReply>),
    /// One piece of a chunked catch-up snapshot; follows a
    /// `Catchup { chunked: true, .. }` reply.
    CatchupChunk(CatchupChunkReply),
    /// One shipped batch on a subscription stream (empty = heartbeat).
    WalBatch(WalBatchReply),
    /// `Begin` opened a transaction.
    TxnBegun(TxnReply),
    /// `Commit` made the transaction durable.
    TxnCommitted(TxnReply),
    /// `Rollback` abandoned the transaction (also sent when the server
    /// itself aborted it, e.g. on a lock timeout).
    TxnRolledBack(TxnReply),
    /// The request failed; the connection stays usable.
    Error(WireError),
}

// ----- catch-up snapshot chunking --------------------------------------------

/// Headroom for the `Catchup` wrapper around an inline snapshot: the enum
/// tag, the `next_lsn` and `chunked` fields, and frame overhead.
const CATCHUP_WRAPPER_HEADROOM: usize = 256;

/// Plans the opening frames of a subscription stream. A snapshot that
/// fits the frame cap rides inline in the `Catchup` reply exactly as it
/// always has; a larger one is announced with `chunked: true` and then
/// streamed as [`Response::CatchupChunk`] frames, split on character
/// boundaries, terminated by the chunk whose `done` flag is set.
pub fn catchup_frames(
    snapshot: Option<WalSnapshot>,
    next_lsn: u64,
) -> Result<Vec<Response>, FrameError> {
    catchup_frames_with_budget(snapshot, next_lsn, MAX_FRAME_LEN as usize)
}

/// The budget-parameterized core, so tests can probe the cap boundary
/// exactly (±1 byte) without minting a 4 MiB theory.
fn catchup_frames_with_budget(
    snapshot: Option<WalSnapshot>,
    next_lsn: u64,
    budget: usize,
) -> Result<Vec<Response>, FrameError> {
    let Some(snap) = snapshot else {
        return Ok(vec![Response::Catchup(Box::new(CatchupReply {
            snapshot: None,
            next_lsn,
            chunked: false,
        }))]);
    };
    let json = serde_json::to_string(&snap).map_err(|e| FrameError::Decode(e.to_string()))?;
    if json.len() + CATCHUP_WRAPPER_HEADROOM <= budget {
        return Ok(vec![Response::Catchup(Box::new(CatchupReply {
            snapshot: Some(snap),
            next_lsn,
            chunked: false,
        }))]);
    }
    let mut frames = vec![Response::Catchup(Box::new(CatchupReply {
        snapshot: None,
        next_lsn,
        chunked: true,
    }))];
    // Conservative raw size per part: JSON string escaping at most
    // doubles a JSON document (quotes and backslashes), so a quarter of
    // the budget leaves the escaped part plus its wrapper far under cap.
    let part_raw = (budget / 4).max(1);
    let mut rest = json.as_str();
    while !rest.is_empty() {
        let mut cut = part_raw.min(rest.len());
        while !rest.is_char_boundary(cut) {
            cut -= 1;
        }
        let (part, tail) = rest.split_at(cut);
        rest = tail;
        frames.push(Response::CatchupChunk(CatchupChunkReply {
            part: part.to_string(),
            done: rest.is_empty(),
        }));
    }
    Ok(frames)
}

/// Reassembles the parts collected from a chunked catch-up into the
/// snapshot document they were split from.
pub fn assemble_snapshot(parts: &[String]) -> Result<WalSnapshot, FrameError> {
    let joined: String = parts.concat();
    serde_json::from_str(&joined).map_err(|e| FrameError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello frames");
        assert_eq!(read_frame(&mut r).unwrap_err(), FrameError::Closed);
    }

    #[test]
    fn request_response_roundtrip() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Execute("INSERT R(1) WHERE T".into())).unwrap();
        send(&mut buf, &Request::Pin).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            recv::<Request>(&mut r).unwrap(),
            Request::Execute("INSERT R(1) WHERE T".into())
        );
        assert_eq!(recv::<Request>(&mut r).unwrap(), Request::Pin);

        let resp = Response::Truth(TruthReply {
            possible: true,
            certain: false,
            generation: 7,
        });
        let mut buf = Vec::new();
        send(&mut buf, &resp).unwrap();
        assert_eq!(recv::<Response>(&mut &buf[..]).unwrap(), resp);
    }

    #[test]
    fn torn_header_and_payload_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        // Cut inside the header.
        assert!(matches!(
            read_frame(&mut &buf[..5]),
            Err(FrameError::Torn { got: 5, want: 8 })
        ));
        // Cut inside the payload.
        assert!(matches!(
            read_frame(&mut &buf[..10]),
            Err(FrameError::Torn { got: 10, want: 14 })
        ));
    }

    #[test]
    fn oversized_length_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap_err(),
            FrameError::Oversized { len: u32::MAX }
        );
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn oversized_write_is_refused_before_the_wire() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &vec![0u8; MAX_FRAME_LEN as usize + 1]).unwrap_err();
        assert_eq!(
            err,
            FrameError::Oversized {
                len: MAX_FRAME_LEN + 1
            }
        );
        assert!(buf.is_empty(), "nothing may reach the stream");
    }

    #[test]
    fn record_cap_leaves_batch_headroom_inside_the_frame_cap() {
        // A single max-size WAL record, JSON-wrapped into a WalBatch
        // response, must still fit in one frame — that is the whole point
        // of holding MAX_RECORD_LEN under MAX_FRAME_LEN. 1 KiB of
        // headroom covers the enum wrapper, the entries array, and the
        // LSN field with two orders of magnitude to spare.
        const { assert!(winslett_core::MAX_RECORD_LEN + 1024 <= MAX_FRAME_LEN) };
    }

    #[test]
    fn subscription_vocabulary_roundtrips() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Subscribe(42)).unwrap();
        send(&mut buf, &Request::PinAt(7)).unwrap();
        let mut r = &buf[..];
        assert_eq!(recv::<Request>(&mut r).unwrap(), Request::Subscribe(42));
        assert_eq!(recv::<Request>(&mut r).unwrap(), Request::PinAt(7));

        let batch = Response::WalBatch(WalBatchReply {
            entries: vec![winslett_core::WalEntry {
                lsn: 9,
                record: winslett_core::WalRecord::LoadFact("R".into(), vec!["1".into()]),
            }],
        });
        let mut buf = Vec::new();
        send(&mut buf, &batch).unwrap();
        assert_eq!(recv::<Response>(&mut &buf[..]).unwrap(), batch);

        let catchup = Response::Catchup(Box::new(CatchupReply {
            snapshot: None,
            next_lsn: 10,
            chunked: false,
        }));
        let mut buf = Vec::new();
        send(&mut buf, &catchup).unwrap();
        assert_eq!(recv::<Response>(&mut &buf[..]).unwrap(), catchup);

        // A wire image without the chunked flag (an older primary) still
        // decodes, defaulting to the inline interpretation.
        let legacy = br#"{"Catchup":{"snapshot":null,"next_lsn":10}}"#;
        let mut buf = Vec::new();
        write_frame(&mut buf, legacy).unwrap();
        assert_eq!(recv::<Response>(&mut &buf[..]).unwrap(), catchup);
    }

    /// A reader that hands out one byte per call, then `WouldBlock` —
    /// the pathological peer the incremental decoder must handle.
    struct Dribble {
        data: Vec<u8>,
        at: usize,
        ready: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.at >= self.data.len() {
                return Ok(0);
            }
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            self.ready = false;
            buf[0] = self.data[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn framebuf_decodes_across_partial_reads() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let total = wire.len();
        let mut src = Dribble {
            data: wire,
            at: 0,
            ready: false,
        };
        let mut fb = FrameBuf::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut eof = false;
        let mut rounds = 0;
        while !eof {
            rounds += 1;
            assert!(rounds <= 2 * total + 4, "dribble must terminate");
            let status = fb.fill_nonblocking(&mut src).unwrap();
            eof = status.eof;
            while let Some(range) = fb.next_frame().unwrap() {
                got.push(fb.payload(range).to_vec());
            }
            fb.compact();
        }
        assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec()]);
        assert_eq!(fb.pending(), 0, "clean EOF leaves nothing buffered");
    }

    #[test]
    fn framebuf_reports_oversized_and_bad_crc_in_place() {
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        fb.fill_nonblocking(&mut &wire[..]).unwrap();
        assert_eq!(
            fb.next_frame().unwrap_err(),
            FrameError::Oversized { len: u32::MAX }
        );

        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        fb.fill_nonblocking(&mut &wire[..]).unwrap();
        assert!(matches!(fb.next_frame(), Err(FrameError::BadCrc { .. })));
    }

    /// A writer that takes at most three bytes per call, then `WouldBlock`.
    struct Throttle {
        out: Vec<u8>,
        ready: bool,
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            self.ready = false;
            let n = buf.len().min(3);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn outbuf_flushes_incrementally_and_refuses_oversized() {
        let mut ob = OutBuf::new();
        ob.push_value(&Response::Pong).unwrap();
        ob.push_frame(b"tail").unwrap();
        let want_len = ob.pending();
        let mut sink = Throttle {
            out: Vec::new(),
            ready: false,
        };
        let mut rounds = 0;
        while !ob.is_empty() {
            rounds += 1;
            assert!(rounds <= want_len + 4, "throttle must drain");
            ob.flush_nonblocking(&mut sink).unwrap();
        }
        assert_eq!(sink.out.len(), want_len);
        let mut r = &sink.out[..];
        assert_eq!(recv::<Response>(&mut r).unwrap(), Response::Pong);
        assert_eq!(read_frame(&mut r).unwrap(), b"tail");

        let err = ob
            .push_frame(&vec![0u8; MAX_FRAME_LEN as usize + 1])
            .unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }));
        assert!(ob.is_empty(), "refused payload leaves nothing queued");
    }

    fn sample_snapshot() -> winslett_core::WalSnapshot {
        let mut db = winslett_core::LogicalDatabase::new();
        db.declare_relation("R", 1).unwrap();
        db.load_fact("R", &["chunky"]).unwrap();
        winslett_core::WalSnapshot {
            version: 1,
            lsn: 7,
            theory: winslett_core::dump_theory(db.theory()),
        }
    }

    #[test]
    fn catchup_chunking_splits_exactly_at_the_cap() {
        let snap = sample_snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let fits = json.len() + 256; // CATCHUP_WRAPPER_HEADROOM
                                     // One byte of budget decides inline vs chunked: at the cap the
                                     // snapshot rides inline, one under it streams as chunks.
        let inline = catchup_frames_with_budget(Some(snap.clone()), 9, fits).unwrap();
        assert_eq!(inline.len(), 1);
        match &inline[0] {
            Response::Catchup(c) => {
                assert!(!c.chunked);
                assert_eq!(c.next_lsn, 9);
                assert_eq!(c.snapshot.as_ref().map(|s| s.lsn), Some(7));
            }
            other => panic!("expected Catchup, got {other:?}"),
        }
        let chunked = catchup_frames_with_budget(Some(snap.clone()), 9, fits - 1).unwrap();
        assert!(chunked.len() >= 2, "announcement plus at least one chunk");
        match &chunked[0] {
            Response::Catchup(c) => {
                assert!(c.chunked);
                assert!(c.snapshot.is_none());
                assert_eq!(c.next_lsn, 9);
            }
            other => panic!("expected Catchup, got {other:?}"),
        }
        let mut parts = Vec::new();
        for (i, frame) in chunked[1..].iter().enumerate() {
            match frame {
                Response::CatchupChunk(c) => {
                    assert_eq!(
                        c.done,
                        i == chunked.len() - 2,
                        "done terminates the sequence"
                    );
                    parts.push(c.part.clone());
                }
                other => panic!("expected CatchupChunk, got {other:?}"),
            }
        }
        let back = assemble_snapshot(&parts).unwrap();
        assert_eq!(back.lsn, snap.lsn);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        // Every planned frame must itself fit the real cap.
        for frame in catchup_frames(Some(snap), 9).unwrap() {
            let wire = serde_json::to_string(&frame).unwrap();
            assert!(wire.len() <= MAX_FRAME_LEN as usize);
        }
    }

    #[test]
    fn txn_vocabulary_roundtrips() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Begin).unwrap();
        send(&mut buf, &Request::Commit).unwrap();
        send(&mut buf, &Request::Rollback).unwrap();
        let mut r = &buf[..];
        assert_eq!(recv::<Request>(&mut r).unwrap(), Request::Begin);
        assert_eq!(recv::<Request>(&mut r).unwrap(), Request::Commit);
        assert_eq!(recv::<Request>(&mut r).unwrap(), Request::Rollback);

        let resp = Response::TxnCommitted(TxnReply {
            txn: 12,
            lsn: 19,
            statements: 3,
        });
        let mut buf = Vec::new();
        send(&mut buf, &resp).unwrap();
        assert_eq!(recv::<Response>(&mut &buf[..]).unwrap(), resp);

        // Stats from an older server (no txn counters) still decode.
        let legacy = br#"{"accepted":1,"rejected_busy":0,"requests":2,"updates":0,"reads":0,"snapshots_published":0,"idle_closes":0,"protocol_errors":0,"write_batches":0,"coalesced_writes":0,"generation":0,"next_lsn":1,"wal_records":0,"wal_syncs":0,"wal_checkpoints":0,"pinned_generations":0,"compactions":0,"compaction_aborts":0,"compaction_nodes_reclaimed":0,"compaction_swap_pause_us":0,"compaction_swap_pause_max_us":0,"subscribers":0,"records_shipped":0,"replica_batches":0,"replica_records":0,"replica_snapshots_loaded":0,"replica_reconnects":0,"lag_refusals":0}"#;
        let stats: StatsReply = decode(legacy).unwrap();
        assert_eq!(stats.txn_begun, 0);
        assert_eq!(stats.txn_active, 0);
    }

    #[test]
    fn unknown_request_kind_is_a_decode_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, br#"{"FlushCaches":[]}"#).unwrap();
        assert!(matches!(
            recv::<Request>(&mut &buf[..]),
            Err(FrameError::Decode(_))
        ));
    }
}
