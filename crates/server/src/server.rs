//! The server: one writer thread-at-a-time, any number of snapshot
//! readers, bounded admission, idle timeouts, graceful drain.
//!
//! ## Concurrency model
//!
//! * **Writes** serialize through a `Mutex<DurableDatabase>`. Each
//!   acknowledged update is journaled (WAL) *before* GUA applies it, and
//!   its reply carries the WAL LSN — the serialization order.
//! * **Write batching** (on by default, [`ServerOptions::batch_writes`]):
//!   writes enqueue into a shared queue and whichever thread wins the
//!   writer lock drains it as the *leader*, applying everyone's writes
//!   and handing replies back through per-job slots. The leader runs the
//!   queued statements through [`winslett_analyze::ConflictAnalyzer`] and
//!   coalesces a run of pairwise-independent updates into one batch:
//!   applied in arrival order (never reordered), made durable with **one
//!   `fsync`**, and published as **one snapshot**. Conflicting or
//!   unanalyzable statements close the batch, so a reader can only ever
//!   miss intermediate states that provably-independent writes would have
//!   produced. Batched acks are sent *after* the batch's sync — at least
//!   as durable as the unbatched path.
//! * **Reads** never take the writer lock. After every update the writer
//!   publishes a [`TheorySnapshot`] (theory cloned once behind an `Arc`)
//!   into an `RwLock` slot; connections grab the `Arc` and answer from a
//!   private [`SnapshotReader`] whose entailment session is encoded once
//!   per snapshot and reused across queries. A connection may `Pin` its
//!   snapshot, keeping a long analytical session on one generation while
//!   the writer commits on.
//! * **Admission** is a hard cap on live connections: the connection over
//!   the cap receives a typed `Busy` error frame and a close — never a
//!   silent hang.
//! * **Shutdown** (protocol request or [`ServerHandle::request_shutdown`])
//!   stops the accept loop, drains live connections (bounded by the idle
//!   timeout), then closes the durable database — flushing any
//!   group-commit buffered WAL records — and hands the storage back.

use crate::protocol::{
    catchup_frames, read_frame, send, CheckpointReply, ErrorKindWire, ExecReply, ExplainReply,
    FrameError, QueryReply, Request, Response, SnapshotReply, StatsReply, TruthReply, TxnReply,
    WalBatchReply, WireError, WireVerdict, MAX_FRAME_LEN,
};
use crate::reactor::{
    Completions, Done, NetCounters, PublishedView, Reactor, ReactorConfig, Role, RoleAction,
    TOKEN_NONE,
};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError, RwLock, TryLockError, Weak};
use std::time::{Duration, Instant};
use winslett_analyze::ConflictAnalyzer;
use winslett_core::explain::Verdict;
use winslett_core::snapshot::{SnapshotReader, TheorySnapshot};
use winslett_core::wal::{Catchup, DurableDatabase, RecoveryReport, Storage, WalOptions};
use winslett_core::{DbError, DbOptions, LockRequest, LockTable, WalEntry};
use winslett_gua::SimplifyLevel;
use winslett_logic::AccessSet;
use winslett_theory::Theory;

/// How often an idle subscription stream emits an empty heartbeat batch,
/// proving liveness to the follower (whose read timeout is a multiple of
/// this).
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(250);

/// Tunables.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Hard cap on concurrently served connections; the next connection
    /// is refused with a typed `Busy` error.
    pub max_connections: usize,
    /// A connection idle (or stalled mid-frame) this long is closed.
    pub idle_timeout: Duration,
    /// Coalesce pairwise-independent queued writes into group-commit
    /// batches (one fsync, one snapshot publication per batch). Apply
    /// order is always arrival order; batching only changes *when*
    /// durability and snapshot publication happen. Off = the classic
    /// one-publication-per-write path.
    pub batch_writes: bool,
    /// Background-compaction policy; `None` disables the compactor
    /// thread. On by default — the trigger thresholds keep it dormant on
    /// small databases.
    pub compaction: Option<CompactionPolicy>,
    /// Serve with the classic blocking thread-per-connection loop
    /// instead of the epoll reactor. Kept as the benchmarking baseline
    /// (`BENCH_connections.json` compares the two); the reactor is the
    /// default and the gated path.
    pub threaded: bool,
    /// How long a transactional statement may wait for its footprint
    /// locks before the transaction is aborted with a typed `TxnTimeout`.
    /// The timeout doubles as deadlock avoidance: two transactions that
    /// wait on each other both die at the deadline instead of hanging.
    pub lock_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            batch_writes: true,
            compaction: Some(CompactionPolicy::default()),
            threaded: false,
            lock_timeout: Duration::from_secs(2),
        }
    }
}

/// When and how the background compactor runs.
///
/// A round fires when the published theory is past `min_nodes` *and*
/// either its store has grown by `growth_factor` over the size left by
/// the previous round, or `max_lsn_lag` records have committed since the
/// previous round (so sustained small writes still get folded down even
/// when each one barely grows the store).
#[derive(Clone, Debug)]
pub struct CompactionPolicy {
    /// Trigger when live store nodes ≥ this factor × the post-compaction
    /// baseline (§3.6 store-size measure).
    pub growth_factor: f64,
    /// Node floor below which the compactor never runs.
    pub min_nodes: usize,
    /// Trigger regardless of growth once this many records have
    /// committed since the last round.
    pub max_lsn_lag: u64,
    /// How often the trigger is evaluated.
    pub poll_interval: Duration,
    /// Simplification depth for the off-lock pass.
    pub level: SimplifyLevel,
    /// Take a checkpoint from the compacted theory inside the swap's
    /// critical section, so the on-storage snapshot shrinks too.
    pub checkpoint: bool,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            growth_factor: 2.0,
            min_nodes: 512,
            max_lsn_lag: 4096,
            poll_interval: Duration::from_millis(20),
            level: SimplifyLevel::Full,
            checkpoint: true,
        }
    }
}

/// Monotone counters, updated lock-free by connection threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted into service.
    pub accepted: AtomicU64,
    /// Connections refused at the admission gate.
    pub rejected_busy: AtomicU64,
    /// Requests served, all kinds.
    pub requests: AtomicU64,
    /// Updates acknowledged.
    pub updates: AtomicU64,
    /// Read requests (query/check/explain) served.
    pub reads: AtomicU64,
    /// Snapshots published by the writer.
    pub snapshots_published: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_closes: AtomicU64,
    /// Malformed frames / undecodable requests observed.
    pub protocol_errors: AtomicU64,
    /// Write batches flushed (each = one sync + one snapshot publication).
    pub write_batches: AtomicU64,
    /// Writes that shared a batch with at least one other write.
    pub coalesced_writes: AtomicU64,
    /// Snapshot generations currently pinned by connections (gauge:
    /// `Pin` raises it, `Unpin` and pinned-connection teardown lower it).
    pub pinned_generations: AtomicU64,
    /// Superseded published generations whose `Arc<Theory>` is still
    /// alive (gauge, refreshed on publication and stats reads).
    pub retained_generations: AtomicU64,
    /// Background-compaction swaps installed.
    pub compactions: AtomicU64,
    /// Compaction rounds abandoned at swap time.
    pub compaction_aborts: AtomicU64,
    /// Store nodes reclaimed across all swaps.
    pub compaction_nodes_reclaimed: AtomicU64,
    /// Cumulative writer-lock pause across swaps, µs.
    pub compaction_swap_pause_us: AtomicU64,
    /// Longest single swap pause, µs.
    pub compaction_swap_pause_max_us: AtomicU64,
    /// WAL records shipped to subscribers (summed over subscribers).
    pub records_shipped: AtomicU64,
    /// `PinAt` requests refused because the published snapshot had not
    /// reached the demanded LSN.
    pub lag_refusals: AtomicU64,
    /// Transactions opened with `Begin`.
    pub txn_begun: AtomicU64,
    /// Transactions committed.
    pub txn_committed: AtomicU64,
    /// Transactions rolled back — client `Rollback`, lock timeout,
    /// drain abort, or connection teardown.
    pub txn_aborted: AtomicU64,
    /// Transactions currently open (gauge).
    pub txn_active: AtomicU64,
    /// Plain (non-transactional) writes refused because they collided
    /// with locks held by an open transaction.
    pub txn_conflicts: AtomicU64,
}

/// What the writer last published: an immutable snapshot plus its place
/// in the acknowledged-update order.
struct Published {
    snapshot: TheorySnapshot,
    updates_applied: u64,
    last_lsn: u64,
}

struct Shared<S: Storage> {
    writer: Mutex<Option<DurableDatabase<S>>>,
    published: RwLock<Arc<Published>>,
    /// Pending writes awaiting a leader (batched mode only).
    queue: Mutex<VecDeque<WriteJob>>,
    /// Live WAL subscribers: each holds the sending half of its
    /// subscription channel. Registration happens under the writer lock
    /// (atomically with the catch-up computation), so no committed record
    /// can fall between the backlog and the stream. Dead subscribers are
    /// pruned when a send fails.
    subscribers: Mutex<Vec<mpsc::Sender<Vec<WalEntry>>>>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    options: ServerOptions,
    addr: SocketAddr,
    /// The reactor's completion queue, installed in epoll mode so
    /// [`ship`] can wake the event loop when records land for streaming
    /// subscribers. `None` in threaded mode (subscription threads block
    /// on their channels directly).
    notify: Mutex<Option<Arc<Completions>>>,
    /// Weak handles on superseded published generations, backing the
    /// `retained_generations` gauge: an entry whose upgrade fails has
    /// been fully released (no pin, cached session, or in-flight read
    /// holds its `Arc<Theory>` anymore) and is pruned.
    retained: Mutex<Vec<(u64, Weak<Theory>)>>,
    /// The lock table: S/X locks at footprint-atom granularity, held by
    /// open transactions under strict two-phase locking.
    locks: LockTable,
    /// Reactor-mode bookkeeping: which connection token owns which open
    /// transaction. Value `0` reserves the slot while the `Begin` is in
    /// flight to the writer thread (real transaction ids are WAL LSNs,
    /// which start at 1).
    txn_by_token: Mutex<HashMap<u64, u64>>,
}

/// Upper bound on writes coalesced into one batch, so a follower's ack
/// latency stays bounded under a deep queue.
const MAX_BATCH: usize = 32;

/// A write request in database terms, detached from its connection so the
/// leader can apply it on the submitter's behalf.
enum WriteOp {
    Execute(String),
    DeclareRelation(String, u64),
    DeclareAttribute(String),
    LoadFact(String, Vec<String>),
    LoadWff(String),
}

/// Where a write's reply goes: a blocking connection thread's slot, or
/// the reactor's completion queue.
#[derive(Clone)]
enum WriteDone {
    /// Fill the slot and wake the waiting connection thread.
    Slot(Arc<ReplySlot>),
    /// Post to the reactor, tagged for the awaiting connection.
    Reactor {
        token: u64,
        seq: u64,
        completions: Arc<Completions>,
    },
}

impl WriteDone {
    fn fill(&self, r: Response) {
        match self {
            WriteDone::Slot(slot) => slot.fill(r),
            WriteDone::Reactor {
                token,
                seq,
                completions,
            } => completions.post(*token, *seq, Done::Resp(r)),
        }
    }
}

/// One queued write plus the path its reply travels back through.
struct WriteJob {
    op: WriteOp,
    done: WriteDone,
}

/// A single-use mailbox: the leader fills it, the submitter waits on it.
#[derive(Default)]
struct ReplySlot {
    resp: Mutex<Option<Response>>,
    cv: Condvar,
}

impl ReplySlot {
    fn fill(&self, r: Response) {
        // The slot holds plain data; a poisoned lock can't corrupt it.
        let mut guard = self.resp.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = Some(r);
        self.cv.notify_all();
    }

    fn try_take(&self) -> Option<Response> {
        self.resp
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    fn wait(&self, timeout: Duration) -> Option<Response> {
        let guard = self.resp.lock().unwrap_or_else(PoisonError::into_inner);
        let (mut guard, _) = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.take()
    }
}

/// A cheap, clonable handle for poking a running server from outside its
/// accept loop (signal handlers, tests, sibling threads).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    active: Arc<AtomicUsize>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Connections currently in service.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown: sets the flag and pokes the accept
    /// loop awake with a throwaway connection.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake a blocking `accept` so it observes the flag. Errors are
        // fine — the listener may already be gone.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// The server: a bound listener plus the shared state its connection
/// threads work against.
pub struct Server<S: Storage + Send + 'static> {
    listener: TcpListener,
    shared: Arc<Shared<S>>,
}

impl<S: Storage + Send + 'static> Server<S> {
    /// Binds `addr` (use port 0 for an ephemeral port) and opens (or
    /// recovers) the durable database on `storage`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        storage: S,
        db_options: DbOptions,
        wal_options: WalOptions,
        options: ServerOptions,
    ) -> Result<(Self, RecoveryReport), DbError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (mut db, report) = DurableDatabase::open(storage, db_options, wal_options)?;
        // Arm WAL shipping up front: the retained tail is drained to
        // subscribers (or discarded when there are none) after every
        // write batch, so the cost of arming before any replica connects
        // is one Vec push per record.
        db.enable_shipping();
        let snapshot = TheorySnapshot::capture(db.db().theory());
        let last_lsn = db.next_lsn().saturating_sub(1);
        let shared = Arc::new(Shared {
            writer: Mutex::new(Some(db)),
            published: RwLock::new(Arc::new(Published {
                snapshot,
                updates_applied: 0,
                last_lsn,
            })),
            queue: Mutex::new(VecDeque::new()),
            subscribers: Mutex::new(Vec::new()),
            stats: Arc::new(ServerStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            active: Arc::new(AtomicUsize::new(0)),
            options,
            addr,
            notify: Mutex::new(None),
            retained: Mutex::new(Vec::new()),
            locks: LockTable::new(),
            txn_by_token: Mutex::new(HashMap::new()),
        });
        Ok((Server { listener, shared }, report))
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle usable from other threads (shutdown, stats).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.shared.addr,
            shutdown: Arc::clone(&self.shared.shutdown),
            stats: Arc::clone(&self.shared.stats),
            active: Arc::clone(&self.shared.active),
        }
    }

    /// Serves until shutdown is requested, drains live connections, then
    /// closes the durable database — **flushing buffered WAL records** —
    /// and returns the storage (tests reopen it to inspect final state).
    ///
    /// The default I/O core is the nonblocking epoll reactor (one thread
    /// owning every socket, writes funneled to a single writer thread,
    /// SAT reads on a small worker pool); `ServerOptions::threaded`
    /// selects the classic blocking thread-per-connection loop instead.
    pub fn run(self) -> Result<S, DbError> {
        if self.shared.options.threaded {
            self.run_threaded()
        } else {
            self.run_epoll()
        }
    }

    /// The epoll event-loop server.
    fn run_epoll(self) -> Result<S, DbError> {
        let Server { listener, shared } = self;
        let compactor = shared.options.compaction.clone().map(|policy| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_compactor(&shared, &policy))
        });
        let completions = Completions::new()?;
        *shared.notify.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(Arc::clone(&completions));
        let chan = Arc::new(WriterChan::default());
        let writer_thread = {
            let shared = Arc::clone(&shared);
            let chan = Arc::clone(&chan);
            let completions = Arc::clone(&completions);
            std::thread::spawn(move || run_writer(&shared, &chan, &completions))
        };
        let role = PrimaryRole {
            shared: Arc::clone(&shared),
            chan: Arc::clone(&chan),
            completions: Arc::clone(&completions),
        };
        let config = ReactorConfig {
            max_connections: shared.options.max_connections,
            idle_timeout: shared.options.idle_timeout,
        };
        let run_result = Reactor::new(
            listener,
            role,
            Arc::clone(&completions),
            config,
            Arc::clone(&shared.shutdown),
            Arc::clone(&shared.active),
        )
        .and_then(Reactor::run);
        // Whether the reactor drained cleanly or died on an epoll error,
        // the teardown discipline is the same: flag the shutdown so the
        // compactor exits, stop the writer thread after it finishes the
        // queued work, then close the database.
        shared.shutdown.store(true, Ordering::SeqCst);
        chan.close();
        let _ = writer_thread.join();
        *shared.notify.lock().unwrap_or_else(PoisonError::into_inner) = None;
        if let Some(handle) = compactor {
            let _ = handle.join();
        }
        rollback_orphans(&shared);
        run_result?;
        let db = shared
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        match db {
            Some(db) => db.close(),
            None => Err(DbError::Storage {
                message: "writer already closed".into(),
            }),
        }
    }

    /// The classic blocking loop: one kernel thread per connection.
    fn run_threaded(self) -> Result<S, DbError> {
        let Server { listener, shared } = self;
        let compactor = shared.options.compaction.clone().map(|policy| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_compactor(&shared, &policy))
        });
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
                Err(_) => continue,
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up poke, or a late arrival during drain
            }
            // Admission gate: count ourselves in, back out if over cap.
            let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
            if active > shared.options.max_connections {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                reject_busy(stream, active, shared.options.max_connections);
                continue;
            }
            shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                Connection::new(stream, Arc::clone(&shared)).serve();
                shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(listener);
        // Drain: connection threads exit on their own (request loop, idle
        // timeout); writes arriving during the drain are refused.
        while shared.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        // The compactor observes the shutdown flag; join it before taking
        // the writer so an in-flight swap completes or aborts cleanly.
        if let Some(handle) = compactor {
            let _ = handle.join();
        }
        rollback_orphans(&shared);
        // Even if a write panicked and poisoned the lock, closing is the
        // best effort left: the WAL only ever holds intact records.
        let db = shared
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        match db {
            Some(db) => db.close(),
            None => Err(DbError::Storage {
                message: "writer already closed".into(),
            }),
        }
    }
}

/// Sends the typed `Busy` rejection (best-effort) and closes.
fn reject_busy(mut stream: TcpStream, active: usize, cap: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = send(
        &mut stream,
        &Response::Error(WireError {
            kind: ErrorKindWire::Busy,
            message: format!("server busy: {active} connections, cap {cap}"),
        }),
    );
}

/// Per-connection state: the stream plus this connection's read sessions.
struct Connection<S: Storage + Send + 'static> {
    stream: TcpStream,
    shared: Arc<Shared<S>>,
    /// Set while the client holds a `Pin`: reads stay on this snapshot.
    pinned: Option<SnapshotReader>,
    /// Follow-the-latest reader, rebuilt only when the published
    /// generation moves (so repeated reads reuse one entailment session).
    latest: Option<SnapshotReader>,
    /// The transaction this connection holds open, if any. All writes
    /// route into it until `Commit`/`Rollback`; teardown rolls it back.
    txn: Option<u64>,
}

impl<S: Storage + Send + 'static> Drop for Connection<S> {
    /// Releases the pinned-generation gauge entry if the connection dies
    /// while holding a pin — covers clients that disconnect (or are
    /// idle-timeout reaped) without sending `Unpin`. The reader itself
    /// drops with the struct, which is what actually frees the pinned
    /// `Arc<Theory>` generation.
    fn drop(&mut self) {
        if self.pinned.is_some() {
            self.shared
                .stats
                .pinned_generations
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl<S: Storage + Send + 'static> Connection<S> {
    fn new(stream: TcpStream, shared: Arc<Shared<S>>) -> Self {
        Connection {
            stream,
            shared,
            pinned: None,
            latest: None,
            txn: None,
        }
    }

    fn serve(&mut self) {
        let _ = self.stream.set_nodelay(true);
        let _ = self
            .stream
            .set_read_timeout(Some(self.shared.options.idle_timeout));
        loop {
            // Sampled before blocking: a request that arrives during the
            // drain is still answered (typed refusal for writes), and
            // only then is the connection closed.
            let draining = self.shared.shutdown.load(Ordering::SeqCst);
            let payload = match read_frame(&mut self.stream) {
                Ok(p) => p,
                Err(FrameError::Closed) => break,
                Err(FrameError::TimedOut) => {
                    self.shared
                        .stats
                        .idle_closes
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(e @ (FrameError::Oversized { .. } | FrameError::BadCrc { .. })) => {
                    // The stream is not resynchronizable past a bad
                    // length/checksum: answer with the typed error, close.
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = send(
                        &mut self.stream,
                        &Response::Error(WireError {
                            kind: ErrorKindWire::BadRequest,
                            message: e.to_string(),
                        }),
                    );
                    break;
                }
                Err(_) => {
                    // Torn mid-frame or I/O failure: nothing to say to a
                    // half-dead peer; clean close.
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
            };
            let request: Request = match crate::protocol::decode(&payload) {
                Ok(r) => r,
                Err(e) => {
                    // The frame itself was intact, so the stream is still
                    // synchronized: report and keep serving.
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let resp = Response::Error(WireError {
                        kind: ErrorKindWire::BadRequest,
                        message: e.to_string(),
                    });
                    if send(&mut self.stream, &resp).is_err() {
                        break;
                    }
                    continue;
                }
            };
            self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            if let Request::Subscribe(from_lsn) = request {
                // The connection turns into a one-way WAL stream and never
                // returns to request/response service.
                self.serve_subscription(from_lsn);
                break;
            }
            let is_shutdown = matches!(request, Request::Shutdown);
            let response = self.dispatch(request);
            if send(&mut self.stream, &response).is_err() {
                break;
            }
            // During a drain, close after answering the request that was
            // in flight when the drain started instead of letting a
            // chatty client hold the drain open: the drain is bounded by
            // the idle timeout OR one request round-trip per connection,
            // whichever ends first.
            if is_shutdown || draining {
                break;
            }
        }
        // A connection that exits (peer gone, idle-reaped, or drained)
        // with a transaction open must not leave its locks behind.
        if let Some(txn) = self.txn.take() {
            txn_rollback_shared(&self.shared, txn);
        }
    }

    fn dispatch(&mut self, request: Request) -> Response {
        match request {
            Request::Execute(src) => self.write(WriteOp::Execute(src)),
            Request::DeclareRelation(name, arity) => {
                self.write(WriteOp::DeclareRelation(name, arity))
            }
            Request::DeclareAttribute(name) => self.write(WriteOp::DeclareAttribute(name)),
            Request::LoadFact(pred, args) => self.write(WriteOp::LoadFact(pred, args)),
            Request::LoadWff(src) => self.write(WriteOp::LoadWff(src)),
            Request::Begin => self.begin(),
            Request::Commit => self.commit(),
            Request::Rollback => self.rollback(),
            Request::Query(src) => self.read(|r| {
                let generation = r.generation();
                r.query(&src).map(|a| {
                    Response::Rows(QueryReply {
                        certain: a.certain,
                        possible: a.possible,
                        generation,
                    })
                })
            }),
            Request::Check(src) => self.read(|r| {
                let generation = r.generation();
                r.decide(&src).map(|(possible, certain)| {
                    Response::Truth(TruthReply {
                        possible,
                        certain,
                        generation,
                    })
                })
            }),
            Request::Explain(src) => self.read(|r| {
                let generation = r.generation();
                r.explain(&src).map(|e| {
                    Response::Explained(ExplainReply {
                        verdict: wire_verdict(e.verdict),
                        witness: e.witness,
                        counterexample: e.counterexample,
                        generation,
                    })
                })
            }),
            Request::Pin => self.pin(0),
            Request::PinAt(min_lsn) => self.pin(min_lsn),
            Request::Unpin => {
                if self.pinned.take().is_some() {
                    self.shared
                        .stats
                        .pinned_generations
                        .fetch_sub(1, Ordering::Relaxed);
                }
                Response::Unpinned
            }
            Request::Stats => self.stats(),
            Request::Checkpoint => self.checkpoint(),
            Request::Shutdown => {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so the drain starts now.
                let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_secs(1));
                Response::ShuttingDown
            }
            Request::Ping => Response::Pong,
            // Intercepted in `serve` before dispatch; reaching here means
            // a bug, answer typed rather than panic.
            Request::Subscribe(_) => Response::Error(WireError {
                kind: ErrorKindWire::BadRequest,
                message: "subscription must be the stream's own request".into(),
            }),
        }
    }

    /// `Pin` / `PinAt`: nails the connection's reads to the current
    /// published snapshot, refusing with a typed `LagBehind` when that
    /// snapshot has not yet acknowledged `min_lsn` — on the primary that
    /// only happens for an LSN from the future, but the identical check on
    /// a replica is the pinned-LSN consistency contract.
    fn pin(&mut self, min_lsn: u64) -> Response {
        let published = read_published(&self.shared);
        if min_lsn > 0 && published.last_lsn < min_lsn {
            self.shared
                .stats
                .lag_refusals
                .fetch_add(1, Ordering::Relaxed);
            return Response::Error(WireError {
                kind: ErrorKindWire::LagBehind,
                message: format!(
                    "snapshot covers lsn {} but the pin demands lsn {min_lsn}",
                    published.last_lsn
                ),
            });
        }
        let reply = SnapshotReply {
            generation: published.snapshot.generation(),
            updates_applied: published.updates_applied,
            last_lsn: published.last_lsn,
        };
        if self.pinned.is_none() {
            // Re-pinning swaps generations without changing the count of
            // connections holding one.
            self.shared
                .stats
                .pinned_generations
                .fetch_add(1, Ordering::Relaxed);
        }
        self.pinned = Some(published.snapshot.reader());
        Response::Pinned(reply)
    }

    /// Serves one WAL subscription: under the writer lock, computes the
    /// catch-up material for `from_lsn` and registers the subscription
    /// channel — atomically, so every committed record lands in exactly
    /// one of the two. Then streams the backlog and every subsequent write
    /// batch, with empty heartbeats while idle. Exits when the peer drops,
    /// a send fails, or the server drains.
    fn serve_subscription(&mut self, from_lsn: u64) {
        let _ = self
            .stream
            .set_write_timeout(Some(self.shared.options.idle_timeout));
        let (catchup, next_lsn, rx) = {
            let mut guard = match self.shared.writer.lock() {
                Ok(g) => g,
                Err(_) => {
                    let _ = send(&mut self.stream, &Response::Error(poisoned_writer()));
                    return;
                }
            };
            let Some(db) = guard.as_mut() else {
                let _ = send(&mut self.stream, &Response::Error(closed_writer()));
                return;
            };
            // Flush anything still in the shipping tail to the *existing*
            // subscribers, so our registration point is exactly the
            // storage state the catch-up reads.
            ship(&self.shared, db);
            match db.catchup_from(from_lsn) {
                Ok(c) => {
                    let (tx, rx) = mpsc::channel();
                    self.shared
                        .subscribers
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(tx);
                    (c, db.next_lsn(), rx)
                }
                Err(e) => {
                    drop(guard);
                    let _ = send(&mut self.stream, &Response::Error(wire_error(&e)));
                    return;
                }
            }
        };
        let (snapshot, backlog) = match catchup {
            Catchup::Suffix(entries) => (None, entries),
            Catchup::Snapshot(snap, entries) => (Some(*snap), entries),
        };
        // A snapshot too large for one frame streams as CatchupChunk
        // frames after a `chunked: true` announcement.
        let opening = match catchup_frames(snapshot, next_lsn) {
            Ok(frames) => frames,
            Err(_) => {
                let _ = send(
                    &mut self.stream,
                    &Response::Error(WireError {
                        kind: ErrorKindWire::Internal,
                        message: "catch-up snapshot serialization failed".into(),
                    }),
                );
                return;
            }
        };
        for frame in &opening {
            if send(&mut self.stream, frame).is_err() {
                return;
            }
        }
        for chunk in chunk_entries(backlog) {
            if send(
                &mut self.stream,
                &Response::WalBatch(WalBatchReply { entries: chunk }),
            )
            .is_err()
            {
                return;
            }
        }
        loop {
            match rx.recv_timeout(HEARTBEAT_INTERVAL) {
                Ok(entries) => {
                    for chunk in chunk_entries(entries) {
                        if send(
                            &mut self.stream,
                            &Response::WalBatch(WalBatchReply { entries: chunk }),
                        )
                        .is_err()
                        {
                            return;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    // Heartbeat: liveness, and how a dead peer is noticed.
                    if send(
                        &mut self.stream,
                        &Response::WalBatch(WalBatchReply {
                            entries: Vec::new(),
                        }),
                    )
                    .is_err()
                    {
                        return;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// One write request: refused during drain (aborting any open
    /// transaction, so its locks cannot outlive the drain), routed into
    /// the connection's open transaction if one exists, else to the
    /// batching queue or the classic direct path.
    fn write(&mut self, op: WriteOp) -> Response {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            if let Some(txn) = self.txn.take() {
                txn_rollback_shared(&self.shared, txn);
                return Response::Error(drain_abort());
            }
            return Response::Error(WireError {
                kind: ErrorKindWire::ShuttingDown,
                message: "server is draining; write refused".into(),
            });
        }
        if let Some(txn) = self.txn {
            return self.txn_statement(txn, op);
        }
        if self.shared.options.batch_writes {
            self.enqueue_write(op)
        } else {
            self.write_direct(op)
        }
    }

    /// One statement inside this connection's open transaction: acquire
    /// the statement's footprint locks first (blocking, bounded by
    /// `lock_timeout`), then journal the intent and grow the private
    /// workspace under the writer lock. The order matters — waiting
    /// while holding the writer lock would block every other
    /// connection's commit, including the one that would release the
    /// very locks we wait for.
    fn txn_statement(&mut self, txn: u64, op: WriteOp) -> Response {
        let requests = lock_requests_for(&op);
        // Checked before acquisition: locks taken for *this* statement
        // must not count as "already held" (workspace refresh skip).
        let covered = self.shared.locks.holds_all(txn, &requests);
        if let Err(e) =
            self.shared
                .locks
                .lock_wait(txn, &requests, self.shared.options.lock_timeout)
        {
            // Deadlock avoidance: past the deadline the transaction dies
            // so the locks it already holds cannot wedge the system.
            self.txn = None;
            txn_rollback_shared(&self.shared, txn);
            return Response::Error(wire_error(&e));
        }
        txn_apply(&self.shared, txn, &op, covered)
    }

    /// `Begin`: opens a transaction and binds it to this connection.
    fn begin(&mut self) -> Response {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Response::Error(WireError {
                kind: ErrorKindWire::ShuttingDown,
                message: "server is draining; transaction refused".into(),
            });
        }
        if self.txn.is_some() {
            return Response::Error(WireError {
                kind: ErrorKindWire::BadRequest,
                message: "a transaction is already open on this connection".into(),
            });
        }
        let resp = txn_begin_shared(&self.shared);
        if let Response::TxnBegun(reply) = &resp {
            self.txn = Some(reply.txn);
        }
        resp
    }

    /// `Commit`. During a drain the commit is refused and the
    /// transaction aborted — commits are writes, and the drain
    /// discipline is that no new write lands after the flag.
    fn commit(&mut self) -> Response {
        let Some(txn) = self.txn.take() else {
            return Response::Error(no_open_txn());
        };
        if self.shared.shutdown.load(Ordering::SeqCst) {
            txn_rollback_shared(&self.shared, txn);
            return Response::Error(drain_abort());
        }
        txn_commit_shared(&self.shared, txn)
    }

    /// `Rollback`: always honored — it only releases state.
    fn rollback(&mut self) -> Response {
        let Some(txn) = self.txn.take() else {
            return Response::Error(no_open_txn());
        };
        txn_rollback_shared(&self.shared, txn)
    }

    /// The unbatched path: one journaled write under the writer lock, one
    /// snapshot publication, ack.
    fn write_direct(&mut self, op: WriteOp) -> Response {
        let mut guard = match self.shared.writer.lock() {
            Ok(g) => g,
            Err(_) => return Response::Error(poisoned_writer()),
        };
        let Some(db) = guard.as_mut() else {
            return Response::Error(closed_writer());
        };
        write_one(&self.shared, db, &op)
    }

    /// The batched path: enqueue the job, then either win the writer lock
    /// and drain the queue as leader (serving everyone, ourselves
    /// included) or wait as follower for a leader to fill our slot. A
    /// follower re-arms with a short timeout so the one race — a leader
    /// finishing its drain just before our job landed — resolves by us
    /// becoming the next leader instead of waiting forever.
    fn enqueue_write(&mut self, op: WriteOp) -> Response {
        let slot = Arc::new(ReplySlot::default());
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.push_back(WriteJob {
                op,
                done: WriteDone::Slot(Arc::clone(&slot)),
            });
        }
        loop {
            if let Some(r) = slot.try_take() {
                return r;
            }
            match self.shared.writer.try_lock() {
                Ok(mut guard) => {
                    if let Some(r) = slot.try_take() {
                        return r; // served between the check and the lock
                    }
                    match guard.as_mut() {
                        Some(db) => drain_writes(&self.shared, db),
                        None => fail_pending(&self.shared, &closed_writer()),
                    }
                }
                Err(TryLockError::WouldBlock) => {
                    if let Some(r) = slot.wait(Duration::from_millis(2)) {
                        return r;
                    }
                }
                Err(TryLockError::Poisoned(_)) => {
                    // No leader can ever serve the queue again: fail every
                    // pending job (ours included) rather than strand them.
                    fail_pending(&self.shared, &poisoned_writer());
                }
            }
        }
    }

    /// Runs `f` against the connection's current read session: the pinned
    /// snapshot if one is held, else a follow-the-latest reader rebuilt
    /// only when the published generation has moved.
    fn read(
        &mut self,
        f: impl FnOnce(&mut SnapshotReader) -> Result<Response, DbError>,
    ) -> Response {
        self.shared.stats.reads.fetch_add(1, Ordering::Relaxed);
        let reader = if let Some(pinned) = self.pinned.as_mut() {
            pinned
        } else {
            let published = read_published(&self.shared);
            let current = published.snapshot.generation();
            let session = match self.latest.take() {
                Some(r) if r.generation() == current => r,
                _ => published.snapshot.reader(),
            };
            self.latest.insert(session)
        };
        match f(reader) {
            Ok(resp) => resp,
            Err(e) => Response::Error(wire_error(&e)),
        }
    }

    fn stats(&mut self) -> Response {
        let guard = self.shared.writer.lock().ok();
        let db = guard.as_ref().and_then(|g| g.as_ref());
        Response::Stats(Box::new(stats_reply(&self.shared, db)))
    }

    fn checkpoint(&mut self) -> Response {
        let mut guard = match self.shared.writer.lock() {
            Ok(g) => g,
            Err(_) => return Response::Error(poisoned_writer()),
        };
        let Some(db) = guard.as_mut() else {
            return Response::Error(closed_writer());
        };
        match db.checkpoint() {
            Ok(()) => Response::Checkpointed(CheckpointReply {
                lsn: db.snapshot_lsn(),
            }),
            Err(e) => Response::Error(wire_error(&e)),
        }
    }
}

// ----- the write leader -----------------------------------------------------

/// Builds the stats reply from the shared counters, plus the durable
/// figures when the caller could reach the database (pass `None` when the
/// writer is closed or its lock unavailable).
fn stats_reply<S: Storage>(shared: &Shared<S>, db: Option<&DurableDatabase<S>>) -> StatsReply {
    refresh_retained(shared);
    let s = &shared.stats;
    let mut reply = StatsReply {
        accepted: s.accepted.load(Ordering::Relaxed),
        rejected_busy: s.rejected_busy.load(Ordering::Relaxed),
        requests: s.requests.load(Ordering::Relaxed),
        updates: s.updates.load(Ordering::Relaxed),
        reads: s.reads.load(Ordering::Relaxed),
        snapshots_published: s.snapshots_published.load(Ordering::Relaxed),
        idle_closes: s.idle_closes.load(Ordering::Relaxed),
        protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
        write_batches: s.write_batches.load(Ordering::Relaxed),
        coalesced_writes: s.coalesced_writes.load(Ordering::Relaxed),
        pinned_generations: s.pinned_generations.load(Ordering::Relaxed),
        retained_generations: s.retained_generations.load(Ordering::Relaxed),
        compactions: s.compactions.load(Ordering::Relaxed),
        compaction_aborts: s.compaction_aborts.load(Ordering::Relaxed),
        compaction_nodes_reclaimed: s.compaction_nodes_reclaimed.load(Ordering::Relaxed),
        compaction_swap_pause_us: s.compaction_swap_pause_us.load(Ordering::Relaxed),
        compaction_swap_pause_max_us: s.compaction_swap_pause_max_us.load(Ordering::Relaxed),
        records_shipped: s.records_shipped.load(Ordering::Relaxed),
        lag_refusals: s.lag_refusals.load(Ordering::Relaxed),
        txn_begun: s.txn_begun.load(Ordering::Relaxed),
        txn_committed: s.txn_committed.load(Ordering::Relaxed),
        txn_aborted: s.txn_aborted.load(Ordering::Relaxed),
        txn_active: s.txn_active.load(Ordering::Relaxed),
        txn_conflicts: s.txn_conflicts.load(Ordering::Relaxed),
        lock_waits: shared.locks.stats.waits.load(Ordering::Relaxed),
        lock_timeouts: shared.locks.stats.timeouts.load(Ordering::Relaxed),
        subscribers: shared
            .subscribers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len() as u64,
        ..StatsReply::default()
    };
    if let Some(db) = db {
        let wal = db.stats();
        reply.generation = db.db().theory().generation();
        reply.next_lsn = db.next_lsn();
        reply.wal_records = wal.records;
        reply.wal_syncs = wal.syncs;
        reply.wal_checkpoints = wal.checkpoints;
    }
    reply
}

/// The current published snapshot (the lock only ever guards an `Arc`
/// swap, so a poisoned lock still holds a consistent value).
fn read_published<S: Storage>(shared: &Shared<S>) -> Arc<Published> {
    Arc::clone(
        &shared
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner),
    )
}

/// Swaps in a new published snapshot and counts the publication. The
/// superseded generation is recorded as a weak reference so the
/// `retained_generations` gauge can report how many old `Arc<Theory>`
/// allocations are still pinned alive by readers or cached sessions.
fn publish<S: Storage>(shared: &Shared<S>, p: Published) {
    let current = p.snapshot.generation();
    let superseded = {
        let mut slot = shared
            .published
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *slot, Arc::new(p))
    };
    shared
        .stats
        .snapshots_published
        .fetch_add(1, Ordering::Relaxed);
    let old_gen = superseded.snapshot.generation();
    if old_gen != current {
        let mut retained = shared
            .retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if retained.iter().all(|(g, _)| *g != old_gen) {
            retained.push((old_gen, superseded.snapshot.theory_weak()));
        }
    }
    refresh_retained(shared);
}

/// Prunes the superseded-generation registry of entries whose theory has
/// actually been dropped (or that became current again after a no-op
/// publication) and refreshes the `retained_generations` gauge.
fn refresh_retained<S: Storage>(shared: &Shared<S>) -> u64 {
    let current = read_published(shared).snapshot.generation();
    let mut retained = shared
        .retained
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    retained.retain(|(g, w)| *g != current && w.strong_count() > 0);
    let count = retained.len() as u64;
    shared
        .stats
        .retained_generations
        .store(count, Ordering::Relaxed);
    count
}

/// Applies one write op to the database; `(nodes_added, completion_added)`
/// feed the ack.
fn apply_op<S: Storage>(db: &mut DurableDatabase<S>, op: &WriteOp) -> Result<(i64, u64), DbError> {
    match op {
        WriteOp::Execute(src) => {
            let report = db.execute(src)?;
            Ok((report.nodes_added as i64, report.completion_added as u64))
        }
        WriteOp::DeclareRelation(name, arity) => {
            db.declare_relation(name, *arity as usize)?;
            Ok((0, 0))
        }
        WriteOp::DeclareAttribute(name) => {
            db.declare_attribute(name)?;
            Ok((0, 0))
        }
        WriteOp::LoadFact(pred, args) => {
            let refs: Vec<&str> = args.iter().map(String::as_str).collect();
            db.load_fact(pred, &refs)?;
            Ok((0, 0))
        }
        WriteOp::LoadWff(src) => {
            db.load_wff(src)?;
            Ok((0, 0))
        }
    }
}

/// Applies one write op under the (held) writer lock — the unbatched
/// path shared by the thread-per-connection loop and the epoll writer
/// thread. One journaled write, one snapshot publication, one shipped
/// batch; no group sync and no batch accounting (the `write_batches`
/// counter is a batched-path metric).
fn write_one<S: Storage>(
    shared: &Shared<S>,
    db: &mut DurableDatabase<S>,
    op: &WriteOp,
) -> Response {
    if let Some(e) = plain_write_conflict(shared, op) {
        return Response::Error(wire_error(&e));
    }
    let lsn = db.next_lsn();
    let response = match apply_op(db, op) {
        Ok((nodes_added, completion_added)) => {
            let generation = db.db().theory().generation();
            let snapshot = TheorySnapshot::capture(db.db().theory());
            let updates_applied = read_published(shared).updates_applied + 1;
            publish(
                shared,
                Published {
                    snapshot,
                    updates_applied,
                    last_lsn: lsn,
                },
            );
            shared.stats.updates.fetch_add(1, Ordering::Relaxed);
            Response::Executed(ExecReply {
                lsn,
                generation,
                nodes_added,
                completion_added,
            })
        }
        Err(e) => Response::Error(wire_error(&e)),
    };
    // Fan the batch out to subscribers while still holding the writer
    // lock, so shipped batches arrive in commit order. A refused op
    // ships nothing (its abort pair is filtered by the drain).
    ship(shared, db);
    response
}

/// The leader loop: repeatedly empties the queue, slicing it into batches
/// of consecutive pairwise-independent `Execute` statements. Statements
/// are *never reordered* — the footprint analysis only decides where one
/// batch ends and the next begins, so coalescing is always semantically
/// invisible; independence additionally guarantees that the intermediate
/// snapshots a batch skips publishing are ones no reader could
/// distinguish from a reordering of independent writes. Anything the
/// analyzer cannot parse (or any non-`Execute` op, which changes the
/// language itself) is a barrier that runs in a batch of its own.
fn drain_writes<S: Storage>(shared: &Shared<S>, db: &mut DurableDatabase<S>) {
    loop {
        let jobs: Vec<WriteJob> = {
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            q.drain(..).collect()
        };
        if jobs.is_empty() {
            return;
        }
        apply_batched(shared, db, jobs);
    }
}

/// Slices one drained job list into conflict-free batches and flushes
/// each — the shared core of the connection-thread leader above and the
/// epoll writer thread.
fn apply_batched<S: Storage>(shared: &Shared<S>, db: &mut DurableDatabase<S>, jobs: Vec<WriteJob>) {
    // Fresh per drain: footprints only need to be comparable within
    // one drain, and a long-lived analyzer would intern atoms forever.
    let mut analyzer = ConflictAnalyzer::default();
    let mut batch: Vec<WriteJob> = Vec::new();
    let mut feet: Vec<AccessSet> = Vec::new();
    for job in jobs {
        let footprint = match &job.op {
            WriteOp::Execute(src) => analyzer.footprint(src),
            _ => None,
        };
        match footprint {
            Some(fp) if batch.len() < MAX_BATCH && feet.iter().all(|f| f.independent(&fp)) => {
                batch.push(job);
                feet.push(fp);
            }
            Some(fp) => {
                flush_batch(shared, db, std::mem::take(&mut batch));
                feet.clear();
                batch.push(job);
                feet.push(fp);
            }
            None => {
                flush_batch(shared, db, std::mem::take(&mut batch));
                feet.clear();
                flush_batch(shared, db, vec![job]);
            }
        }
    }
    flush_batch(shared, db, batch);
}

/// Applies one batch in arrival order, then makes it durable with a
/// single sync and publishes a single snapshot before acking anyone.
/// Per-job failures (parse errors, refused updates) ack individually and
/// don't abort the rest of the batch — identical to what the unbatched
/// path would have done serving them back to back.
fn flush_batch<S: Storage>(shared: &Shared<S>, db: &mut DurableDatabase<S>, batch: Vec<WriteJob>) {
    if batch.is_empty() {
        return;
    }
    let size = batch.len();
    let mut results: Vec<(WriteDone, Result<ExecReply, DbError>)> = Vec::with_capacity(size);
    let mut applied = 0u64;
    let mut last_lsn = None;
    for job in batch {
        if let Some(e) = plain_write_conflict(shared, &job.op) {
            results.push((job.done, Err(e)));
            continue;
        }
        let lsn = db.next_lsn();
        match apply_op(db, &job.op) {
            Ok((nodes_added, completion_added)) => {
                applied += 1;
                last_lsn = Some(lsn);
                let generation = db.db().theory().generation();
                results.push((
                    job.done,
                    Ok(ExecReply {
                        lsn,
                        generation,
                        nodes_added,
                        completion_added,
                    }),
                ));
            }
            Err(e) => results.push((job.done, Err(e))),
        }
    }
    if let Some(last_lsn) = last_lsn {
        // One durability point for the whole batch. If it fails, no ack
        // may claim success: the records are applied in memory but not
        // guaranteed on storage.
        if let Err(e) = db.sync() {
            let failure = wire_error(&e);
            for (done, result) in results {
                done.fill(Response::Error(match result {
                    Ok(_) => failure.clone(),
                    Err(own) => wire_error(&own),
                }));
            }
            // The records are still the writer's live (and WAL-appended)
            // state; followers track the live primary.
            ship(shared, db);
            return;
        }
        let snapshot = TheorySnapshot::capture(db.db().theory());
        let updates_applied = read_published(shared).updates_applied + applied;
        publish(
            shared,
            Published {
                snapshot,
                updates_applied,
                last_lsn,
            },
        );
        shared.stats.updates.fetch_add(applied, Ordering::Relaxed);
    }
    shared.stats.write_batches.fetch_add(1, Ordering::Relaxed);
    if size > 1 {
        shared
            .stats
            .coalesced_writes
            .fetch_add(size as u64, Ordering::Relaxed);
    }
    for (done, result) in results {
        done.fill(match result {
            Ok(reply) => Response::Executed(reply),
            Err(e) => Response::Error(wire_error(&e)),
        });
    }
    // One shipped batch per flushed batch, in commit order (the writer
    // lock is still held).
    ship(shared, db);
}

/// Drains the shipping tail and fans it out to every live subscriber,
/// pruning subscribers whose stream side is gone. Must be called with the
/// writer lock held so batches are delivered in commit order. When no
/// subscriber is registered the drained records are simply discarded — a
/// later subscriber gets them from storage via catch-up.
fn ship<S: Storage>(shared: &Shared<S>, db: &mut DurableDatabase<S>) {
    let entries = db.drain_shipping();
    if entries.is_empty() {
        return;
    }
    let mut subs = shared
        .subscribers
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if subs.is_empty() {
        return;
    }
    let shipped = (entries.len() * subs.len()) as u64;
    subs.retain(|tx| tx.send(entries.clone()).is_ok());
    drop(subs);
    shared
        .stats
        .records_shipped
        .fetch_add(shipped, Ordering::Relaxed);
    // Under the reactor the subscriber channels are drained by the event
    // loop, not by per-connection threads: poke it awake.
    notify_shipped(shared);
}

/// Wakes the epoll reactor (if one is serving) so it pumps freshly
/// shipped entries out to streaming connections.
fn notify_shipped<S: Storage>(shared: &Shared<S>) {
    let notify = shared.notify.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(completions) = notify.as_ref() {
        completions.post(TOKEN_NONE, 0, Done::Shipped);
    }
}

/// Splits a shipped batch into frame-sized chunks: entries are packed
/// greedily by serialized size against the frame cap (minus wrapper
/// headroom). A single entry always fits — [`winslett_core::MAX_RECORD_LEN`]
/// is enforced at mint time precisely so this holds.
pub(crate) fn chunk_entries(entries: Vec<WalEntry>) -> Vec<Vec<WalEntry>> {
    let budget = MAX_FRAME_LEN as usize - 1024;
    let mut chunks = Vec::new();
    let mut chunk: Vec<WalEntry> = Vec::new();
    let mut used = 0usize;
    for entry in entries {
        // Serialized size plus the array comma; cheap relative to the
        // frame send that follows.
        let cost = serde_json::to_string(&entry)
            .map(|s| s.len() + 1)
            .unwrap_or(budget);
        if !chunk.is_empty() && used + cost > budget {
            chunks.push(std::mem::take(&mut chunk));
            used = 0;
        }
        used += cost;
        chunk.push(entry);
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    chunks
}

/// Fails every queued job with `err` — used when no leader can ever run
/// again (database closed or writer state poisoned).
fn fail_pending<S: Storage>(shared: &Shared<S>, err: &WireError) {
    let jobs: Vec<WriteJob> = {
        let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.drain(..).collect()
    };
    for job in jobs {
        job.done.fill(Response::Error(err.clone()));
    }
}

// ----- transactions ----------------------------------------------------------

/// Lock requests for one write op, at footprint-atom granularity where
/// the analyzer can prove them (Theorem 4: updates with disjoint
/// footprints commute) and the global key where it cannot. Keys are the
/// atoms' textual rendering, stable across analyzer instances, so a
/// `LoadFact` and an `Execute` touching the same ground atom contend.
fn lock_requests_for(op: &WriteOp) -> Vec<LockRequest> {
    match op {
        WriteOp::Execute(src) => {
            let profile = ConflictAnalyzer::default().lock_profile(src);
            if profile.global {
                return vec![LockRequest::global()];
            }
            profile
                .writes
                .iter()
                .map(|k| LockRequest::exclusive(k.clone()))
                .chain(profile.reads.iter().map(|k| LockRequest::shared(k.clone())))
                .collect()
        }
        WriteOp::LoadFact(pred, args) if !args.is_empty() => {
            vec![LockRequest::exclusive(format!(
                "{pred}({})",
                args.join(",")
            ))]
        }
        WriteOp::LoadFact(pred, _) => vec![LockRequest::exclusive(pred.clone())],
        // Declarations and raw wffs change the language itself.
        _ => vec![LockRequest::global()],
    }
}

/// Refuses a plain (non-transactional) write that would collide with
/// locks held by an open transaction. Waiting is not an option here:
/// plain writes are applied by whichever thread holds the writer lock,
/// and on the epoll path that is the same thread that processes the
/// commits that would release the locks.
fn plain_write_conflict<S: Storage>(shared: &Shared<S>, op: &WriteOp) -> Option<DbError> {
    if shared.locks.holders() == 0 {
        return None; // fast path: no transaction holds anything
    }
    let key = shared.locks.would_block(&lock_requests_for(op))?;
    shared.stats.txn_conflicts.fetch_add(1, Ordering::Relaxed);
    Some(DbError::TxnConflict {
        message: format!(
            "write collides with lock `{key}` held by an open transaction; \
             retry after it finishes"
        ),
    })
}

/// Decrements a gauge without wrapping below zero (teardown paths can
/// race each other harmlessly).
fn gauge_dec(gauge: &AtomicU64) {
    let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
}

fn no_open_txn() -> WireError {
    WireError {
        kind: ErrorKindWire::BadRequest,
        message: "no transaction is open on this connection".into(),
    }
}

fn drain_abort() -> WireError {
    WireError {
        kind: ErrorKindWire::ShuttingDown,
        message: "server is draining; transaction aborted".into(),
    }
}

/// Opens a transaction on the shared writer: journals the begin marker
/// and bumps the gauges. The reply carries the new id (its `TxnBegin`
/// record's LSN).
fn txn_begin_shared<S: Storage>(shared: &Shared<S>) -> Response {
    let mut guard = match shared.writer.lock() {
        Ok(g) => g,
        Err(_) => return Response::Error(poisoned_writer()),
    };
    let Some(db) = guard.as_mut() else {
        return Response::Error(closed_writer());
    };
    match db.txn_begin() {
        Ok(txn) => {
            shared.stats.txn_begun.fetch_add(1, Ordering::Relaxed);
            shared.stats.txn_active.fetch_add(1, Ordering::Relaxed);
            Response::TxnBegun(TxnReply {
                txn,
                lsn: 0,
                statements: 0,
            })
        }
        Err(e) => Response::Error(wire_error(&e)),
    }
}

/// Applies one statement inside an open transaction. The caller already
/// holds the transaction's locks on the statement's footprint; this
/// journals the intent and grows the private workspace — the live
/// database (and published snapshot) are untouched until commit.
/// `covered` means every footprint lock was held *before* this
/// statement acquired anything, so the workspace is provably current on
/// every atom it touches and the clone-and-redo refresh is skipped.
fn txn_apply<S: Storage>(shared: &Shared<S>, txn: u64, op: &WriteOp, covered: bool) -> Response {
    let mut guard = match shared.writer.lock() {
        Ok(g) => g,
        Err(_) => return Response::Error(poisoned_writer()),
    };
    let Some(db) = guard.as_mut() else {
        return Response::Error(closed_writer());
    };
    let lsn = db.next_lsn();
    let result = match op {
        WriteOp::Execute(src) if covered => db
            .txn_execute_covered(txn, src)
            .map(|r| (r.nodes_added as i64, r.completion_added as u64)),
        WriteOp::Execute(src) => db
            .txn_execute(txn, src)
            .map(|r| (r.nodes_added as i64, r.completion_added as u64)),
        WriteOp::DeclareRelation(name, arity) => db
            .txn_declare_relation(txn, name, *arity as usize)
            .map(|_| (0, 0)),
        WriteOp::DeclareAttribute(name) => db.txn_declare_attribute(txn, name).map(|_| (0, 0)),
        WriteOp::LoadFact(pred, args) => {
            let refs: Vec<&str> = args.iter().map(String::as_str).collect();
            db.txn_load_fact(txn, pred, &refs).map(|_| (0, 0))
        }
        WriteOp::LoadWff(src) => db.txn_load_wff(txn, src).map(|_| (0, 0)),
    };
    match result {
        Ok((nodes_added, completion_added)) => {
            let generation = db
                .txn_view(txn)
                .map(|w| w.theory().generation())
                .unwrap_or_default();
            Response::Executed(ExecReply {
                lsn,
                generation,
                nodes_added,
                completion_added,
            })
        }
        // A refused statement does not kill the transaction: its
        // compensation is journaled and the workspace is unchanged.
        Err(e) => Response::Error(wire_error(&e)),
    }
}

/// Commits: reapplies the statements against the live database, journals
/// the commit marker, syncs (the transaction's single durability point),
/// publishes one snapshot, ships — then releases every lock the
/// transaction held, whatever the outcome (strict two-phase locking).
fn txn_commit_shared<S: Storage>(shared: &Shared<S>, txn: u64) -> Response {
    let resp = 'commit: {
        let mut guard = match shared.writer.lock() {
            Ok(g) => g,
            Err(_) => break 'commit Response::Error(poisoned_writer()),
        };
        let Some(db) = guard.as_mut() else {
            break 'commit Response::Error(closed_writer());
        };
        match db.txn_commit(txn) {
            Ok((lsn, ops)) => {
                let snapshot = TheorySnapshot::capture(db.db().theory());
                let updates_applied = read_published(shared).updates_applied + ops as u64;
                publish(
                    shared,
                    Published {
                        snapshot,
                        updates_applied,
                        last_lsn: lsn,
                    },
                );
                shared
                    .stats
                    .updates
                    .fetch_add(ops as u64, Ordering::Relaxed);
                shared.stats.txn_committed.fetch_add(1, Ordering::Relaxed);
                ship(shared, db);
                Response::TxnCommitted(TxnReply {
                    txn,
                    lsn,
                    statements: ops as u64,
                })
            }
            Err(e) => {
                // The core rolled the transaction back (reapply or
                // journaling failure): surface the typed refusal.
                shared.stats.txn_aborted.fetch_add(1, Ordering::Relaxed);
                ship(shared, db);
                Response::Error(wire_error(&e))
            }
        }
    };
    shared.locks.release_all(txn);
    gauge_dec(&shared.stats.txn_active);
    resp
}

/// Rolls back: journals the abort marker and discards the workspace
/// (the live database never saw the intents), then releases the locks.
fn txn_rollback_shared<S: Storage>(shared: &Shared<S>, txn: u64) -> Response {
    let resp = 'rollback: {
        let mut guard = match shared.writer.lock() {
            Ok(g) => g,
            Err(_) => break 'rollback Response::Error(poisoned_writer()),
        };
        let Some(db) = guard.as_mut() else {
            break 'rollback Response::Error(closed_writer());
        };
        match db.txn_rollback(txn) {
            Ok(()) => {
                shared.stats.txn_aborted.fetch_add(1, Ordering::Relaxed);
                ship(shared, db);
                Response::TxnRolledBack(TxnReply {
                    txn,
                    lsn: 0,
                    statements: 0,
                })
            }
            Err(e) => Response::Error(wire_error(&e)),
        }
    };
    shared.locks.release_all(txn);
    gauge_dec(&shared.stats.txn_active);
    resp
}

/// Rolls back every transaction still open on the writer — the teardown
/// safety net, run after connections have drained so an in-flight
/// transaction's journaled intents are compensated before the final
/// close (recovery would do the same, but doing it live keeps the WAL's
/// final state self-describing).
fn rollback_orphans<S: Storage>(shared: &Shared<S>) {
    let Ok(mut guard) = shared.writer.lock() else {
        return;
    };
    let Some(db) = guard.as_mut() else {
        return;
    };
    for txn in db.txn_ids() {
        if db.txn_rollback(txn).is_ok() {
            shared.stats.txn_aborted.fetch_add(1, Ordering::Relaxed);
        }
        shared.locks.release_all(txn);
        gauge_dec(&shared.stats.txn_active);
    }
}

// ----- the epoll writer thread -----------------------------------------------

/// One unit of work for the epoll server's single writer thread.
enum WriterWork {
    /// A write bound for the conflict-aware batcher.
    Write(WriteJob),
    /// `Stats` — a control op that must see the post-write counters, so
    /// it acts as a barrier: pending writes flush first.
    Stats { token: u64, seq: u64 },
    /// `Checkpoint` — barrier for the same reason.
    Checkpoint { token: u64, seq: u64 },
    /// `Subscribe` — registered under the writer lock so the catch-up
    /// point is exact; also a barrier.
    Subscribe { token: u64, seq: u64, from_lsn: u64 },
    /// `Begin` — opens a transaction and binds it to the connection's
    /// reserved `txn_by_token` slot.
    TxnBegin { token: u64, seq: u64 },
    /// A statement inside an open transaction. The writer thread must
    /// never condvar-wait on locks (it is the only thread that releases
    /// them), so a contended statement parks and retries until
    /// `deadline`, then aborts the transaction with a typed timeout.
    TxnStatement {
        token: u64,
        seq: u64,
        txn: u64,
        op: WriteOp,
        deadline: Instant,
    },
    /// `Commit`.
    TxnCommit { token: u64, seq: u64, txn: u64 },
    /// `Rollback`.
    TxnRollback { token: u64, seq: u64, txn: u64 },
    /// The connection is gone (drained, errored, idle-closed) with a
    /// transaction open or pending: roll it back, release its locks,
    /// no reply.
    TxnAbandon { token: u64 },
}

/// The channel the reactor pushes [`WriterWork`] into: a mutex-guarded
/// deque with a condvar, so the writer thread batches everything that
/// accumulated while it was applying (group commit for free).
#[derive(Default)]
struct WriterChan {
    queue: Mutex<VecDeque<WriterWork>>,
    cv: Condvar,
    exit: AtomicBool,
}

impl WriterChan {
    fn push(&self, work: WriterWork) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(work);
        self.cv.notify_one();
    }

    /// Signals the writer thread to exit once the queue is empty.
    fn close(&self) {
        self.exit.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Blocks for the next run of work; `None` means closed and empty.
    fn pop_all(&self) -> Option<Vec<WriterWork>> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !q.is_empty() {
                return Some(q.drain(..).collect());
            }
            if self.exit.load(Ordering::SeqCst) {
                return None;
            }
            q = self.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`WriterChan::pop_all`], but gives up after `wait` and
    /// returns an empty run, so a caller with parked transactional
    /// statements can retry them (and fire their deadlines) even when no
    /// new work arrives. `None` still means closed-and-empty.
    fn pop_all_within(&self, wait: Duration) -> Option<Vec<WriterWork>> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if q.is_empty() && !self.exit.load(Ordering::SeqCst) {
            let (guard, _) = self
                .cv
                .wait_timeout(q, wait)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
        if !q.is_empty() {
            return Some(q.drain(..).collect());
        }
        if self.exit.load(Ordering::SeqCst) {
            return None;
        }
        Some(Vec::new())
    }
}

/// The epoll server's writer thread: consumes [`WriterWork`] runs,
/// flushing accumulated writes through the conflict-aware batcher and
/// treating control ops as barriers. A panic while applying fails every
/// sink in the run with a typed `Internal` error instead of wedging the
/// connections awaiting completions.
fn run_writer<S: Storage>(
    shared: &Arc<Shared<S>>,
    chan: &WriterChan,
    completions: &Arc<Completions>,
) {
    // Contended transactional statements waiting for another
    // transaction's commit/rollback (processed by this same thread) to
    // release their locks.
    let mut parked: Vec<WriterWork> = Vec::new();
    loop {
        let run = if parked.is_empty() {
            match chan.pop_all() {
                Some(r) => r,
                None => break,
            }
        } else {
            // Poll with a short wait so parked deadlines fire even when
            // no new work arrives.
            match chan.pop_all_within(Duration::from_millis(3)) {
                Some(r) => r,
                None => break,
            }
        };
        // Retry parked statements first (their locks may have been
        // released by work in the previous run), then the new arrivals.
        let work: Vec<WriterWork> = parked.drain(..).chain(run).collect();
        // Sinks pre-cloned so the panic path can still reach them.
        let sinks: Vec<WriteDone> = work
            .iter()
            .filter_map(|w| match w {
                WriterWork::Write(job) => Some(job.done.clone()),
                WriterWork::TxnAbandon { .. } => None,
                WriterWork::Stats { token, seq }
                | WriterWork::Checkpoint { token, seq }
                | WriterWork::Subscribe { token, seq, .. }
                | WriterWork::TxnBegin { token, seq }
                | WriterWork::TxnStatement { token, seq, .. }
                | WriterWork::TxnCommit { token, seq, .. }
                | WriterWork::TxnRollback { token, seq, .. } => Some(WriteDone::Reactor {
                    token: *token,
                    seq: *seq,
                    completions: Arc::clone(completions),
                }),
            })
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut pending: Vec<WriteJob> = Vec::new();
            let mut still_parked: Vec<WriterWork> = Vec::new();
            for work in work {
                match work {
                    WriterWork::Write(job) => pending.push(job),
                    txn @ (WriterWork::TxnBegin { .. }
                    | WriterWork::TxnStatement { .. }
                    | WriterWork::TxnCommit { .. }
                    | WriterWork::TxnRollback { .. }
                    | WriterWork::TxnAbandon { .. }) => {
                        // Transactional ops are barriers too: plain
                        // writes queued before them flush first, so the
                        // conflict gate sees the lock table the client
                        // observed when it pipelined the requests.
                        flush_writes(shared, std::mem::take(&mut pending));
                        run_txn_work(shared, completions, txn, &mut still_parked);
                    }
                    control => {
                        flush_writes(shared, std::mem::take(&mut pending));
                        run_control(shared, completions, control);
                    }
                }
            }
            flush_writes(shared, pending);
            still_parked
        }));
        match outcome {
            Ok(still_parked) => parked = still_parked,
            Err(_) => {
                for sink in sinks {
                    sink.fill(Response::Error(poisoned_writer()));
                }
            }
        }
    }
    // The writer is exiting: parked statements can never be served.
    for work in parked {
        if let WriterWork::TxnStatement { token, seq, .. } = work {
            completions.post(token, seq, Done::Resp(Response::Error(closed_writer())));
        }
    }
}

/// One transactional op on the writer thread. This thread is the only
/// one that releases reactor-side locks, so acquisition here is strictly
/// non-blocking: contended statements go back to `parked`.
fn run_txn_work<S: Storage>(
    shared: &Arc<Shared<S>>,
    completions: &Arc<Completions>,
    work: WriterWork,
    parked: &mut Vec<WriterWork>,
) {
    match work {
        WriterWork::TxnBegin { token, seq } => {
            let resp = txn_begin_shared(shared);
            let mut map = shared
                .txn_by_token
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match &resp {
                // Fill the slot the reactor reserved — unless the
                // connection already died and `TxnAbandon` cleared it
                // (impossible before this runs, since the abandon is
                // queued behind us; the guard is cheap regardless).
                Response::TxnBegun(r) if map.contains_key(&token) => {
                    map.insert(token, r.txn);
                }
                Response::TxnBegun(r) => {
                    let txn = r.txn;
                    drop(map);
                    txn_rollback_shared(shared, txn);
                    map = shared
                        .txn_by_token
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => {
                    map.remove(&token);
                }
            }
            drop(map);
            completions.post(token, seq, Done::Resp(resp));
        }
        WriterWork::TxnStatement {
            token,
            seq,
            txn,
            op,
            deadline,
        } => {
            if !txn_mapping_current(shared, token, txn) {
                // Aborted underneath us (drain or timeout on an earlier
                // parked statement of the same transaction).
                let e = DbError::TxnUnknown { txn };
                completions.post(token, seq, Done::Resp(Response::Error(wire_error(&e))));
                return;
            }
            let requests = lock_requests_for(&op);
            // Checked before acquisition: locks taken for *this*
            // statement must not count as "already held" (refresh skip).
            let covered = shared.locks.holds_all(txn, &requests);
            match shared.locks.try_lock(txn, &requests) {
                Ok(()) => {
                    let resp = txn_apply(shared, txn, &op, covered);
                    completions.post(token, seq, Done::Resp(resp));
                }
                Err(_) if Instant::now() < deadline => {
                    shared.locks.stats.waits.fetch_add(1, Ordering::Relaxed);
                    parked.push(WriterWork::TxnStatement {
                        token,
                        seq,
                        txn,
                        op,
                        deadline,
                    });
                }
                Err(key) => {
                    // Deadline passed: abort the transaction so its held
                    // locks cannot wedge the system (deadlock avoidance).
                    shared.locks.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    shared
                        .txn_by_token
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .remove(&token);
                    txn_rollback_shared(shared, txn);
                    let e = DbError::TxnTimeout {
                        message: format!(
                            "lock `{key}` still contended at the deadline; \
                             transaction {txn} rolled back"
                        ),
                    };
                    completions.post(token, seq, Done::Resp(Response::Error(wire_error(&e))));
                }
            }
        }
        WriterWork::TxnCommit { token, seq, txn } => {
            let resp = if txn_mapping_current(shared, token, txn) {
                shared
                    .txn_by_token
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&token);
                txn_commit_shared(shared, txn)
            } else {
                Response::Error(no_open_txn())
            };
            completions.post(token, seq, Done::Resp(resp));
        }
        WriterWork::TxnRollback { token, seq, txn } => {
            let resp = if txn_mapping_current(shared, token, txn) {
                shared
                    .txn_by_token
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&token);
                txn_rollback_shared(shared, txn)
            } else {
                Response::Error(no_open_txn())
            };
            completions.post(token, seq, Done::Resp(resp));
        }
        WriterWork::TxnAbandon { token } => {
            let txn = shared
                .txn_by_token
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&token);
            // Queue order guarantees the `TxnBegin` that reserved the
            // slot ran before us, so a pending (0) mapping cannot be
            // observed here.
            if let Some(txn) = txn.filter(|&t| t != 0) {
                txn_rollback_shared(shared, txn);
            }
        }
        _ => {} // non-transactional work is routed by the caller
    }
}

/// Whether `token` still owns `txn` — false once a drain abort, timeout
/// abort, or abandon has dissolved the binding.
fn txn_mapping_current<S: Storage>(shared: &Shared<S>, token: u64, txn: u64) -> bool {
    shared
        .txn_by_token
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&token)
        == Some(&txn)
}

/// Applies one accumulated run of writes under the writer lock — through
/// the batcher when enabled, else one publication per write.
fn flush_writes<S: Storage>(shared: &Arc<Shared<S>>, jobs: Vec<WriteJob>) {
    if jobs.is_empty() {
        return;
    }
    let mut guard = match shared.writer.lock() {
        Ok(g) => g,
        Err(_) => {
            for job in jobs {
                job.done.fill(Response::Error(poisoned_writer()));
            }
            return;
        }
    };
    let Some(db) = guard.as_mut() else {
        drop(guard);
        for job in jobs {
            job.done.fill(Response::Error(closed_writer()));
        }
        return;
    };
    if shared.options.batch_writes {
        apply_batched(shared, db, jobs);
    } else {
        for job in jobs {
            let resp = write_one(shared, db, &job.op);
            job.done.fill(resp);
        }
    }
}

/// One control op on the writer thread; the reply goes back to the
/// reactor as a completion.
fn run_control<S: Storage>(
    shared: &Arc<Shared<S>>,
    completions: &Arc<Completions>,
    work: WriterWork,
) {
    match work {
        // Writes and transaction work are routed by the caller.
        WriterWork::Write(_)
        | WriterWork::TxnBegin { .. }
        | WriterWork::TxnStatement { .. }
        | WriterWork::TxnCommit { .. }
        | WriterWork::TxnRollback { .. }
        | WriterWork::TxnAbandon { .. } => {}
        WriterWork::Stats { token, seq } => {
            let guard = shared.writer.lock().ok();
            let db = guard.as_ref().and_then(|g| g.as_ref());
            let reply = stats_reply(shared, db);
            completions.post(token, seq, Done::Resp(Response::Stats(Box::new(reply))));
        }
        WriterWork::Checkpoint { token, seq } => {
            let resp = {
                let mut guard = match shared.writer.lock() {
                    Ok(g) => g,
                    Err(_) => {
                        completions.post(
                            token,
                            seq,
                            Done::Resp(Response::Error(poisoned_writer())),
                        );
                        return;
                    }
                };
                match guard.as_mut() {
                    Some(db) => match db.checkpoint() {
                        Ok(()) => Response::Checkpointed(CheckpointReply {
                            lsn: db.snapshot_lsn(),
                        }),
                        Err(e) => Response::Error(wire_error(&e)),
                    },
                    None => Response::Error(closed_writer()),
                }
            };
            completions.post(token, seq, Done::Resp(resp));
        }
        WriterWork::Subscribe {
            token,
            seq,
            from_lsn,
        } => match subscription_start(shared, from_lsn) {
            Ok((frames, rx)) => completions.post(token, seq, Done::SubStart { frames, rx }),
            Err(e) => completions.post(token, seq, Done::RespClose(Response::Error(e))),
        },
    }
}

/// Registers a subscription under the writer lock: ships the tail to the
/// existing subscribers so the registration point is exactly the storage
/// state the catch-up reads, then plans the opening frames (catch-up,
/// chunked if oversized, plus the backlog batches).
fn subscription_start<S: Storage>(
    shared: &Arc<Shared<S>>,
    from_lsn: u64,
) -> Result<(Vec<Response>, mpsc::Receiver<Vec<WalEntry>>), WireError> {
    let mut guard = shared.writer.lock().map_err(|_| poisoned_writer())?;
    let db = guard.as_mut().ok_or_else(closed_writer)?;
    ship(shared, db);
    let catchup = db.catchup_from(from_lsn).map_err(|e| wire_error(&e))?;
    let next_lsn = db.next_lsn();
    let (tx, rx) = mpsc::channel();
    shared
        .subscribers
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(tx);
    drop(guard);
    let (snapshot, backlog) = match catchup {
        Catchup::Suffix(entries) => (None, entries),
        Catchup::Snapshot(snap, entries) => (Some(*snap), entries),
    };
    let mut frames = catchup_frames(snapshot, next_lsn).map_err(|_| WireError {
        kind: ErrorKindWire::Internal,
        message: "catch-up snapshot serialization failed".into(),
    })?;
    for chunk in chunk_entries(backlog) {
        frames.push(Response::WalBatch(WalBatchReply { entries: chunk }));
    }
    Ok((frames, rx))
}

// ----- the primary's reactor role ---------------------------------------------

/// The primary half of the reactor: writes, stats, checkpoints, and
/// subscriptions go to the writer thread; everything else the reactor
/// already owns.
struct PrimaryRole<S: Storage> {
    shared: Arc<Shared<S>>,
    chan: Arc<WriterChan>,
    completions: Arc<Completions>,
}

impl<S: Storage> PrimaryRole<S> {
    fn defer_write(&self, token: u64, seq: u64, draining: bool, op: WriteOp) -> RoleAction {
        let txn = self.open_txn(token);
        if draining {
            if txn.is_some() {
                // Satellite drain discipline: a statement inside an open
                // transaction aborts it, releasing its locks now rather
                // than at connection teardown.
                self.chan.push(WriterWork::TxnAbandon { token });
                return RoleAction::Reply(Response::Error(drain_abort()));
            }
            return RoleAction::Reply(Response::Error(WireError {
                kind: ErrorKindWire::ShuttingDown,
                message: "server is draining; write refused".into(),
            }));
        }
        if let Some(txn) = txn {
            self.chan.push(WriterWork::TxnStatement {
                token,
                seq,
                txn,
                op,
                deadline: Instant::now() + self.shared.options.lock_timeout,
            });
            return RoleAction::Deferred;
        }
        self.chan.push(WriterWork::Write(WriteJob {
            op,
            done: WriteDone::Reactor {
                token,
                seq,
                completions: Arc::clone(&self.completions),
            },
        }));
        RoleAction::Deferred
    }

    /// The transaction bound to `token`, if its `Begin` has completed.
    /// A `0` (reserved) value cannot be observed here: the connection is
    /// parked in `Await` until the `TxnBegin` completion fills it.
    fn open_txn(&self, token: u64) -> Option<u64> {
        self.shared
            .txn_by_token
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&token)
            .copied()
            .filter(|&t| t != 0)
    }
}

impl<S: Storage> Role for PrimaryRole<S> {
    fn counters(&self) -> NetCounters<'_> {
        let s = &self.shared.stats;
        NetCounters {
            accepted: &s.accepted,
            rejected_busy: &s.rejected_busy,
            requests: &s.requests,
            reads: &s.reads,
            idle_closes: &s.idle_closes,
            protocol_errors: &s.protocol_errors,
            pinned_generations: &s.pinned_generations,
            lag_refusals: &s.lag_refusals,
        }
    }

    fn published(&self) -> PublishedView {
        let p = read_published(&self.shared);
        PublishedView {
            snapshot: p.snapshot.clone(),
            updates_applied: p.updates_applied,
            last_lsn: p.last_lsn,
        }
    }

    fn busy_message(&self, active: usize, cap: usize) -> String {
        format!("server busy: {active} connections, cap {cap}")
    }

    fn lag_message(&self, have: u64, want: u64) -> String {
        format!("snapshot covers lsn {have} but the pin demands lsn {want}")
    }

    fn handle(&self, token: u64, seq: u64, draining: bool, request: Request) -> RoleAction {
        match request {
            Request::Execute(src) => self.defer_write(token, seq, draining, WriteOp::Execute(src)),
            Request::DeclareRelation(name, arity) => {
                self.defer_write(token, seq, draining, WriteOp::DeclareRelation(name, arity))
            }
            Request::DeclareAttribute(name) => {
                self.defer_write(token, seq, draining, WriteOp::DeclareAttribute(name))
            }
            Request::LoadFact(pred, args) => {
                self.defer_write(token, seq, draining, WriteOp::LoadFact(pred, args))
            }
            Request::LoadWff(src) => self.defer_write(token, seq, draining, WriteOp::LoadWff(src)),
            Request::Begin => {
                if draining {
                    return RoleAction::Reply(Response::Error(WireError {
                        kind: ErrorKindWire::ShuttingDown,
                        message: "server is draining; transaction refused".into(),
                    }));
                }
                let mut map = self
                    .shared
                    .txn_by_token
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if map.contains_key(&token) {
                    return RoleAction::Reply(Response::Error(WireError {
                        kind: ErrorKindWire::BadRequest,
                        message: "a transaction is already open on this connection".into(),
                    }));
                }
                // Reserve the slot on the reactor thread so a close that
                // races the writer's `TxnBegin` still finds (and can
                // abandon) the binding.
                map.insert(token, 0);
                drop(map);
                self.chan.push(WriterWork::TxnBegin { token, seq });
                RoleAction::Deferred
            }
            Request::Commit => match self.open_txn(token) {
                None => RoleAction::Reply(Response::Error(no_open_txn())),
                Some(_) if draining => {
                    self.chan.push(WriterWork::TxnAbandon { token });
                    RoleAction::Reply(Response::Error(drain_abort()))
                }
                Some(txn) => {
                    self.chan.push(WriterWork::TxnCommit { token, seq, txn });
                    RoleAction::Deferred
                }
            },
            // Rollback is honored even mid-drain: it only releases state.
            Request::Rollback => match self.open_txn(token) {
                None => RoleAction::Reply(Response::Error(no_open_txn())),
                Some(txn) => {
                    self.chan.push(WriterWork::TxnRollback { token, seq, txn });
                    RoleAction::Deferred
                }
            },
            // Stats and checkpoints are answered even mid-drain — a
            // draining operator still wants the final counters.
            Request::Stats => {
                self.chan.push(WriterWork::Stats { token, seq });
                RoleAction::Deferred
            }
            Request::Checkpoint => {
                self.chan.push(WriterWork::Checkpoint { token, seq });
                RoleAction::Deferred
            }
            Request::Subscribe(from_lsn) => {
                if draining {
                    return RoleAction::Reply(Response::Error(WireError {
                        kind: ErrorKindWire::ShuttingDown,
                        message: "server is draining; subscription refused".into(),
                    }));
                }
                self.chan.push(WriterWork::Subscribe {
                    token,
                    seq,
                    from_lsn,
                });
                RoleAction::Deferred
            }
            // Reads, pins, liveness, and shutdown never reach the role.
            other => RoleAction::Reply(Response::Error(WireError {
                kind: ErrorKindWire::BadRequest,
                message: format!("unroutable request: {other:?}"),
            })),
        }
    }

    fn generation_moved(&self) {
        refresh_retained(&self.shared);
    }

    fn closed(&self, token: u64) {
        // A connection that dies with a transaction open (or a `Begin`
        // in flight — the slot is reserved before the push) hands it to
        // the writer thread for rollback; FIFO queue order guarantees
        // the abandon runs after any in-flight op of the same token.
        let open = self
            .shared
            .txn_by_token
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(&token);
        if open {
            self.chan.push(WriterWork::TxnAbandon { token });
        }
    }
}

// ----- the background compactor ---------------------------------------------

/// The compactor thread: polls the published snapshot (never touching the
/// writer lock to *decide*), and when the trigger fires runs one
/// capture → off-lock full-simplify → swap round. The baseline for the
/// growth trigger is the store size the previous round left behind.
fn run_compactor<S: Storage>(shared: &Shared<S>, policy: &CompactionPolicy) {
    let mut baseline = read_published(shared).snapshot.theory().store_nodes();
    let mut last_round_lsn = read_published(shared).last_lsn;
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(policy.poll_interval);
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let published = read_published(shared);
        let nodes = published.snapshot.theory().store_nodes();
        let lag = published.last_lsn.saturating_sub(last_round_lsn);
        let grown = nodes as f64 >= policy.growth_factor * baseline.max(1) as f64;
        if nodes < policy.min_nodes || !(grown || lag >= policy.max_lsn_lag) {
            continue;
        }
        match compact_once(shared, policy) {
            Some(post_nodes) => baseline = post_nodes,
            // Swap abandoned (replay failure) or writer gone: don't spin
            // on the same trigger every poll tick.
            None => baseline = nodes,
        }
        last_round_lsn = read_published(shared).last_lsn;
    }
}

/// One compaction round. Returns the post-swap store size, or `None` if
/// the round was abandoned (writer closed/poisoned, or the swap-time
/// replay failed — in which case the live database is untouched).
fn compact_once<S: Storage>(shared: &Shared<S>, policy: &CompactionPolicy) -> Option<usize> {
    // Phase 1: capture under the writer lock (cost: one theory clone).
    let (mut copy, from_lsn) = {
        let mut guard = shared.writer.lock().ok()?;
        let db = guard.as_mut()?;
        db.begin_compaction()
    };
    // Phase 2: simplify off-lock; the writer keeps committing and every
    // record it journals is retained for the swap-time replay.
    winslett_gua::simplify(&mut copy, policy.level);
    // Phase 3: replay the delta and swap, under the writer lock.
    let mut guard = shared.writer.lock().ok()?;
    let db = guard.as_mut()?;
    // A shutdown may have begun while we simplified off-lock. Installing
    // now would race the drain/close sequence (the final sync could land
    // after the compacted swap republished a stale view), so abandon the
    // round instead — the live database is untouched.
    if shared.shutdown.load(Ordering::SeqCst) {
        db.abort_compaction();
        shared
            .stats
            .compaction_aborts
            .fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let swap_started = Instant::now();
    match db.install_compacted(copy, from_lsn, policy.checkpoint) {
        Ok(outcome) => {
            let pause = swap_started.elapsed().as_micros() as u64;
            // Republish so readers move to the compacted generation even
            // if no write follows for a while. `updates_applied` is
            // untouched: compaction applies no updates.
            let updates_applied = read_published(shared).updates_applied;
            let snapshot = TheorySnapshot::capture(db.db().theory());
            publish(
                shared,
                Published {
                    snapshot,
                    updates_applied,
                    last_lsn: db.next_lsn().saturating_sub(1),
                },
            );
            let s = &shared.stats;
            s.compactions.fetch_add(1, Ordering::Relaxed);
            s.compaction_nodes_reclaimed
                .fetch_add(outcome.nodes_reclaimed() as u64, Ordering::Relaxed);
            s.compaction_swap_pause_us
                .fetch_add(pause, Ordering::Relaxed);
            s.compaction_swap_pause_max_us
                .fetch_max(pause, Ordering::Relaxed);
            Some(outcome.nodes_after)
        }
        Err(_) => {
            db.abort_compaction();
            shared
                .stats
                .compaction_aborts
                .fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

fn closed_writer() -> WireError {
    WireError {
        kind: ErrorKindWire::ShuttingDown,
        message: "database already closed".into(),
    }
}

fn poisoned_writer() -> WireError {
    WireError {
        kind: ErrorKindWire::Internal,
        message: "writer state poisoned by a previous panic".into(),
    }
}

pub(crate) fn wire_verdict(v: Verdict) -> WireVerdict {
    match v {
        Verdict::Certain => WireVerdict::Certain,
        Verdict::Uncertain => WireVerdict::Uncertain,
        Verdict::Impossible => WireVerdict::Impossible,
        Verdict::Inconsistent => WireVerdict::Inconsistent,
    }
}

pub(crate) fn wire_error(e: &DbError) -> WireError {
    let kind = match e {
        DbError::Ldml(_)
        | DbError::Logic(_)
        | DbError::Query { .. }
        | DbError::Gua(winslett_gua::GuaError::Ldml(_)) => ErrorKindWire::Parse,
        DbError::Theory(_) | DbError::Gua(_) => ErrorKindWire::Refused,
        DbError::RecordTooLarge { .. } => ErrorKindWire::TooLarge,
        DbError::LsnGap { .. } => ErrorKindWire::BadRequest,
        DbError::Storage { .. } | DbError::Corrupt { .. } => ErrorKindWire::Storage,
        DbError::TxnConflict { .. } => ErrorKindWire::TxnConflict,
        DbError::TxnTimeout { .. } => ErrorKindWire::TxnTimeout,
        DbError::TxnOpen { .. } => ErrorKindWire::Refused,
        DbError::TxnUnknown { .. } => ErrorKindWire::BadRequest,
        _ => ErrorKindWire::Internal,
    };
    WireError {
        kind,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_core::wal::MemStorage;

    /// A `Shared` with an open in-memory database, no listener attached —
    /// enough to drive the leader's drain loop directly.
    fn shared_with_db(relations: &[(&str, usize)]) -> Arc<Shared<MemStorage>> {
        let (mut db, _report) = DurableDatabase::open(
            MemStorage::new(),
            DbOptions::default(),
            WalOptions::default(),
        )
        .expect("open");
        for (name, arity) in relations {
            db.declare_relation(name, *arity).expect("declare");
        }
        let snapshot = TheorySnapshot::capture(db.db().theory());
        let last_lsn = db.next_lsn().saturating_sub(1);
        Arc::new(Shared {
            writer: Mutex::new(Some(db)),
            published: RwLock::new(Arc::new(Published {
                snapshot,
                updates_applied: 0,
                last_lsn,
            })),
            queue: Mutex::new(VecDeque::new()),
            subscribers: Mutex::new(Vec::new()),
            stats: Arc::new(ServerStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            active: Arc::new(AtomicUsize::new(0)),
            options: ServerOptions::default(),
            addr: "127.0.0.1:0".parse().expect("addr"),
            notify: Mutex::new(None),
            retained: Mutex::new(Vec::new()),
            locks: LockTable::new(),
            txn_by_token: Mutex::new(HashMap::new()),
        })
    }

    fn enqueue(shared: &Shared<MemStorage>, op: WriteOp) -> Arc<ReplySlot> {
        let slot = Arc::new(ReplySlot::default());
        shared.queue.lock().expect("queue").push_back(WriteJob {
            op,
            done: WriteDone::Slot(Arc::clone(&slot)),
        });
        slot
    }

    fn drain(shared: &Shared<MemStorage>) {
        let mut guard = shared.writer.lock().expect("writer");
        let db = guard.as_mut().expect("db");
        drain_writes(shared, db);
    }

    #[test]
    fn superseded_generations_release_eagerly() {
        let shared = shared_with_db(&[("R", 1)]);
        // Hold a session on the initial generation — the pin-shaped
        // retention the gauge must report.
        let held = read_published(&shared).snapshot.clone();
        let weak_held = held.theory_weak();
        let reader = held.reader();
        drop(held);

        // Two separate publications: the middle generation has no holder
        // and must be released the moment it is superseded.
        enqueue(&shared, WriteOp::Execute("INSERT R(a) WHERE T".into()));
        drain(&shared);
        let weak_mid = read_published(&shared).snapshot.theory_weak();
        enqueue(&shared, WriteOp::Execute("INSERT R(b) WHERE T".into()));
        drain(&shared);

        assert_eq!(
            weak_mid.strong_count(),
            0,
            "unheld superseded generation must drop eagerly"
        );
        assert_eq!(refresh_retained(&shared), 1, "only the held generation");
        assert_eq!(shared.stats.retained_generations.load(Ordering::Relaxed), 1);

        // Releasing the last session releases the generation's theory.
        drop(reader);
        assert_eq!(weak_held.strong_count(), 0, "released with the session");
        assert_eq!(refresh_retained(&shared), 0);
        assert_eq!(shared.stats.retained_generations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn compactor_round_swaps_invisibly_and_republishes() {
        let shared = shared_with_db(&[("R", 1), ("S", 1)]);
        let slots: Vec<_> = (0..6)
            .map(|i| {
                enqueue(
                    &shared,
                    WriteOp::Execute(format!("INSERT R(a{i}) | S(b{i}) WHERE T")),
                )
            })
            .collect();
        drain(&shared);
        for slot in &slots {
            assert!(matches!(slot.try_take(), Some(Response::Executed(_))));
        }
        let before = read_published(&shared);
        let before_gen = before.snapshot.generation();
        let mut reader = before.snapshot.reader();
        let probes = ["R(a0)", "R(a0) | S(b0)", "S(b5)", "R(a3) & S(b3)"];
        let want: Vec<_> = probes.iter().map(|p| reader.decide(p).unwrap()).collect();

        let policy = CompactionPolicy {
            min_nodes: 0,
            growth_factor: 1.0,
            ..CompactionPolicy::default()
        };
        let post_nodes = compact_once(&shared, &policy).expect("round must install");
        let after = read_published(&shared);
        // Strictly advanced generation: no reader can confuse the
        // compacted encoding with the one it pinned.
        assert!(after.snapshot.generation() > before_gen);
        assert_eq!(after.updates_applied, before.updates_applied);
        assert!(post_nodes <= before.snapshot.theory().store_nodes());
        let mut compacted = after.snapshot.reader();
        for (probe, expected) in probes.iter().zip(&want) {
            assert_eq!(&compacted.decide(probe).unwrap(), expected, "{probe}");
        }
        let s = &shared.stats;
        assert_eq!(s.compactions.load(Ordering::Relaxed), 1);
        assert_eq!(s.compaction_aborts.load(Ordering::Relaxed), 0);
        // The checkpointing swap rewrote the on-storage snapshot from the
        // compacted theory.
        let guard = shared.writer.lock().unwrap();
        let db = guard.as_ref().unwrap();
        assert_eq!(db.stats().checkpoints, 1);
        assert_eq!(db.snapshot_lsn(), db.next_lsn());
    }

    #[test]
    fn independent_writes_coalesce_into_one_publication() {
        let shared = shared_with_db(&[("R", 1)]);
        let slots: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|c| enqueue(&shared, WriteOp::Execute(format!("INSERT R({c}) WHERE T"))))
            .collect();
        drain(&shared);
        for slot in &slots {
            match slot.try_take() {
                Some(Response::Executed(_)) => {}
                other => panic!("expected Executed, got {other:?}"),
            }
        }
        let stats = &shared.stats;
        assert_eq!(stats.write_batches.load(Ordering::Relaxed), 1);
        assert_eq!(stats.coalesced_writes.load(Ordering::Relaxed), 3);
        assert_eq!(stats.snapshots_published.load(Ordering::Relaxed), 1);
        assert_eq!(stats.updates.load(Ordering::Relaxed), 3);
        // The one published snapshot reflects every write in the batch.
        let published = read_published(&shared);
        assert_eq!(published.updates_applied, 3);
        let mut reader = published.snapshot.reader();
        for c in ["a", "b", "c"] {
            let (_possible, certain) = reader.decide(&format!("R({c})")).expect("decide");
            assert!(certain, "R({c}) must be certain after the batch");
        }
    }

    #[test]
    fn conflicting_writes_split_batches() {
        let shared = shared_with_db(&[("R", 1)]);
        // s2 reads R(a), which s1 writes: order-sensitive pair, so the
        // leader must publish between them.
        let s1 = enqueue(&shared, WriteOp::Execute("INSERT R(a) WHERE T".into()));
        let s2 = enqueue(&shared, WriteOp::Execute("INSERT R(b) WHERE R(a)".into()));
        drain(&shared);
        assert!(matches!(s1.try_take(), Some(Response::Executed(_))));
        assert!(matches!(s2.try_take(), Some(Response::Executed(_))));
        let stats = &shared.stats;
        assert_eq!(stats.write_batches.load(Ordering::Relaxed), 2);
        assert_eq!(stats.coalesced_writes.load(Ordering::Relaxed), 0);
        assert_eq!(stats.snapshots_published.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn barriers_and_errors_flush_correctly() {
        let shared = shared_with_db(&[("R", 1)]);
        // Independent, barrier (declare), independent again, one bad op.
        let w1 = enqueue(&shared, WriteOp::Execute("INSERT R(a) WHERE T".into()));
        let w2 = enqueue(&shared, WriteOp::Execute("INSERT R(b) WHERE T".into()));
        let barrier = enqueue(&shared, WriteOp::DeclareRelation("S".into(), 1));
        let w3 = enqueue(&shared, WriteOp::Execute("INSERT S(x) WHERE T".into()));
        let bad = enqueue(&shared, WriteOp::Execute("INSERT nonsense((".into()));
        drain(&shared);
        assert!(matches!(w1.try_take(), Some(Response::Executed(_))));
        assert!(matches!(w2.try_take(), Some(Response::Executed(_))));
        assert!(matches!(barrier.try_take(), Some(Response::Executed(_))));
        assert!(matches!(w3.try_take(), Some(Response::Executed(_))));
        match bad.try_take() {
            Some(Response::Error(e)) => assert_eq!(e.kind, ErrorKindWire::Parse),
            other => panic!("expected parse error, got {other:?}"),
        }
        // Batches: [w1, w2], [declare], [w3], [bad]. The bad batch
        // applies nothing, so it publishes no snapshot.
        let stats = &shared.stats;
        assert_eq!(stats.write_batches.load(Ordering::Relaxed), 4);
        assert_eq!(stats.coalesced_writes.load(Ordering::Relaxed), 2);
        assert_eq!(stats.snapshots_published.load(Ordering::Relaxed), 3);
        assert_eq!(stats.updates.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn flushed_batches_fan_out_to_subscribers_in_commit_order() {
        let shared = shared_with_db(&[("R", 1)]);
        {
            let mut guard = shared.writer.lock().unwrap();
            guard.as_mut().unwrap().enable_shipping();
        }
        let (tx, rx) = mpsc::channel();
        let (dead_tx, dead_rx) = mpsc::channel::<Vec<WalEntry>>();
        drop(dead_rx);
        shared.subscribers.lock().unwrap().push(tx);
        shared.subscribers.lock().unwrap().push(dead_tx);
        for c in ["a", "b"] {
            enqueue(&shared, WriteOp::Execute(format!("INSERT R({c}) WHERE T")));
        }
        drain(&shared);
        let batch = rx.try_recv().expect("one shipped batch");
        assert_eq!(batch.len(), 2, "both applies ship in one batch");
        assert!(
            batch.windows(2).all(|w| w[0].lsn < w[1].lsn),
            "commit order preserved"
        );
        // The dead subscriber was pruned; the live one survived.
        assert_eq!(shared.subscribers.lock().unwrap().len(), 1);
        // Both entries went to both subscribers before the prune.
        assert_eq!(shared.stats.records_shipped.load(Ordering::Relaxed), 4);
        // A refused op leaves nothing in the shipping tail.
        enqueue(&shared, WriteOp::Execute("INSERT nonsense((".into()));
        drain(&shared);
        assert!(rx.try_recv().is_err(), "refused op ships nothing");
    }

    #[test]
    fn shutdown_between_compaction_phases_abandons_the_swap() {
        let shared = shared_with_db(&[("R", 1)]);
        enqueue(&shared, WriteOp::Execute("INSERT R(a) WHERE T".into()));
        drain(&shared);
        let before = read_published(&shared).snapshot.generation();
        // Shutdown lands while phase 2 runs off-lock; the gate in phase 3
        // must abandon the round instead of installing over the drain.
        shared.shutdown.store(true, Ordering::SeqCst);
        let policy = CompactionPolicy::default();
        assert_eq!(compact_once(&shared, &policy), None);
        assert_eq!(shared.stats.compactions.load(Ordering::Relaxed), 0);
        assert_eq!(shared.stats.compaction_aborts.load(Ordering::Relaxed), 1);
        assert_eq!(
            read_published(&shared).snapshot.generation(),
            before,
            "no republish after an abandoned round"
        );
        // The live database is untouched and still writable.
        shared.shutdown.store(false, Ordering::SeqCst);
        let slot = enqueue(&shared, WriteOp::Execute("INSERT R(b) WHERE T".into()));
        drain(&shared);
        assert!(matches!(slot.try_take(), Some(Response::Executed(_))));
    }

    #[test]
    fn chunking_packs_greedily_and_never_splits_an_entry() {
        assert!(chunk_entries(Vec::new()).is_empty());
        let entries: Vec<WalEntry> = (0..5)
            .map(|i| WalEntry {
                lsn: i,
                record: winslett_core::WalRecord::LoadFact("R".into(), vec![format!("{i}")]),
            })
            .collect();
        let chunks = chunk_entries(entries.clone());
        assert_eq!(chunks.len(), 1, "small entries pack into one chunk");
        assert_eq!(chunks[0], entries);
        // A payload near the record cap forces one entry per chunk.
        let big = "x".repeat((MAX_FRAME_LEN as usize - 1024) / 2);
        let entries: Vec<WalEntry> = (0..3)
            .map(|i| WalEntry {
                lsn: i,
                record: winslett_core::WalRecord::LoadFact(big.clone(), Vec::new()),
            })
            .collect();
        let chunks = chunk_entries(entries);
        assert_eq!(chunks.len(), 3, "near-cap entries go one per frame");
        for chunk in &chunks {
            let wire = serde_json::to_string(&Response::WalBatch(WalBatchReply {
                entries: chunk.clone(),
            }))
            .expect("serialize");
            assert!(wire.len() <= MAX_FRAME_LEN as usize);
        }
    }
}
