//! The server: one writer thread-at-a-time, any number of snapshot
//! readers, bounded admission, idle timeouts, graceful drain.
//!
//! ## Concurrency model
//!
//! * **Writes** serialize through a `Mutex<DurableDatabase>`. Each
//!   acknowledged update is journaled (WAL) *before* GUA applies it, and
//!   its reply carries the WAL LSN — the serialization order.
//! * **Reads** never take the writer lock. After every update the writer
//!   publishes a [`TheorySnapshot`] (theory cloned once behind an `Arc`)
//!   into an `RwLock` slot; connections grab the `Arc` and answer from a
//!   private [`SnapshotReader`] whose entailment session is encoded once
//!   per snapshot and reused across queries. A connection may `Pin` its
//!   snapshot, keeping a long analytical session on one generation while
//!   the writer commits on.
//! * **Admission** is a hard cap on live connections: the connection over
//!   the cap receives a typed `Busy` error frame and a close — never a
//!   silent hang.
//! * **Shutdown** (protocol request or [`ServerHandle::request_shutdown`])
//!   stops the accept loop, drains live connections (bounded by the idle
//!   timeout), then closes the durable database — flushing any
//!   group-commit buffered WAL records — and hands the storage back.

use crate::protocol::{
    read_frame, send, CheckpointReply, ErrorKindWire, ExecReply, ExplainReply, FrameError,
    QueryReply, Request, Response, SnapshotReply, StatsReply, TruthReply, WireError, WireVerdict,
};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;
use winslett_core::explain::Verdict;
use winslett_core::snapshot::{SnapshotReader, TheorySnapshot};
use winslett_core::wal::{DurableDatabase, RecoveryReport, Storage, WalOptions};
use winslett_core::{DbError, DbOptions};

/// Tunables.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Hard cap on concurrently served connections; the next connection
    /// is refused with a typed `Busy` error.
    pub max_connections: usize,
    /// A connection idle (or stalled mid-frame) this long is closed.
    pub idle_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Monotone counters, updated lock-free by connection threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted into service.
    pub accepted: AtomicU64,
    /// Connections refused at the admission gate.
    pub rejected_busy: AtomicU64,
    /// Requests served, all kinds.
    pub requests: AtomicU64,
    /// Updates acknowledged.
    pub updates: AtomicU64,
    /// Read requests (query/check/explain) served.
    pub reads: AtomicU64,
    /// Snapshots published by the writer.
    pub snapshots_published: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_closes: AtomicU64,
    /// Malformed frames / undecodable requests observed.
    pub protocol_errors: AtomicU64,
}

/// What the writer last published: an immutable snapshot plus its place
/// in the acknowledged-update order.
struct Published {
    snapshot: TheorySnapshot,
    updates_applied: u64,
    last_lsn: u64,
}

struct Shared<S: Storage> {
    writer: Mutex<Option<DurableDatabase<S>>>,
    published: RwLock<Arc<Published>>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    options: ServerOptions,
    addr: SocketAddr,
}

/// A cheap, clonable handle for poking a running server from outside its
/// accept loop (signal handlers, tests, sibling threads).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    active: Arc<AtomicUsize>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Connections currently in service.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown: sets the flag and pokes the accept
    /// loop awake with a throwaway connection.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake a blocking `accept` so it observes the flag. Errors are
        // fine — the listener may already be gone.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// The server: a bound listener plus the shared state its connection
/// threads work against.
pub struct Server<S: Storage + Send + 'static> {
    listener: TcpListener,
    shared: Arc<Shared<S>>,
}

impl<S: Storage + Send + 'static> Server<S> {
    /// Binds `addr` (use port 0 for an ephemeral port) and opens (or
    /// recovers) the durable database on `storage`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        storage: S,
        db_options: DbOptions,
        wal_options: WalOptions,
        options: ServerOptions,
    ) -> Result<(Self, RecoveryReport), DbError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (db, report) = DurableDatabase::open(storage, db_options, wal_options)?;
        let snapshot = TheorySnapshot::capture(db.db().theory());
        let last_lsn = db.next_lsn().saturating_sub(1);
        let shared = Arc::new(Shared {
            writer: Mutex::new(Some(db)),
            published: RwLock::new(Arc::new(Published {
                snapshot,
                updates_applied: 0,
                last_lsn,
            })),
            stats: Arc::new(ServerStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            active: Arc::new(AtomicUsize::new(0)),
            options,
            addr,
        });
        Ok((Server { listener, shared }, report))
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle usable from other threads (shutdown, stats).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.shared.addr,
            shutdown: Arc::clone(&self.shared.shutdown),
            stats: Arc::clone(&self.shared.stats),
            active: Arc::clone(&self.shared.active),
        }
    }

    /// Serves until shutdown is requested, drains live connections, then
    /// closes the durable database — **flushing buffered WAL records** —
    /// and returns the storage (tests reopen it to inspect final state).
    pub fn run(self) -> Result<S, DbError> {
        let Server { listener, shared } = self;
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
                Err(_) => continue,
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up poke, or a late arrival during drain
            }
            // Admission gate: count ourselves in, back out if over cap.
            let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
            if active > shared.options.max_connections {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                reject_busy(stream, active, shared.options.max_connections);
                continue;
            }
            shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                Connection::new(stream, Arc::clone(&shared)).serve();
                shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(listener);
        // Drain: connection threads exit on their own (request loop, idle
        // timeout); writes arriving during the drain are refused.
        while shared.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let db = shared
            .writer
            .lock()
            .expect("writer lock poisoned")
            .take()
            .expect("writer closed twice");
        db.close()
    }
}

/// Sends the typed `Busy` rejection (best-effort) and closes.
fn reject_busy(mut stream: TcpStream, active: usize, cap: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = send(
        &mut stream,
        &Response::Error(WireError {
            kind: ErrorKindWire::Busy,
            message: format!("server busy: {active} connections, cap {cap}"),
        }),
    );
}

/// Per-connection state: the stream plus this connection's read sessions.
struct Connection<S: Storage + Send + 'static> {
    stream: TcpStream,
    shared: Arc<Shared<S>>,
    /// Set while the client holds a `Pin`: reads stay on this snapshot.
    pinned: Option<SnapshotReader>,
    /// Follow-the-latest reader, rebuilt only when the published
    /// generation moves (so repeated reads reuse one entailment session).
    latest: Option<SnapshotReader>,
}

impl<S: Storage + Send + 'static> Connection<S> {
    fn new(stream: TcpStream, shared: Arc<Shared<S>>) -> Self {
        Connection {
            stream,
            shared,
            pinned: None,
            latest: None,
        }
    }

    fn serve(&mut self) {
        let _ = self.stream.set_nodelay(true);
        let _ = self
            .stream
            .set_read_timeout(Some(self.shared.options.idle_timeout));
        loop {
            let payload = match read_frame(&mut self.stream) {
                Ok(p) => p,
                Err(FrameError::Closed) => break,
                Err(FrameError::TimedOut) => {
                    self.shared
                        .stats
                        .idle_closes
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(e @ (FrameError::Oversized { .. } | FrameError::BadCrc { .. })) => {
                    // The stream is not resynchronizable past a bad
                    // length/checksum: answer with the typed error, close.
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = send(
                        &mut self.stream,
                        &Response::Error(WireError {
                            kind: ErrorKindWire::BadRequest,
                            message: e.to_string(),
                        }),
                    );
                    break;
                }
                Err(_) => {
                    // Torn mid-frame or I/O failure: nothing to say to a
                    // half-dead peer; clean close.
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
            };
            let request: Request = match crate::protocol::decode(&payload) {
                Ok(r) => r,
                Err(e) => {
                    // The frame itself was intact, so the stream is still
                    // synchronized: report and keep serving.
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let resp = Response::Error(WireError {
                        kind: ErrorKindWire::BadRequest,
                        message: e.to_string(),
                    });
                    if send(&mut self.stream, &resp).is_err() {
                        break;
                    }
                    continue;
                }
            };
            self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            let is_shutdown = matches!(request, Request::Shutdown);
            let response = self.dispatch(request);
            if send(&mut self.stream, &response).is_err() {
                break;
            }
            if is_shutdown {
                break;
            }
        }
    }

    fn dispatch(&mut self, request: Request) -> Response {
        match request {
            Request::Execute(src) => self.write_op(|db| {
                let report = db.execute(&src)?;
                Ok((report.nodes_added as i64, report.completion_added as u64))
            }),
            Request::DeclareRelation(name, arity) => self.write_op(|db| {
                db.declare_relation(&name, arity as usize)?;
                Ok((0, 0))
            }),
            Request::DeclareAttribute(name) => self.write_op(|db| {
                db.declare_attribute(&name)?;
                Ok((0, 0))
            }),
            Request::LoadFact(pred, args) => self.write_op(|db| {
                let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                db.load_fact(&pred, &refs)?;
                Ok((0, 0))
            }),
            Request::LoadWff(src) => self.write_op(|db| {
                db.load_wff(&src)?;
                Ok((0, 0))
            }),
            Request::Query(src) => self.read(|r| {
                let generation = r.generation();
                r.query(&src).map(|a| {
                    Response::Rows(QueryReply {
                        certain: a.certain,
                        possible: a.possible,
                        generation,
                    })
                })
            }),
            Request::Check(src) => self.read(|r| {
                let generation = r.generation();
                r.decide(&src).map(|(possible, certain)| {
                    Response::Truth(TruthReply {
                        possible,
                        certain,
                        generation,
                    })
                })
            }),
            Request::Explain(src) => self.read(|r| {
                let generation = r.generation();
                r.explain(&src).map(|e| {
                    Response::Explained(ExplainReply {
                        verdict: wire_verdict(e.verdict),
                        witness: e.witness,
                        counterexample: e.counterexample,
                        generation,
                    })
                })
            }),
            Request::Pin => {
                let published = Arc::clone(&self.shared.published.read().expect("published lock"));
                let reply = SnapshotReply {
                    generation: published.snapshot.generation(),
                    updates_applied: published.updates_applied,
                    last_lsn: published.last_lsn,
                };
                self.pinned = Some(published.snapshot.reader());
                Response::Pinned(reply)
            }
            Request::Unpin => {
                self.pinned = None;
                Response::Unpinned
            }
            Request::Stats => self.stats(),
            Request::Checkpoint => self.checkpoint(),
            Request::Shutdown => {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so the drain starts now.
                let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_secs(1));
                Response::ShuttingDown
            }
            Request::Ping => Response::Pong,
        }
    }

    /// Runs one journaled write under the writer lock, then publishes the
    /// new snapshot for readers. `f` returns `(nodes_added,
    /// completion_added)` for the reply.
    fn write_op(
        &mut self,
        f: impl FnOnce(&mut DurableDatabase<S>) -> Result<(i64, u64), DbError>,
    ) -> Response {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Response::Error(WireError {
                kind: ErrorKindWire::ShuttingDown,
                message: "server is draining; write refused".into(),
            });
        }
        let mut guard = self.shared.writer.lock().expect("writer lock poisoned");
        let Some(db) = guard.as_mut() else {
            return Response::Error(WireError {
                kind: ErrorKindWire::ShuttingDown,
                message: "database already closed".into(),
            });
        };
        let lsn = db.next_lsn();
        match f(db) {
            Ok((nodes_added, completion_added)) => {
                let generation = db.db().theory().generation();
                let snapshot = TheorySnapshot::capture(db.db().theory());
                let prev = self.shared.published.read().expect("published lock");
                let updates_applied = prev.updates_applied + 1;
                drop(prev);
                *self.shared.published.write().expect("published lock") = Arc::new(Published {
                    snapshot,
                    updates_applied,
                    last_lsn: lsn,
                });
                self.shared
                    .stats
                    .snapshots_published
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.stats.updates.fetch_add(1, Ordering::Relaxed);
                Response::Executed(ExecReply {
                    lsn,
                    generation,
                    nodes_added,
                    completion_added,
                })
            }
            Err(e) => Response::Error(wire_error(&e)),
        }
    }

    /// Runs `f` against the connection's current read session: the pinned
    /// snapshot if one is held, else a follow-the-latest reader rebuilt
    /// only when the published generation has moved.
    fn read(
        &mut self,
        f: impl FnOnce(&mut SnapshotReader) -> Result<Response, DbError>,
    ) -> Response {
        self.shared.stats.reads.fetch_add(1, Ordering::Relaxed);
        let reader = if let Some(pinned) = self.pinned.as_mut() {
            pinned
        } else {
            let published = Arc::clone(&self.shared.published.read().expect("published lock"));
            let current = published.snapshot.generation();
            let stale = self
                .latest
                .as_ref()
                .is_none_or(|r| r.generation() != current);
            if stale {
                self.latest = Some(published.snapshot.reader());
            }
            self.latest.as_mut().expect("latest reader")
        };
        match f(reader) {
            Ok(resp) => resp,
            Err(e) => Response::Error(wire_error(&e)),
        }
    }

    fn stats(&mut self) -> Response {
        let s = &self.shared.stats;
        let mut reply = StatsReply {
            accepted: s.accepted.load(Ordering::Relaxed),
            rejected_busy: s.rejected_busy.load(Ordering::Relaxed),
            requests: s.requests.load(Ordering::Relaxed),
            updates: s.updates.load(Ordering::Relaxed),
            reads: s.reads.load(Ordering::Relaxed),
            snapshots_published: s.snapshots_published.load(Ordering::Relaxed),
            idle_closes: s.idle_closes.load(Ordering::Relaxed),
            protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
            ..StatsReply::default()
        };
        if let Some(db) = self
            .shared
            .writer
            .lock()
            .expect("writer lock poisoned")
            .as_ref()
        {
            let wal = db.stats();
            reply.generation = db.db().theory().generation();
            reply.next_lsn = db.next_lsn();
            reply.wal_records = wal.records;
            reply.wal_syncs = wal.syncs;
            reply.wal_checkpoints = wal.checkpoints;
        }
        Response::Stats(reply)
    }

    fn checkpoint(&mut self) -> Response {
        let mut guard = self.shared.writer.lock().expect("writer lock poisoned");
        let Some(db) = guard.as_mut() else {
            return Response::Error(WireError {
                kind: ErrorKindWire::ShuttingDown,
                message: "database already closed".into(),
            });
        };
        match db.checkpoint() {
            Ok(()) => Response::Checkpointed(CheckpointReply {
                lsn: db.snapshot_lsn(),
            }),
            Err(e) => Response::Error(wire_error(&e)),
        }
    }
}

fn wire_verdict(v: Verdict) -> WireVerdict {
    match v {
        Verdict::Certain => WireVerdict::Certain,
        Verdict::Uncertain => WireVerdict::Uncertain,
        Verdict::Impossible => WireVerdict::Impossible,
        Verdict::Inconsistent => WireVerdict::Inconsistent,
    }
}

fn wire_error(e: &DbError) -> WireError {
    let kind = match e {
        DbError::Ldml(_)
        | DbError::Logic(_)
        | DbError::Query { .. }
        | DbError::Gua(winslett_gua::GuaError::Ldml(_)) => ErrorKindWire::Parse,
        DbError::Theory(_) | DbError::Gua(_) => ErrorKindWire::Refused,
        DbError::Storage { .. } | DbError::Corrupt { .. } => ErrorKindWire::Storage,
        _ => ErrorKindWire::Internal,
    };
    WireError {
        kind,
        message: e.to_string(),
    }
}
