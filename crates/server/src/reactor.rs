//! The nonblocking epoll reactor shared by the primary and the replica.
//!
//! One thread owns every socket. Connections are level-triggered epoll
//! registrations driving a per-connection state machine (reading →
//! dispatching → writing), with frames decoded **in place** from a
//! per-connection grow buffer ([`crate::protocol::FrameBuf`]) — the only
//! copy a request makes is the kernel's copy into that buffer.
//!
//! The reactor itself never blocks on anything but `epoll_wait`:
//!
//! * **Writes** (and other writer-lock work: stats, checkpoints,
//!   subscription registration) are enqueued to the single writer thread
//!   and complete asynchronously through the [`Completions`] queue, which
//!   wakes the reactor via an `eventfd`.
//! * **Reads** that need a SAT solve are handed to a small worker pool;
//!   the connection parks in `Await` mode until its completion arrives.
//!   The per-snapshot entailment session travels with the job and is
//!   reinstalled on the connection afterwards, so session reuse — the
//!   MVCC read-path optimization — survives the handoff.
//! * **Timers** (idle reaping, write-stall reaping, stream heartbeats)
//!   live in a binary heap consulted for the `epoll_wait` timeout.
//!
//! The FFI below is the same no-new-dependencies style as the SIGTERM
//! handling in the binary: `std` already links the platform libc, so the
//! five syscall wrappers we need are just `extern "C"` declarations.

use crate::protocol::{
    decode, ErrorKindWire, ExplainReply, FrameBuf, FrameError, OutBuf, QueryReply, Request,
    Response, SnapshotReply, TruthReply, WalBatchReply, WireError,
};
use crate::server::{chunk_entries, wire_error, wire_verdict, HEARTBEAT_INTERVAL};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use winslett_core::snapshot::{SnapshotReader, TheorySnapshot};
use winslett_core::WalEntry;

/// Raw libc surface. `std` links libc already; these declarations add no
/// dependency, exactly like the `signal` handler in the serve binary.
mod sys {
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x80000;

    pub const EFD_CLOEXEC: i32 = 0x80000;
    pub const EFD_NONBLOCK: i32 = 0x800;

    /// Mirror of `struct epoll_event`. The kernel ABI packs it on x86-64
    /// (12 bytes); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// Thin owner of an epoll instance.
struct Poller {
    epfd: RawFd,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        // SAFETY: no pointers involved; a negative return is errno.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for events, retrying on `EINTR`. Returns how many entries of
    /// `events` were filled.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer is valid for `events.len()` entries.
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { sys::close(self.epfd) };
    }
}

/// An `eventfd`-based wakeup: worker threads poke the reactor out of
/// `epoll_wait` when a completion lands.
struct Waker {
    fd: RawFd,
}

impl Waker {
    fn new() -> io::Result<Waker> {
        // SAFETY: plain syscall, negative return is errno.
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: 8 bytes from a live stack value; an eventfd write either
        // succeeds or fails with EAGAIN when the counter is saturated —
        // in which case the reactor is already due to wake.
        unsafe {
            sys::write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: 8 writable bytes; loops until EAGAIN.
        while unsafe { sys::read(self.fd, (&mut buf as *mut u64).cast(), 8) } > 0 {}
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { sys::close(self.fd) };
    }
}

// ----- completion plumbing ---------------------------------------------------

/// Synthetic token for completions not addressed to a connection (WAL
/// shipping notifications).
pub(crate) const TOKEN_NONE: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const TOKEN_WAKER: u64 = 2;
const TOKEN_FIRST_CONN: u64 = 3;

/// Where a deferred read's session came from, so the completion knows
/// which slot to reinstall the reader into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ReadOrigin {
    /// The connection's pinned snapshot.
    Pinned,
    /// The follow-the-latest slot.
    Latest,
}

/// What an off-reactor worker finished.
pub(crate) enum Done {
    /// A plain reply; the connection returns to `Idle`.
    Resp(Response),
    /// A reply after which the connection must close (writer-side fatal
    /// errors on a subscription handshake).
    RespClose(Response),
    /// A solved read: the reply plus the session to give back.
    Read {
        /// Which slot lent the session out.
        origin: ReadOrigin,
        /// The session, unless the worker panicked mid-solve.
        reader: Option<Box<SnapshotReader>>,
        /// The answer (or a typed error).
        resp: Response,
    },
    /// A subscription registered: the opening frames (catch-up + backlog)
    /// and the live channel to stream from.
    SubStart {
        /// `Catchup` (+ chunks) and backlog `WalBatch` frames, in order.
        frames: Vec<Response>,
        /// The shipping channel this subscriber was registered under.
        rx: mpsc::Receiver<Vec<WalEntry>>,
    },
    /// The writer shipped WAL records: every streaming connection should
    /// drain its channel. Posted with [`TOKEN_NONE`].
    Shipped,
}

struct Completion {
    token: u64,
    seq: u64,
    done: Done,
}

/// The queue worker threads post results into, plus the waker that makes
/// the reactor notice. Shared as an `Arc` with the writer thread and the
/// read pool.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Completions {
    pub(crate) fn new() -> io::Result<Arc<Completions>> {
        Ok(Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        }))
    }

    /// Posts one result and wakes the reactor.
    pub(crate) fn post(&self, token: u64, seq: u64, done: Done) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion { token, seq, done });
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut self.queue.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

// ----- the read worker pool --------------------------------------------------

/// The solve a worker runs.
pub(crate) enum ReadKind {
    /// Conjunctive query.
    Query(String),
    /// Entailment check.
    Check(String),
    /// Three-valued EXPLAIN.
    Explain(String),
}

/// The session material a read job carries: a warmed-up reader when the
/// connection had one for the right generation, else the snapshot to
/// encode a fresh session from (the expensive part — exactly why it runs
/// off-reactor).
pub(crate) enum ReadSource {
    /// Reuse this session.
    Reader(Box<SnapshotReader>),
    /// Encode a fresh session from this snapshot.
    Snapshot(TheorySnapshot),
}

/// One deferred read.
pub(crate) struct ReadTask {
    token: u64,
    seq: u64,
    origin: ReadOrigin,
    source: ReadSource,
    kind: ReadKind,
}

/// Evaluates one read against a session — the same replies, generation
/// stamping, and error mapping as the blocking dispatch path.
fn eval_read(reader: &mut SnapshotReader, kind: &ReadKind) -> Response {
    let generation = reader.generation();
    let result = match kind {
        ReadKind::Query(src) => reader.query(src).map(|a| {
            Response::Rows(QueryReply {
                certain: a.certain,
                possible: a.possible,
                generation,
            })
        }),
        ReadKind::Check(src) => reader.decide(src).map(|(possible, certain)| {
            Response::Truth(TruthReply {
                possible,
                certain,
                generation,
            })
        }),
        ReadKind::Explain(src) => reader.explain(src).map(|e| {
            Response::Explained(ExplainReply {
                verdict: wire_verdict(e.verdict),
                witness: e.witness,
                counterexample: e.counterexample,
                generation,
            })
        }),
    };
    match result {
        Ok(resp) => resp,
        Err(e) => Response::Error(wire_error(&e)),
    }
}

/// One pool worker: pulls tasks, solves, posts completions. A panic in
/// the solver costs that task its session (the connection rebuilds one)
/// and answers typed `Internal` — the reactor and the pool survive.
fn run_read_worker(rx: Arc<Mutex<mpsc::Receiver<ReadTask>>>, completions: Arc<Completions>) {
    loop {
        let task = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        let Ok(task) = task else {
            return; // sender gone: reactor is shutting down
        };
        let ReadTask {
            token,
            seq,
            origin,
            source,
            kind,
        } = task;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut reader = match source {
                ReadSource::Reader(r) => r,
                ReadSource::Snapshot(s) => Box::new(s.reader()),
            };
            let resp = eval_read(&mut reader, &kind);
            (Some(reader), resp)
        }));
        let (reader, resp) = outcome.unwrap_or_else(|_| {
            (
                None,
                Response::Error(WireError {
                    kind: ErrorKindWire::Internal,
                    message: "read worker panicked evaluating the request".into(),
                }),
            )
        });
        completions.post(
            token,
            seq,
            Done::Read {
                origin,
                reader,
                resp,
            },
        );
    }
}

// ----- the role: what differs between primary and replica --------------------

/// Borrowed references to the network-side counters both node kinds keep.
pub(crate) struct NetCounters<'a> {
    pub accepted: &'a AtomicU64,
    pub rejected_busy: &'a AtomicU64,
    pub requests: &'a AtomicU64,
    pub reads: &'a AtomicU64,
    pub idle_closes: &'a AtomicU64,
    pub protocol_errors: &'a AtomicU64,
    pub pinned_generations: &'a AtomicU64,
    pub lag_refusals: &'a AtomicU64,
}

/// The published snapshot plus its place in the acknowledged order.
pub(crate) struct PublishedView {
    pub snapshot: TheorySnapshot,
    pub updates_applied: u64,
    pub last_lsn: u64,
}

/// What the role did with a request the reactor handed over.
pub(crate) enum RoleAction {
    /// Answer now.
    Reply(Response),
    /// The work went to a writer/worker thread; a completion tagged with
    /// the given `(token, seq)` will arrive.
    Deferred,
}

/// The node-specific half of the reactor: the primary routes writes,
/// stats, checkpoints, and subscriptions to its writer thread; the
/// replica answers everything inline (reads are common-path for both and
/// handled by the reactor itself).
pub(crate) trait Role {
    /// The network-side counters to bump.
    fn counters(&self) -> NetCounters<'_>;
    /// The current published snapshot.
    fn published(&self) -> PublishedView;
    /// The admission-refusal message.
    fn busy_message(&self, active: usize, cap: usize) -> String;
    /// The `PinAt` lag-refusal message.
    fn lag_message(&self, have: u64, want: u64) -> String;
    /// Handles a request the reactor does not own (writes, `Stats`,
    /// `Checkpoint`, `Subscribe`). `seq` tags the completion if the role
    /// defers.
    fn handle(&self, token: u64, seq: u64, draining: bool, request: Request) -> RoleAction;
    /// The published generation moved: prune retention bookkeeping.
    fn generation_moved(&self);
    /// An admitted connection is gone (drained, errored, or idle-reaped).
    /// Roles with per-connection server-side state (the primary's open
    /// transactions) release it here.
    fn closed(&self, _token: u64) {}
}

// ----- per-connection state --------------------------------------------------

/// A connection's read-session slot. `Lent` marks a session currently out
/// with a read worker; it comes home in the completion (or dies with a
/// worker panic, in which case the next read re-encodes).
enum ReaderSlot {
    /// No session held.
    Empty,
    /// A pin taken but not yet materialized into a session: the snapshot
    /// waits here so `Pin` itself never pays the encode cost on the
    /// reactor thread — the first read's worker builds the session.
    Lazy(TheorySnapshot),
    /// A warmed-up session.
    Ready(Box<SnapshotReader>),
    /// The session is out with a worker.
    Lent,
}

impl ReaderSlot {
    fn holds_pin(&self) -> bool {
        !matches!(self, ReaderSlot::Empty)
    }
}

/// What the connection is doing.
enum Mode {
    /// Parsing requests as they arrive.
    Idle,
    /// A request is out with the writer thread or the read pool; input
    /// stays buffered until the completion lands.
    Await,
    /// Turned into a one-way WAL subscription stream.
    Streaming {
        rx: mpsc::Receiver<Vec<WalEntry>>,
        next_heartbeat: Instant,
    },
}

struct Conn {
    stream: TcpStream,
    rbuf: FrameBuf,
    wbuf: OutBuf,
    mode: Mode,
    pinned: ReaderSlot,
    latest: ReaderSlot,
    /// Tag of the most recent deferred job; completions carrying any
    /// other value are stale (a panic-path double post) and dropped.
    seq: u64,
    /// Read-side deadline: reset when a complete frame arrives (stricter
    /// than the blocking loop's per-byte reset — a dribbling peer cannot
    /// stay alive on one byte per timeout).
    idle_deadline: Instant,
    /// Last time the socket accepted bytes; bounds write-side stalls.
    last_progress: Instant,
    /// Close as soon as the transmit buffer drains.
    close_after_flush: bool,
    /// Set when a request was accepted during a drain: close after its
    /// reply flushes (one answered request per connection, then out).
    drain_close: bool,
    /// Counted against the admission cap (a `Busy` rejection is not).
    admitted: bool,
    /// `EPOLLOUT` currently armed.
    want_write: bool,
    /// Events beyond `EPOLLOUT` this connection is registered for.
    base_events: u32,
    /// Peer closed its write side.
    eof: bool,
    /// Version stamp of this connection's live timer-heap entry. Each
    /// re-arm bumps it, so superseded heap entries are recognized (and
    /// dropped) on pop instead of resolving against stale state — the
    /// heap holds at most one live entry per connection regardless of
    /// how often deadlines move.
    timer_gen: u64,
}

impl Conn {
    /// When this connection next needs timer attention, if ever.
    fn due(&self, idle: Duration) -> Option<Instant> {
        let write_stall = if self.wbuf.is_empty() {
            None
        } else {
            Some(self.last_progress + idle)
        };
        match &self.mode {
            Mode::Idle => Some(match write_stall {
                Some(w) => w.min(self.idle_deadline),
                None => self.idle_deadline,
            }),
            // Never reap a connection whose request is in flight; check
            // back after a grace period.
            Mode::Await => None,
            Mode::Streaming { next_heartbeat, .. } => Some(match write_stall {
                Some(w) => w.min(*next_heartbeat),
                None => *next_heartbeat,
            }),
        }
    }
}

// ----- the reactor -----------------------------------------------------------

/// Reactor tunables (a slice of `ServerOptions` / `ReplicaOptions`).
pub(crate) struct ReactorConfig {
    pub max_connections: usize,
    pub idle_timeout: Duration,
}

/// The event loop: owns the listener, every connection, the timer heap,
/// and the read pool; consumes completions from the writer thread.
pub(crate) struct Reactor<R: Role> {
    poller: Poller,
    listener: Option<TcpListener>,
    role: R,
    completions: Arc<Completions>,
    config: ReactorConfig,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    conns: HashMap<u64, Conn>,
    /// `(deadline, token, timer_gen)` — entries whose gen no longer
    /// matches their connection's are stale and dropped on pop.
    timers: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    /// Tokens currently in `Mode::Streaming`, so a shipped batch pumps
    /// only subscribers instead of scanning every connection.
    streaming: HashSet<u64>,
    /// Tokens whose follow-the-latest slot holds a `Ready` session, so a
    /// generation move sweeps only the connections that cached one.
    cached_latest: HashSet<u64>,
    read_tx: Option<mpsc::Sender<ReadTask>>,
    read_workers: Vec<std::thread::JoinHandle<()>>,
    next_token: u64,
    draining: bool,
    /// Generation of the published snapshot at the last sweep, to detect
    /// movement and drop superseded cached sessions eagerly.
    seen_generation: u64,
}

/// How many solver workers serve deferred reads. Two keeps a second read
/// moving while one solves, without oversubscribing small containers.
const READ_WORKERS: usize = 2;

impl<R: Role> Reactor<R> {
    pub(crate) fn new(
        listener: TcpListener,
        role: R,
        completions: Arc<Completions>,
        config: ReactorConfig,
        shutdown: Arc<AtomicBool>,
        active: Arc<AtomicUsize>,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
        poller.add(completions.waker.fd, sys::EPOLLIN, TOKEN_WAKER)?;
        let (read_tx, read_rx) = mpsc::channel::<ReadTask>();
        let read_rx = Arc::new(Mutex::new(read_rx));
        let read_workers = (0..READ_WORKERS)
            .map(|i| {
                let rx = Arc::clone(&read_rx);
                let completions = Arc::clone(&completions);
                std::thread::Builder::new()
                    .name(format!("winslett-read-{i}"))
                    .spawn(move || run_read_worker(rx, completions))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let seen_generation = role.published().snapshot.generation();
        Ok(Reactor {
            poller,
            listener: Some(listener),
            role,
            completions,
            config,
            shutdown,
            active,
            conns: HashMap::new(),
            timers: BinaryHeap::new(),
            streaming: HashSet::new(),
            cached_latest: HashSet::new(),
            read_tx: Some(read_tx),
            read_workers,
            next_token: TOKEN_FIRST_CONN,
            draining: false,
            seen_generation,
        })
    }

    /// Serves until a drain completes: accepts, pumps, reaps, streams.
    pub(crate) fn run(mut self) -> io::Result<()> {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
        loop {
            if self.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                break;
            }
            let timeout = self.next_timeout();
            let n = self.poller.wait(&mut events, timeout)?;
            for ev in events.iter().take(n) {
                // Field copies out of the (possibly packed) struct; no
                // references into it are formed.
                let mask = ev.events;
                let token = ev.data;
                match token {
                    TOKEN_LISTENER => self.on_listener(),
                    TOKEN_WAKER => self.completions.waker.drain(),
                    _ => self.on_conn_event(token, mask),
                }
            }
            self.apply_completions();
            self.fire_timers();
            self.sweep_stale_sessions();
        }
        // Detach the pool: workers exit when the channel closes.
        drop(self.read_tx.take());
        for handle in self.read_workers.drain(..) {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Milliseconds until the nearest timer, or a heartbeat-scale default.
    fn next_timeout(&mut self) -> i32 {
        // Skip entries that are dead (connection gone) or superseded (a
        // newer re-arm bumped the gen) so they can't cause spurious
        // zero-timeouts.
        while let Some(Reverse((_, token, gen))) = self.timers.peek() {
            if self.conns.get(token).map(|c| c.timer_gen) == Some(*gen) {
                break;
            }
            self.timers.pop();
        }
        let default = HEARTBEAT_INTERVAL.as_millis() as i32;
        match self.timers.peek() {
            Some(Reverse((t, _, _))) => match t.checked_duration_since(Instant::now()) {
                Some(d) => (d.as_millis() as i32).saturating_add(1).min(default),
                None => 0,
            },
            None => default,
        }
    }

    /// (Re-)arms `token`'s single live timer entry at `due`, superseding
    /// any entry already in the heap for it.
    fn arm_timer(&mut self, token: u64, due: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.timer_gen += 1;
        self.timers.push(Reverse((due, token, conn.timer_gen)));
    }

    // ----- accept path -----

    fn on_listener(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.shutdown.load(Ordering::SeqCst) {
                // The shutdown poke (or a late arrival); the drain begins
                // at the top of the next loop iteration.
                continue;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let counters = self.role.counters();
            let live = self.active.load(Ordering::SeqCst);
            if live >= self.config.max_connections {
                counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
                let message = self
                    .role
                    .busy_message(live + 1, self.config.max_connections);
                self.install_conn(stream, false, Some(message));
            } else {
                self.active.fetch_add(1, Ordering::SeqCst);
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                self.install_conn(stream, true, None);
            }
        }
    }

    /// Registers a new connection. A non-admitted one exists only to
    /// flush its typed `Busy` refusal: it is registered write-only so its
    /// input is never read, and closes once the refusal drains (or the
    /// idle deadline reaps it).
    fn install_conn(&mut self, stream: TcpStream, admitted: bool, refusal: Option<String>) {
        let token = self.next_token;
        self.next_token += 1;
        let now = Instant::now();
        let mut conn = Conn {
            stream,
            rbuf: FrameBuf::new(),
            wbuf: OutBuf::new(),
            mode: Mode::Idle,
            pinned: ReaderSlot::Empty,
            latest: ReaderSlot::Empty,
            seq: 0,
            idle_deadline: now + self.config.idle_timeout,
            last_progress: now,
            close_after_flush: !admitted,
            drain_close: false,
            admitted,
            want_write: !admitted,
            base_events: if admitted {
                sys::EPOLLIN | sys::EPOLLRDHUP
            } else {
                0
            },
            eof: false,
            timer_gen: 0,
        };
        if let Some(message) = refusal {
            let _ = conn.wbuf.push_value(&Response::Error(WireError {
                kind: ErrorKindWire::Busy,
                message,
            }));
        }
        let events = conn.base_events | if conn.want_write { sys::EPOLLOUT } else { 0 };
        if self
            .poller
            .add(conn.stream.as_raw_fd(), events, token)
            .is_err()
        {
            if admitted {
                self.active.fetch_sub(1, Ordering::SeqCst);
            }
            return;
        }
        let due = conn
            .due(self.config.idle_timeout)
            .unwrap_or(now + self.config.idle_timeout);
        self.conns.insert(token, conn);
        self.arm_timer(token, due);
        if !admitted {
            self.flush_conn(token);
        }
    }

    // ----- event dispatch -----

    fn on_conn_event(&mut self, token: u64, mask: u32) {
        if mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close_conn(token);
            return;
        }
        if mask & sys::EPOLLOUT != 0 {
            self.flush_conn(token);
        }
        if mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
            self.on_readable(token);
        }
    }

    fn on_readable(&mut self, token: u64) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.admitted {
                return; // rejected connections never get their input read
            }
            let Conn { stream, rbuf, .. } = conn;
            match rbuf.fill_nonblocking(stream) {
                Ok(status) => {
                    if status.eof {
                        conn.eof = true;
                    }
                }
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.pump(token);
        self.settle_eof(token);
        self.flush_conn(token);
    }

    /// Parses and serves every complete frame buffered on an `Idle`
    /// connection. Stops when bytes run out, the connection defers
    /// (writer/read-pool handoff), or a framing error poisons the stream.
    fn pump(&mut self, token: u64) {
        enum Step {
            Request(Request),
            DecodeError(FrameError),
            Poisoned(FrameError),
        }
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if !matches!(conn.mode, Mode::Idle) || conn.close_after_flush {
                    break;
                }
                match conn.rbuf.next_frame() {
                    Ok(None) => break,
                    Ok(Some(range)) => {
                        // A whole frame arrived: the peer is live.
                        conn.idle_deadline = Instant::now() + self.config.idle_timeout;
                        match decode::<Request>(conn.rbuf.payload(range)) {
                            Ok(request) => Step::Request(request),
                            Err(e) => Step::DecodeError(e),
                        }
                    }
                    Err(e) => Step::Poisoned(e),
                }
            };
            match step {
                Step::Request(request) => {
                    self.role
                        .counters()
                        .requests
                        .fetch_add(1, Ordering::Relaxed);
                    self.handle_request(token, request);
                }
                Step::DecodeError(e) => {
                    // Intact frame, bad content: the stream stays
                    // synchronized, answer typed and keep serving.
                    self.role
                        .counters()
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    self.reply(
                        token,
                        Response::Error(WireError {
                            kind: ErrorKindWire::BadRequest,
                            message: e.to_string(),
                        }),
                    );
                }
                Step::Poisoned(e) => {
                    // Bad length or checksum: not resynchronizable.
                    self.role
                        .counters()
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(conn) = self.conns.get_mut(&token) {
                        let _ = conn.wbuf.push_value(&Response::Error(WireError {
                            kind: ErrorKindWire::BadRequest,
                            message: e.to_string(),
                        }));
                        conn.close_after_flush = true;
                    }
                    break;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.rbuf.compact();
        }
    }

    /// One decoded request. The reactor owns the generic kinds (reads,
    /// pins, liveness, shutdown); everything else goes to the role.
    fn handle_request(&mut self, token: u64, request: Request) {
        match request {
            Request::Ping => self.reply(token, Response::Pong),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                self.reply(token, Response::ShuttingDown);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.close_after_flush = true;
                }
                self.begin_drain();
            }
            Request::Pin => self.do_pin(token, 0),
            Request::PinAt(min_lsn) => self.do_pin(token, min_lsn),
            Request::Unpin => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    if conn.pinned.holds_pin() {
                        self.role
                            .counters()
                            .pinned_generations
                            .fetch_sub(1, Ordering::Relaxed);
                    }
                    conn.pinned = ReaderSlot::Empty;
                }
                self.reply(token, Response::Unpinned);
            }
            Request::Query(src) => self.do_read(token, ReadKind::Query(src)),
            Request::Check(src) => self.do_read(token, ReadKind::Check(src)),
            Request::Explain(src) => self.do_read(token, ReadKind::Explain(src)),
            other => {
                let seq = {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return;
                    };
                    conn.seq += 1;
                    conn.seq
                };
                match self.role.handle(token, seq, self.draining, other) {
                    RoleAction::Reply(resp) => self.reply(token, resp),
                    RoleAction::Deferred => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.mode = Mode::Await;
                            if self.draining {
                                conn.drain_close = true;
                            }
                        }
                    }
                }
            }
        }
    }

    /// `Pin` / `PinAt` — same contract as the blocking path, but the
    /// session encode is deferred to the first read's worker: only the
    /// snapshot `Arc` is grabbed here.
    fn do_pin(&mut self, token: u64, min_lsn: u64) {
        let view = self.role.published();
        if min_lsn > 0 && view.last_lsn < min_lsn {
            self.role
                .counters()
                .lag_refusals
                .fetch_add(1, Ordering::Relaxed);
            let message = self.role.lag_message(view.last_lsn, min_lsn);
            self.reply(
                token,
                Response::Error(WireError {
                    kind: ErrorKindWire::LagBehind,
                    message,
                }),
            );
            return;
        }
        let reply = SnapshotReply {
            generation: view.snapshot.generation(),
            updates_applied: view.updates_applied,
            last_lsn: view.last_lsn,
        };
        if let Some(conn) = self.conns.get_mut(&token) {
            if !conn.pinned.holds_pin() {
                self.role
                    .counters()
                    .pinned_generations
                    .fetch_add(1, Ordering::Relaxed);
            }
            conn.pinned = ReaderSlot::Lazy(view.snapshot);
        }
        self.reply(token, Response::Pinned(reply));
    }

    /// Hands a read to the worker pool, lending out whichever session the
    /// blocking path would have used: the pinned one if held, else the
    /// follow-the-latest session when its generation still matches, else
    /// a fresh encode from the published snapshot.
    fn do_read(&mut self, token: u64, kind: ReadKind) {
        self.role.counters().reads.fetch_add(1, Ordering::Relaxed);
        let view = self.role.published();
        let current = view.snapshot.generation();
        let task = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.seq += 1;
            let (origin, source) = if conn.pinned.holds_pin() {
                let source = match std::mem::replace(&mut conn.pinned, ReaderSlot::Lent) {
                    ReaderSlot::Ready(reader) => ReadSource::Reader(reader),
                    ReaderSlot::Lazy(snapshot) => ReadSource::Snapshot(snapshot),
                    // `Lent` is unreachable: `Await` mode blocks requests
                    // while a session is out. Recover with a re-encode.
                    ReaderSlot::Lent | ReaderSlot::Empty => {
                        ReadSource::Snapshot(view.snapshot.clone())
                    }
                };
                (ReadOrigin::Pinned, source)
            } else {
                self.cached_latest.remove(&token);
                let source = match std::mem::replace(&mut conn.latest, ReaderSlot::Lent) {
                    ReaderSlot::Ready(reader) if reader.generation() == current => {
                        ReadSource::Reader(reader)
                    }
                    _ => ReadSource::Snapshot(view.snapshot.clone()),
                };
                (ReadOrigin::Latest, source)
            };
            conn.mode = Mode::Await;
            if self.draining {
                conn.drain_close = true;
            }
            ReadTask {
                token,
                seq: conn.seq,
                origin,
                source,
                kind,
            }
        };
        let sent = match self.read_tx.as_ref() {
            Some(tx) => tx.send(task).is_ok(),
            None => false,
        };
        if !sent {
            // Pool gone (teardown race): answer typed instead of wedging.
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.mode = Mode::Idle;
            }
            self.reply(
                token,
                Response::Error(WireError {
                    kind: ErrorKindWire::Internal,
                    message: "read pool unavailable".into(),
                }),
            );
        }
    }

    /// Queues a reply on an `Idle` connection. During a drain the reply
    /// is the connection's last: it closes once flushed.
    fn reply(&mut self, token: u64, resp: Response) {
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.wbuf.push_value(&resp).is_err() {
                // Only an over-cap or unserializable reply lands here;
                // nothing recoverable to say on this stream.
                conn.close_after_flush = true;
                return;
            }
            if self.draining {
                conn.close_after_flush = true;
            }
        }
    }

    // ----- completions -----

    fn apply_completions(&mut self) {
        let completions = self.completions.drain();
        let mut shipped = false;
        let mut touched: Vec<u64> = Vec::new();
        for completion in completions {
            let Completion { token, seq, done } = completion;
            if token == TOKEN_NONE {
                if matches!(done, Done::Shipped) {
                    shipped = true;
                }
                continue;
            }
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // closed while the job ran; session drops here
            };
            if seq != conn.seq || !matches!(conn.mode, Mode::Await) {
                // Stale or duplicate (a writer-panic recovery path posts
                // failure to every sink in its batch, including jobs that
                // already completed): only the completion the connection
                // is actually waiting for gets delivered.
                continue;
            }
            match done {
                Done::Resp(resp) => {
                    conn.mode = Mode::Idle;
                    if conn.drain_close {
                        conn.close_after_flush = true;
                    }
                    let _ = conn.wbuf.push_value(&resp);
                }
                Done::RespClose(resp) => {
                    conn.mode = Mode::Idle;
                    let _ = conn.wbuf.push_value(&resp);
                    conn.close_after_flush = true;
                }
                Done::Read {
                    origin,
                    reader,
                    resp,
                } => {
                    conn.mode = Mode::Idle;
                    match origin {
                        ReadOrigin::Pinned => {
                            conn.pinned = match reader {
                                Some(r) => ReaderSlot::Ready(r),
                                // Worker panic ate the session; the pin
                                // survives as a lazy re-encode. The gauge
                                // is untouched — the pin is still held.
                                None => ReaderSlot::Lazy(self.role.published().snapshot),
                            };
                        }
                        ReadOrigin::Latest => {
                            // Reinstall only a still-current session —
                            // a superseded generation is dropped right
                            // here, releasing its `Arc<Theory>` eagerly.
                            conn.latest = match reader {
                                Some(r) if r.generation() == self.seen_generation => {
                                    self.cached_latest.insert(token);
                                    ReaderSlot::Ready(r)
                                }
                                _ => {
                                    self.cached_latest.remove(&token);
                                    ReaderSlot::Empty
                                }
                            };
                        }
                    }
                    if conn.drain_close {
                        conn.close_after_flush = true;
                    }
                    let _ = conn.wbuf.push_value(&resp);
                }
                Done::SubStart { frames, rx } => {
                    let mut ok = true;
                    for frame in &frames {
                        if conn.wbuf.push_value(frame).is_err() {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let next_heartbeat = Instant::now() + HEARTBEAT_INTERVAL;
                        conn.mode = Mode::Streaming { rx, next_heartbeat };
                        conn.timer_gen += 1;
                        self.timers
                            .push(Reverse((next_heartbeat, token, conn.timer_gen)));
                        self.streaming.insert(token);
                    } else {
                        conn.mode = Mode::Idle;
                        conn.close_after_flush = true;
                    }
                }
                Done::Shipped => {}
            }
            touched.push(token);
        }
        if shipped {
            self.pump_streams();
        }
        for token in touched {
            // A pipelined request may already be buffered behind the one
            // that just completed.
            self.pump(token);
            self.settle_eof(token);
            self.flush_conn(token);
        }
    }

    /// Drains every streaming connection's shipping channel into
    /// frame-sized `WalBatch` responses.
    fn pump_streams(&mut self) {
        // The `streaming` index keeps this from scanning every socket:
        // at 10k mostly-idle connections a full `conns` walk per shipped
        // batch dominated the reactor's tail latency.
        let tokens: Vec<u64> = self.streaming.iter().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                self.streaming.remove(&token);
                continue;
            };
            {
                let Mode::Streaming { rx, next_heartbeat } = &mut conn.mode else {
                    self.streaming.remove(&token);
                    continue;
                };
                loop {
                    match rx.try_recv() {
                        Ok(entries) => {
                            *next_heartbeat = Instant::now() + HEARTBEAT_INTERVAL;
                            for chunk in chunk_entries(entries) {
                                if conn
                                    .wbuf
                                    .push_value(&Response::WalBatch(WalBatchReply {
                                        entries: chunk,
                                    }))
                                    .is_err()
                                {
                                    conn.close_after_flush = true;
                                    break;
                                }
                            }
                        }
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            conn.close_after_flush = true;
                            break;
                        }
                    }
                    if conn.close_after_flush {
                        break;
                    }
                }
            }
            self.flush_conn(token);
        }
    }

    // ----- timers -----

    /// Pops due timer entries; each resolves lazily against the
    /// connection's *current* deadline — reap if genuinely due, re-arm
    /// otherwise. Dead tokens fall out silently.
    fn fire_timers(&mut self) {
        enum TimerAction {
            Reap { counted: bool },
            Heartbeat,
            Rearm(Instant),
        }
        let now = Instant::now();
        let idle = self.config.idle_timeout;
        loop {
            match self.timers.peek() {
                Some(Reverse((t, _, _))) if *t <= now => {}
                _ => break,
            }
            let Some(Reverse((_, token, gen))) = self.timers.pop() else {
                break;
            };
            let action = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue;
                };
                if conn.timer_gen != gen {
                    // Superseded by a later re-arm; the live entry for
                    // this connection is still in the heap.
                    continue;
                }
                match &conn.mode {
                    Mode::Idle => {
                        if now >= conn.idle_deadline {
                            // Read-side idle (or a mid-frame staller):
                            // the reap the stats call an idle close.
                            TimerAction::Reap { counted: true }
                        } else if !conn.wbuf.is_empty() && now >= conn.last_progress + idle {
                            TimerAction::Reap { counted: false }
                        } else {
                            match conn.due(idle) {
                                Some(due) => TimerAction::Rearm(due),
                                None => TimerAction::Rearm(now + idle),
                            }
                        }
                    }
                    // In-flight request: never reap; check back later.
                    Mode::Await => TimerAction::Rearm(now + idle),
                    Mode::Streaming { next_heartbeat, .. } => {
                        if !conn.wbuf.is_empty() && now >= conn.last_progress + idle {
                            TimerAction::Reap { counted: false }
                        } else if now >= *next_heartbeat {
                            TimerAction::Heartbeat
                        } else {
                            match conn.due(idle) {
                                Some(due) => TimerAction::Rearm(due),
                                None => TimerAction::Rearm(now + idle),
                            }
                        }
                    }
                }
            };
            match action {
                TimerAction::Reap { counted } => {
                    if counted {
                        self.role
                            .counters()
                            .idle_closes
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    self.close_conn(token);
                }
                TimerAction::Heartbeat => {
                    if self.draining {
                        // Streams end at drain; `begin_drain` marked them.
                        self.close_conn(token);
                        continue;
                    }
                    if let Some(conn) = self.conns.get_mut(&token) {
                        let _ = conn.wbuf.push_value(&Response::WalBatch(WalBatchReply {
                            entries: Vec::new(),
                        }));
                        if let Mode::Streaming { next_heartbeat, .. } = &mut conn.mode {
                            *next_heartbeat = now + HEARTBEAT_INTERVAL;
                        }
                    }
                    self.arm_timer(token, now + HEARTBEAT_INTERVAL);
                    self.flush_conn(token);
                }
                TimerAction::Rearm(due) => {
                    self.arm_timer(token, due);
                }
            }
        }
    }

    // ----- EOF / flush / close -----

    /// Decides what a half-closed peer means for this connection.
    fn settle_eof(&mut self, token: u64) {
        enum EofAction {
            Nothing,
            Torn,
            CloseNow,
        }
        let action = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.eof {
                return;
            }
            match conn.mode {
                Mode::Idle => {
                    if conn.rbuf.pending() > 0 {
                        // EOF inside a frame: the same torn-frame close
                        // the blocking loop counts as a protocol error.
                        EofAction::Torn
                    } else {
                        conn.close_after_flush = true;
                        if conn.wbuf.is_empty() {
                            EofAction::CloseNow
                        } else {
                            EofAction::Nothing
                        }
                    }
                }
                // The in-flight request still gets served; the completion
                // path revisits EOF afterwards.
                Mode::Await => EofAction::Nothing,
                // A subscriber that closed its write side is done reading
                // too — the stream has no one left to talk to.
                Mode::Streaming { .. } => EofAction::CloseNow,
            }
        };
        match action {
            EofAction::Nothing => {}
            EofAction::Torn => {
                self.role
                    .counters()
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                self.close_conn(token);
            }
            EofAction::CloseNow => self.close_conn(token),
        }
    }

    /// Writes what the socket will take; arms/disarms `EPOLLOUT` to match
    /// the buffer; closes flushed-out connections marked for it.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.wbuf.is_empty() {
            let Conn { stream, wbuf, .. } = conn;
            match wbuf.flush_nonblocking(stream) {
                Ok(n) => {
                    if n > 0 {
                        conn.last_progress = Instant::now();
                    }
                }
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if conn.wbuf.is_empty() {
            if conn.close_after_flush {
                self.close_conn(token);
                return;
            }
            if conn.want_write {
                conn.want_write = false;
                let fd = conn.stream.as_raw_fd();
                let events = conn.base_events;
                let _ = self.poller.modify(fd, events, token);
            }
        } else if !conn.want_write {
            conn.want_write = true;
            let fd = conn.stream.as_raw_fd();
            let events = conn.base_events | sys::EPOLLOUT;
            let _ = self.poller.modify(fd, events, token);
        }
    }

    /// Tears one connection down: deregisters, releases its admission
    /// slot and pin gauge entry, drops its sessions (freeing whatever
    /// `Arc<Theory>` generations they held).
    fn close_conn(&mut self, token: u64) {
        self.streaming.remove(&token);
        self.cached_latest.remove(&token);
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            if conn.admitted {
                self.active.fetch_sub(1, Ordering::SeqCst);
                // Let the role reclaim per-connection state (an open
                // transaction's locks, for one) now that no further
                // requests can arrive on this token.
                self.role.closed(token);
            }
            if conn.pinned.holds_pin() {
                self.role
                    .counters()
                    .pinned_generations
                    .fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Starts the drain: stop accepting, end subscription streams, leave
    /// request connections to finish on their own terms (one more
    /// answered request or their idle deadline — same discipline as the
    /// blocking loop).
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        let streaming: Vec<u64> = self.streaming.iter().copied().collect();
        for token in streaming {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.close_after_flush = true;
            }
            self.flush_conn(token);
        }
    }

    /// Detects publication movement and drops cached follow-the-latest
    /// sessions for superseded generations, so an idle connection cannot
    /// keep an old `Arc<Theory>` alive between requests.
    fn sweep_stale_sessions(&mut self) {
        let current = self.role.published().snapshot.generation();
        if current == self.seen_generation {
            return;
        }
        self.seen_generation = current;
        // Only connections actually holding a cached session are visited
        // — the index spares the 10k-idle-socket scan on every publish.
        self.cached_latest.retain(|token| {
            let Some(conn) = self.conns.get_mut(token) else {
                return false;
            };
            match &conn.latest {
                ReaderSlot::Ready(reader) if reader.generation() != current => {
                    conn.latest = ReaderSlot::Empty;
                    false
                }
                ReaderSlot::Ready(_) => true,
                _ => false,
            }
        });
        self.role.generation_moved();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn poller_sees_readable_listener_and_waker() {
        let poller = Poller::new().expect("epoll_create1");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        poller
            .add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)
            .expect("add listener");
        let waker = Waker::new().expect("eventfd");
        poller
            .add(waker.fd, sys::EPOLLIN, TOKEN_WAKER)
            .expect("add waker");

        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 8];
        assert_eq!(poller.wait(&mut events, 0).expect("wait"), 0);

        waker.wake();
        let n = poller.wait(&mut events, 1000).expect("wait");
        let tokens: Vec<u64> = events.iter().take(n).map(|e| e.data).collect();
        assert!(tokens.contains(&TOKEN_WAKER));
        waker.drain();
        assert_eq!(poller.wait(&mut events, 0).expect("wait"), 0, "drained");

        let mut client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        client.write_all(b"x").expect("write");
        let n = poller.wait(&mut events, 1000).expect("wait");
        let tokens: Vec<u64> = events.iter().take(n).map(|e| e.data).collect();
        assert!(tokens.contains(&TOKEN_LISTENER));
    }

    #[test]
    fn completions_post_wakes_and_drains_in_order() {
        let completions = Completions::new().expect("completions");
        completions.post(7, 1, Done::Resp(Response::Pong));
        completions.post(TOKEN_NONE, 0, Done::Shipped);
        let drained = completions.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].token, 7);
        assert_eq!(drained[0].seq, 1);
        assert!(matches!(drained[0].done, Done::Resp(Response::Pong)));
        assert!(matches!(drained[1].done, Done::Shipped));
        assert!(completions.drain().is_empty());
    }
}
