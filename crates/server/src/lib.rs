#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! # winslett-serve
//!
//! A concurrent LDML database server over the Winslett (PODS 1986)
//! reproduction: one journaled writer, MVCC-style snapshot readers, and a
//! length-prefixed CRC-checked wire protocol on plain `std::net` TCP.
//!
//! * [`protocol`] — the frame format and request/response vocabulary,
//!   including the WAL-subscription kinds (`Subscribe` / `Catchup` /
//!   `WalBatch`).
//! * [`server`] — [`Server`]: accept loop, admission control, per-request
//!   dispatch, snapshot publication, WAL shipping to subscribers,
//!   graceful drain.
//! * [`replica`] — [`Replica`]: a WAL-shipping read replica serving
//!   pinned-LSN consistent reads (see `docs/replication.md`).
//! * [`client`] — [`Client`]: a blocking request/response client.
//!
//! ```no_run
//! use winslett_core::{DbOptions, MemStorage, WalOptions};
//! use winslett_serve::{Client, Server, ServerOptions};
//!
//! let (server, _report) = Server::bind(
//!     ("127.0.0.1", 0),
//!     MemStorage::new(),
//!     DbOptions::default(),
//!     WalOptions::default(),
//!     ServerOptions::default(),
//! )?;
//! let addr = server.local_addr();
//! let running = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! client.declare_relation("Orders", 3)?;
//! client.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")?;
//! let snap = client.pin()?;
//! let answer = client.check("Orders(100,32,1)")?;
//! assert!(answer.possible && !answer.certain);
//! assert_eq!(answer.generation, snap.generation);
//! client.shutdown()?;
//! running.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod protocol;
mod reactor;
pub mod replica;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    CatchupReply, CheckpointReply, ErrorKindWire, ExecReply, ExplainReply, FrameError, QueryReply,
    Request, Response, SnapshotReply, StatsReply, TruthReply, TxnReply, WalBatchReply, WireError,
    WireVerdict, MAX_FRAME_LEN,
};
pub use replica::{Replica, ReplicaHandle, ReplicaOptions, ReplicaStats};
pub use server::{
    CompactionPolicy, Server, ServerHandle, ServerOptions, ServerStats, HEARTBEAT_INTERVAL,
};
