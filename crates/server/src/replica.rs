//! WAL-shipping read replicas.
//!
//! A replica connects to a primary `winslett-serve`, subscribes to its
//! WAL stream, and rebuilds the logical database by replaying shipped
//! records through the same §4 path recovery uses. It then serves the
//! read half of the protocol (query / check / explain / pin) from its own
//! snapshot chain; every write-shaped request is refused with a typed
//! `ReadOnly` error.
//!
//! ## Catch-up and the stream
//!
//! On (re)connect the replica sends `Subscribe(next_lsn)` — the first LSN
//! it has not yet applied. The primary answers, atomically against its
//! writer lock, with a [`CatchupReply`]: either just a cursor (the
//! backlog follows as `WalBatch` frames read straight from the WAL
//! suffix) or a full checkpoint snapshot plus the suffix past it, when
//! the replica's cursor predates the primary's checkpoint. After the
//! backlog, live batches arrive in commit order, one shipped batch per
//! flushed write batch, with empty heartbeats while the primary is idle.
//!
//! The shipped stream is the *effective* log: aborted journal pairs are
//! filtered at the primary, so the replica tolerates LSN holes — any
//! entry at or past its cursor is applied, anything below it (a
//! resubscription overlap) is skipped.
//!
//! ## Pinned-LSN consistency
//!
//! `PinAt(min_lsn)` succeeds only once the replica's published snapshot
//! has applied every shipped record through `min_lsn`; until then the
//! client gets a typed `LagBehind` refusal and retries (or falls back to
//! the primary). Because apply order is commit order, a successful
//! `PinAt(x)` pins a state that agrees with the primary's history at `x`
//! on every verdict.

use crate::client::Client;
use crate::protocol::{
    assemble_snapshot, read_frame, recv, send, CatchupReply, ErrorKindWire, ExplainReply,
    FrameError, QueryReply, Request, Response, SnapshotReply, StatsReply, TruthReply,
    WalBatchReply, WireError,
};
use crate::reactor::{
    Completions, NetCounters, PublishedView, Reactor, ReactorConfig, Role, RoleAction,
};
use crate::server::HEARTBEAT_INTERVAL;
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;
use winslett_core::snapshot::{SnapshotReader, TheorySnapshot};
use winslett_core::wal::WalRecord;
use winslett_core::{replay_record, restore_theory, DbError, DbOptions, LogicalDatabase};

/// Replica tunables.
#[derive(Clone, Debug)]
pub struct ReplicaOptions {
    /// Hard cap on concurrently served read connections.
    pub max_connections: usize,
    /// A read connection idle this long is closed.
    pub idle_timeout: Duration,
    /// Pause between reconnection attempts to the primary.
    pub reconnect_backoff: Duration,
    /// Run the post-batch simplification pass the primary's recovery
    /// path would run. On by default; benches may disable it to measure
    /// raw apply throughput.
    pub simplify_after_batch: bool,
    /// Serve reads with the classic blocking thread-per-connection loop
    /// instead of the epoll reactor (benchmarking baseline; the reactor
    /// is the default).
    pub threaded: bool,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        ReplicaOptions {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            reconnect_backoff: Duration::from_millis(50),
            simplify_after_batch: true,
            threaded: false,
        }
    }
}

/// Monotone counters plus the replication cursor, updated lock-free.
#[derive(Debug, Default)]
pub struct ReplicaStats {
    /// Read connections accepted into service.
    pub accepted: AtomicU64,
    /// Read connections refused at the admission gate.
    pub rejected_busy: AtomicU64,
    /// Requests served, all kinds.
    pub requests: AtomicU64,
    /// Read requests (query/check/explain) served.
    pub reads: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_closes: AtomicU64,
    /// Malformed frames / undecodable requests observed.
    pub protocol_errors: AtomicU64,
    /// Snapshot generations currently pinned by connections.
    pub pinned_generations: AtomicU64,
    /// `WalBatch` frames applied (heartbeats excluded).
    pub replica_batches: AtomicU64,
    /// Shipped records applied.
    pub replica_records: AtomicU64,
    /// Catch-up bootstraps that carried a full checkpoint snapshot.
    pub replica_snapshots_loaded: AtomicU64,
    /// Times the tailer re-established the primary connection after the
    /// first successful subscription.
    pub replica_reconnects: AtomicU64,
    /// Shipped records the replayer had to skip because applying them
    /// failed — mirrors recovery's deterministic-error accounting and
    /// should stay zero against an honest primary.
    pub replica_apply_errors: AtomicU64,
    /// `PinAt` requests refused because the replica had not yet applied
    /// the demanded LSN.
    pub lag_refusals: AtomicU64,
    /// The next LSN the tailer expects (= 1 + the highest applied LSN).
    pub next_lsn: AtomicU64,
}

/// What the tailer last published.
struct ReplicaPublished {
    snapshot: TheorySnapshot,
    /// Highest shipped LSN folded into `snapshot` (0 before the first
    /// applied record).
    last_lsn: u64,
}

struct ReplicaShared {
    published: RwLock<Arc<ReplicaPublished>>,
    stats: Arc<ReplicaStats>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    options: ReplicaOptions,
    addr: SocketAddr,
    primary: SocketAddr,
}

/// A cheap, clonable handle for poking a running replica from outside
/// its accept loop.
#[derive(Clone)]
pub struct ReplicaHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ReplicaStats>,
    active: Arc<AtomicUsize>,
}

impl ReplicaHandle {
    /// The address the replica is serving reads on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ReplicaStats {
        &self.stats
    }

    /// Read connections currently in service.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown of the accept loop and the tailer.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A read replica: a bound listener, a WAL tailer thread, and the shared
/// snapshot chain between them.
pub struct Replica {
    listener: TcpListener,
    shared: Arc<ReplicaShared>,
    db_options: DbOptions,
}

impl Replica {
    /// Binds `addr` for read service and records `primary` as the WAL
    /// source. The database starts empty and in memory; the first
    /// subscription's catch-up material populates it before any read can
    /// observe a non-initial generation.
    pub fn bind(
        addr: impl ToSocketAddrs,
        primary: SocketAddr,
        db_options: DbOptions,
        options: ReplicaOptions,
    ) -> Result<Self, DbError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let db = LogicalDatabase::with_options(db_options);
        let snapshot = TheorySnapshot::capture(db.theory());
        let shared = Arc::new(ReplicaShared {
            published: RwLock::new(Arc::new(ReplicaPublished {
                snapshot,
                last_lsn: 0,
            })),
            stats: Arc::new(ReplicaStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
            active: Arc::new(AtomicUsize::new(0)),
            options,
            addr,
            primary,
        });
        Ok(Replica {
            listener,
            shared,
            db_options,
        })
    }

    /// The bound read-service address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle usable from other threads (shutdown, stats).
    pub fn handle(&self) -> ReplicaHandle {
        ReplicaHandle {
            addr: self.shared.addr,
            shutdown: Arc::clone(&self.shared.shutdown),
            stats: Arc::clone(&self.shared.stats),
            active: Arc::clone(&self.shared.active),
        }
    }

    /// Serves reads until shutdown is requested, then drains live
    /// connections and joins the tailer. The default I/O core is the
    /// same epoll reactor the primary uses;
    /// [`ReplicaOptions::threaded`] selects the classic blocking loop.
    pub fn run(self) -> Result<(), DbError> {
        if self.shared.options.threaded {
            self.run_threaded()
        } else {
            self.run_epoll()
        }
    }

    /// The epoll event-loop read server (the tailer stays its own
    /// thread in both modes — it is a client of the primary, not a
    /// served connection).
    fn run_epoll(self) -> Result<(), DbError> {
        let Replica {
            listener,
            shared,
            db_options,
        } = self;
        let tailer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_tailer(&shared, db_options))
        };
        let run_result = Completions::new().and_then(|completions| {
            Reactor::new(
                listener,
                ReplicaRole {
                    shared: Arc::clone(&shared),
                },
                completions,
                ReactorConfig {
                    max_connections: shared.options.max_connections,
                    idle_timeout: shared.options.idle_timeout,
                },
                Arc::clone(&shared.shutdown),
                Arc::clone(&shared.active),
            )
            .and_then(Reactor::run)
        });
        shared.shutdown.store(true, Ordering::SeqCst);
        let _ = tailer.join();
        run_result?;
        Ok(())
    }

    /// The classic blocking loop: one kernel thread per connection.
    fn run_threaded(self) -> Result<(), DbError> {
        let Replica {
            listener,
            shared,
            db_options,
        } = self;
        let tailer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_tailer(&shared, db_options))
        };
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
                Err(_) => continue,
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
            if active > shared.options.max_connections {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                reject_busy(stream, active, shared.options.max_connections);
                continue;
            }
            shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                ReplicaConnection::new(stream, Arc::clone(&shared)).serve();
                shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(listener);
        while shared.active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let _ = tailer.join();
        Ok(())
    }
}

/// The replica half of the reactor: reads, pins, and liveness are the
/// reactor's own; everything the role sees is either `Stats` (answered
/// inline — all counters are atomics) or write-shaped, refused with the
/// typed `ReadOnly` error. No writer thread exists on a replica, so no
/// request is ever deferred.
struct ReplicaRole {
    shared: Arc<ReplicaShared>,
}

impl Role for ReplicaRole {
    fn counters(&self) -> NetCounters<'_> {
        let s = &self.shared.stats;
        NetCounters {
            accepted: &s.accepted,
            rejected_busy: &s.rejected_busy,
            requests: &s.requests,
            reads: &s.reads,
            idle_closes: &s.idle_closes,
            protocol_errors: &s.protocol_errors,
            pinned_generations: &s.pinned_generations,
            lag_refusals: &s.lag_refusals,
        }
    }

    fn published(&self) -> PublishedView {
        let p = published(&self.shared);
        PublishedView {
            snapshot: p.snapshot.clone(),
            updates_applied: self.shared.stats.replica_records.load(Ordering::Relaxed),
            last_lsn: p.last_lsn,
        }
    }

    fn busy_message(&self, active: usize, cap: usize) -> String {
        format!("replica busy: {active} connections, cap {cap}")
    }

    fn lag_message(&self, have: u64, want: u64) -> String {
        format!("replica applied through lsn {have} but the pin demands lsn {want}")
    }

    fn handle(&self, _token: u64, _seq: u64, _draining: bool, request: Request) -> RoleAction {
        RoleAction::Reply(match request {
            Request::Stats => Response::Stats(Box::new(stats_reply(&self.shared))),
            Request::Execute(_)
            | Request::DeclareRelation(..)
            | Request::DeclareAttribute(_)
            | Request::LoadFact(..)
            | Request::LoadWff(_)
            | Request::Checkpoint
            | Request::Begin
            | Request::Commit
            | Request::Rollback
            | Request::Subscribe(_) => read_only(),
            other => Response::Error(WireError {
                kind: ErrorKindWire::BadRequest,
                message: format!("unroutable request: {other:?}"),
            }),
        })
    }

    fn generation_moved(&self) {}
}

/// Sends the typed `Busy` rejection (best-effort) and closes.
fn reject_busy(mut stream: TcpStream, active: usize, cap: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = send(
        &mut stream,
        &Response::Error(WireError {
            kind: ErrorKindWire::Busy,
            message: format!("replica busy: {active} connections, cap {cap}"),
        }),
    );
}

// ----- the tailer -----------------------------------------------------------

/// Transaction intents held back until their outcome marker arrives, plus
/// the bookkeeping that keeps the replication cursor honest while they
/// are held. Carried across reconnects by the tailer.
///
/// A follower must never expose effects the primary has not committed:
/// shipped [`WalRecord::TxnOp`] intents are buffered here and applied,
/// in order, only when the `TxnCommit` marker lands (dropped on
/// `TxnAbort`). While any transaction is open, the subscription cursor
/// is pinned at the oldest open transaction's begin LSN — a reconnect
/// then replays the held intents from the primary's log — and `applied`
/// remembers which LSNs past that pin are already folded in so the
/// resubscription overlap is not applied twice.
#[derive(Default)]
struct TxnBuffer {
    /// Ops of still-open transactions, keyed by txn id (= begin LSN),
    /// each tagged with the shipped LSN it arrived under.
    pending: HashMap<u64, Vec<(u64, WalRecord)>>,
    /// LSNs at or past the pinned cursor whose effects already reached
    /// the replica's database.
    applied: HashSet<u64>,
}

/// The WAL tailer: subscribe, catch up, apply, republish; reconnect from
/// the current cursor on any stream failure until shutdown.
fn run_tailer(shared: &ReplicaShared, db_options: DbOptions) {
    let mut db = LogicalDatabase::with_options(db_options);
    let mut next_lsn: u64 = 0;
    let mut buffer = TxnBuffer::default();
    let mut ever_connected = false;
    while !shared.shutdown.load(Ordering::SeqCst) {
        // The held intents will be re-shipped from the pinned cursor on
        // the next subscription; a stale copy must not double-buffer.
        buffer.pending.clear();
        match tail_once(shared, &db_options, &mut db, &mut next_lsn, &mut buffer) {
            TailExit::Shutdown => return,
            TailExit::StreamLost => {
                if ever_connected {
                    shared
                        .stats
                        .replica_reconnects
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            TailExit::NeverConnected => {}
        }
        ever_connected = ever_connected || next_lsn > 0;
        // Backoff before redialing; shutdown cuts the wait short.
        let backoff = shared.options.reconnect_backoff;
        let step = Duration::from_millis(10).min(backoff);
        let mut waited = Duration::ZERO;
        while waited < backoff && !shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(step);
            waited += step;
        }
    }
}

enum TailExit {
    /// Shutdown was requested; do not reconnect.
    Shutdown,
    /// The subscription was established and then lost; reconnect.
    StreamLost,
    /// The dial or handshake itself failed; retry without counting a
    /// reconnect.
    NeverConnected,
}

/// One subscription lifetime: dial, handshake, apply until the stream
/// dies or shutdown lands.
fn tail_once(
    shared: &ReplicaShared,
    db_options: &DbOptions,
    db: &mut LogicalDatabase,
    next_lsn: &mut u64,
    buffer: &mut TxnBuffer,
) -> TailExit {
    // The primary heartbeats every HEARTBEAT_INTERVAL while idle; four
    // missed beats means the stream (or the primary) is gone — the
    // client's read deadline turns that into a typed `TimedOut` below.
    let mut stream = match Client::connect_with_timeout(
        shared.primary,
        Duration::from_secs(2),
        Some(HEARTBEAT_INTERVAL * 4),
    ) {
        Ok(c) => c.into_stream(),
        Err(_) => return TailExit::NeverConnected,
    };
    if send(&mut stream, &Request::Subscribe(*next_lsn)).is_err() {
        return TailExit::NeverConnected;
    }
    let catchup: CatchupReply = match recv::<Response>(&mut stream) {
        Ok(Response::Catchup(c)) => *c,
        Ok(Response::Error(_)) | Ok(_) | Err(_) => return TailExit::NeverConnected,
    };
    // A snapshot past the frame cap arrives as CatchupChunk frames after
    // a `chunked: true` announcement; reassemble before restoring.
    let snapshot = if catchup.chunked {
        let mut parts = Vec::new();
        loop {
            match recv::<Response>(&mut stream) {
                Ok(Response::CatchupChunk(c)) => {
                    let done = c.done;
                    parts.push(c.part);
                    if done {
                        break;
                    }
                }
                Ok(_) | Err(_) => return TailExit::NeverConnected,
            }
        }
        match assemble_snapshot(&parts) {
            Ok(s) => Some(s),
            Err(_) => return TailExit::NeverConnected,
        }
    } else {
        catchup.snapshot
    };
    if let Some(snap) = snapshot {
        // Our cursor predates the primary's checkpoint: restart from the
        // checkpoint image, exactly as recovery would.
        match restore_theory(&snap.theory) {
            Ok(theory) => {
                let generation = published(shared).snapshot.generation();
                *db = LogicalDatabase::from_theory(theory, *db_options);
                db.theory_mut().advance_generation_past(generation);
                *next_lsn = snap.lsn;
                // Checkpoints refuse while transactions are open, so the
                // snapshot boundary is transaction-clean: nothing held
                // back before it can still matter.
                buffer.pending.clear();
                buffer.applied.clear();
                shared
                    .stats
                    .replica_snapshots_loaded
                    .fetch_add(1, Ordering::Relaxed);
                republish(shared, db, *next_lsn, snap.lsn.saturating_sub(1));
            }
            Err(_) => return TailExit::NeverConnected,
        }
    }
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return TailExit::Shutdown;
        }
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(FrameError::TimedOut) => {
                // Heartbeats stopped: treat the stream as lost.
                return TailExit::StreamLost;
            }
            Err(_) => return TailExit::StreamLost,
        };
        let batch: WalBatchReply = match crate::protocol::decode::<Response>(&payload) {
            Ok(Response::WalBatch(b)) => b,
            Ok(_) | Err(_) => return TailExit::StreamLost,
        };
        if batch.entries.is_empty() {
            continue; // heartbeat
        }
        let mut applied = 0u64;
        let mut apply = |db: &mut LogicalDatabase, record: &WalRecord| {
            // The stream is the effective log: holes at abort sites are
            // expected. A record that still refuses mirrors recovery's
            // deterministic-refusal accounting — it was journaled but
            // deterministically refused, so skipping keeps us aligned
            // with the primary.
            if replay_record(db, record).is_err() {
                shared
                    .stats
                    .replica_apply_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
            applied += 1;
        };
        let mut hi = *next_lsn;
        for entry in &batch.entries {
            if entry.lsn < *next_lsn || buffer.applied.contains(&entry.lsn) {
                continue; // resubscription overlap, already applied
            }
            hi = hi.max(entry.lsn + 1);
            match &entry.record {
                // Transaction intents are held back, never applied on
                // sight: a reader on this replica must not observe
                // effects the primary has not committed.
                WalRecord::TxnBegin(t) => {
                    buffer.pending.insert(*t, Vec::new());
                }
                WalRecord::TxnOp(t, op) => {
                    buffer
                        .pending
                        .entry(*t)
                        .or_default()
                        .push((entry.lsn, (**op).clone()));
                }
                WalRecord::TxnAbort(t) => {
                    buffer.pending.remove(t);
                }
                WalRecord::TxnCommit(t) => {
                    let Some(ops) = buffer.pending.remove(t) else {
                        continue; // overlap replay of an already-applied commit
                    };
                    buffer.applied.insert(*t);
                    buffer.applied.insert(entry.lsn);
                    for (lsn, op) in ops {
                        apply(db, &op);
                        buffer.applied.insert(lsn);
                    }
                }
                record => {
                    apply(db, record);
                    buffer.applied.insert(entry.lsn);
                }
            }
        }
        // Advance the cursor — but never past an open transaction's begin
        // LSN, so a reconnect re-ships its held intents.
        *next_lsn = buffer.pending.keys().min().copied().unwrap_or(hi);
        let cursor = *next_lsn;
        buffer.applied.retain(|l| *l >= cursor);
        if applied == 0 {
            continue;
        }
        if shared.options.simplify_after_batch {
            db.simplify(db_options.simplify);
        }
        shared
            .stats
            .replica_records
            .fetch_add(applied, Ordering::Relaxed);
        shared.stats.replica_batches.fetch_add(1, Ordering::Relaxed);
        // `last_lsn` advances through every *processed* entry, held-back
        // intents included: the published state agrees with the
        // primary's durable history at each of those LSNs (an
        // uncommitted intent has no effects there either), so pins need
        // not wait for an unrelated open transaction. Only the
        // resubscription cursor stays pinned.
        republish(shared, db, *next_lsn, hi.saturating_sub(1));
    }
}

/// The current published snapshot.
fn published(shared: &ReplicaShared) -> Arc<ReplicaPublished> {
    Arc::clone(
        &shared
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner),
    )
}

/// Publishes the tailer's current state. The generation is forced past
/// the previous publication's: connection read sessions are cached by
/// generation, and `replay_record` rebuilds the database through
/// `from_theory` on `Apply` records, which would otherwise reset it.
/// `cursor` is the resubscription point (pinned at the oldest open
/// transaction while intents are held); `last_lsn` is the highest
/// shipped LSN the published state agrees with.
fn republish(shared: &ReplicaShared, db: &mut LogicalDatabase, cursor: u64, last_lsn: u64) {
    let previous = published(shared).snapshot.generation();
    db.theory_mut().advance_generation_past(previous);
    let snapshot = TheorySnapshot::capture(db.theory());
    shared.stats.next_lsn.store(cursor, Ordering::Relaxed);
    *shared
        .published
        .write()
        .unwrap_or_else(PoisonError::into_inner) =
        Arc::new(ReplicaPublished { snapshot, last_lsn });
}

// ----- read connections -----------------------------------------------------

/// Per-connection state on the replica: the stream plus read sessions,
/// mirroring the primary's connection but with every write-shaped
/// request refused.
struct ReplicaConnection {
    stream: TcpStream,
    shared: Arc<ReplicaShared>,
    pinned: Option<SnapshotReader>,
    latest: Option<SnapshotReader>,
}

impl Drop for ReplicaConnection {
    fn drop(&mut self) {
        if self.pinned.is_some() {
            self.shared
                .stats
                .pinned_generations
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl ReplicaConnection {
    fn new(stream: TcpStream, shared: Arc<ReplicaShared>) -> Self {
        ReplicaConnection {
            stream,
            shared,
            pinned: None,
            latest: None,
        }
    }

    fn serve(&mut self) {
        let _ = self.stream.set_nodelay(true);
        let _ = self
            .stream
            .set_read_timeout(Some(self.shared.options.idle_timeout));
        loop {
            // Sampled before blocking: a request that arrives during the
            // drain is still answered, and only then is the connection
            // closed — mirrors the primary's drain discipline.
            let draining = self.shared.shutdown.load(Ordering::SeqCst);
            let payload = match read_frame(&mut self.stream) {
                Ok(p) => p,
                Err(FrameError::Closed) => break,
                Err(FrameError::TimedOut) => {
                    self.shared
                        .stats
                        .idle_closes
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(e @ (FrameError::Oversized { .. } | FrameError::BadCrc { .. })) => {
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = send(
                        &mut self.stream,
                        &Response::Error(WireError {
                            kind: ErrorKindWire::BadRequest,
                            message: e.to_string(),
                        }),
                    );
                    break;
                }
                Err(_) => {
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
            };
            let request: Request = match crate::protocol::decode(&payload) {
                Ok(r) => r,
                Err(e) => {
                    self.shared
                        .stats
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let resp = Response::Error(WireError {
                        kind: ErrorKindWire::BadRequest,
                        message: e.to_string(),
                    });
                    if send(&mut self.stream, &resp).is_err() {
                        break;
                    }
                    continue;
                }
            };
            self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            let is_shutdown = matches!(request, Request::Shutdown);
            let response = self.dispatch(request);
            if send(&mut self.stream, &response).is_err() {
                break;
            }
            // During a drain, close after answering the request that was
            // in flight when the drain started instead of letting a
            // chatty client hold the drain open: the drain is bounded by
            // the idle timeout OR one request round-trip per connection,
            // whichever ends first.
            if is_shutdown || draining {
                break;
            }
        }
    }

    fn dispatch(&mut self, request: Request) -> Response {
        match request {
            Request::Query(src) => self.read(|r| {
                let generation = r.generation();
                r.query(&src).map(|a| {
                    Response::Rows(QueryReply {
                        certain: a.certain,
                        possible: a.possible,
                        generation,
                    })
                })
            }),
            Request::Check(src) => self.read(|r| {
                let generation = r.generation();
                r.decide(&src).map(|(possible, certain)| {
                    Response::Truth(TruthReply {
                        possible,
                        certain,
                        generation,
                    })
                })
            }),
            Request::Explain(src) => self.read(|r| {
                let generation = r.generation();
                r.explain(&src).map(|e| {
                    Response::Explained(ExplainReply {
                        verdict: wire_verdict(e.verdict),
                        witness: e.witness,
                        counterexample: e.counterexample,
                        generation,
                    })
                })
            }),
            Request::Pin => self.pin(0),
            Request::PinAt(min_lsn) => self.pin(min_lsn),
            Request::Unpin => {
                if self.pinned.take().is_some() {
                    self.shared
                        .stats
                        .pinned_generations
                        .fetch_sub(1, Ordering::Relaxed);
                }
                Response::Unpinned
            }
            Request::Stats => self.stats(),
            Request::Ping => Response::Pong,
            Request::Shutdown => {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_secs(1));
                Response::ShuttingDown
            }
            Request::Execute(_)
            | Request::DeclareRelation(..)
            | Request::DeclareAttribute(_)
            | Request::LoadFact(..)
            | Request::LoadWff(_)
            | Request::Checkpoint
            | Request::Begin
            | Request::Commit
            | Request::Rollback
            | Request::Subscribe(_) => read_only(),
        }
    }

    /// `Pin` / `PinAt` on the replica: the identical check the primary
    /// runs, but here `last_lsn` is the replication cursor — so a refusal
    /// means "not caught up yet", the pinned-LSN consistency contract.
    fn pin(&mut self, min_lsn: u64) -> Response {
        let published = published(&self.shared);
        if min_lsn > 0 && published.last_lsn < min_lsn {
            self.shared
                .stats
                .lag_refusals
                .fetch_add(1, Ordering::Relaxed);
            return Response::Error(WireError {
                kind: ErrorKindWire::LagBehind,
                message: format!(
                    "replica applied through lsn {} but the pin demands lsn {min_lsn}",
                    published.last_lsn
                ),
            });
        }
        let reply = SnapshotReply {
            generation: published.snapshot.generation(),
            updates_applied: self.shared.stats.replica_records.load(Ordering::Relaxed),
            last_lsn: published.last_lsn,
        };
        if self.pinned.is_none() {
            self.shared
                .stats
                .pinned_generations
                .fetch_add(1, Ordering::Relaxed);
        }
        self.pinned = Some(published.snapshot.reader());
        Response::Pinned(reply)
    }

    fn read(
        &mut self,
        f: impl FnOnce(&mut SnapshotReader) -> Result<Response, DbError>,
    ) -> Response {
        self.shared.stats.reads.fetch_add(1, Ordering::Relaxed);
        let reader = if let Some(pinned) = self.pinned.as_mut() {
            pinned
        } else {
            let published = published(&self.shared);
            let current = published.snapshot.generation();
            let session = match self.latest.take() {
                Some(r) if r.generation() == current => r,
                _ => published.snapshot.reader(),
            };
            self.latest.insert(session)
        };
        match f(reader) {
            Ok(resp) => resp,
            // Same kind mapping as the primary (strict-parse errors are
            // `Parse`, dependency refusals are `Refused`, ...): a client
            // must not be able to tell the roles apart by error kind.
            Err(e) => Response::Error(crate::server::wire_error(&e)),
        }
    }

    fn stats(&mut self) -> Response {
        Response::Stats(Box::new(stats_reply(&self.shared)))
    }
}

/// Builds the replica's stats reply — everything is an atomic or the
/// published snapshot, so no lock beyond the publication slot is taken.
fn stats_reply(shared: &ReplicaShared) -> StatsReply {
    let s = &shared.stats;
    let p = published(shared);
    StatsReply {
        accepted: s.accepted.load(Ordering::Relaxed),
        rejected_busy: s.rejected_busy.load(Ordering::Relaxed),
        requests: s.requests.load(Ordering::Relaxed),
        reads: s.reads.load(Ordering::Relaxed),
        idle_closes: s.idle_closes.load(Ordering::Relaxed),
        protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
        pinned_generations: s.pinned_generations.load(Ordering::Relaxed),
        replica_batches: s.replica_batches.load(Ordering::Relaxed),
        replica_records: s.replica_records.load(Ordering::Relaxed),
        replica_snapshots_loaded: s.replica_snapshots_loaded.load(Ordering::Relaxed),
        replica_reconnects: s.replica_reconnects.load(Ordering::Relaxed),
        lag_refusals: s.lag_refusals.load(Ordering::Relaxed),
        generation: p.snapshot.generation(),
        next_lsn: s.next_lsn.load(Ordering::Relaxed),
        ..StatsReply::default()
    }
}

fn read_only() -> Response {
    Response::Error(WireError {
        kind: ErrorKindWire::ReadOnly,
        message: "replica is read-only; send writes to the primary".into(),
    })
}

fn wire_verdict(v: winslett_core::explain::Verdict) -> crate::protocol::WireVerdict {
    use crate::protocol::WireVerdict;
    use winslett_core::explain::Verdict;
    match v {
        Verdict::Certain => WireVerdict::Certain,
        Verdict::Uncertain => WireVerdict::Uncertain,
        Verdict::Impossible => WireVerdict::Impossible,
        Verdict::Inconsistent => WireVerdict::Inconsistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientError};
    use crate::server::{Server, ServerOptions};
    use std::time::Instant;
    use winslett_core::{MemStorage, WalOptions};

    fn boot_primary() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let (server, _report) = Server::bind(
            ("127.0.0.1", 0),
            MemStorage::new(),
            DbOptions::default(),
            WalOptions::default(),
            ServerOptions {
                compaction: None,
                ..ServerOptions::default()
            },
        )
        .expect("bind primary");
        let addr = server.local_addr();
        let h = std::thread::spawn(move || {
            let _ = server.run();
        });
        (addr, h)
    }

    fn boot_replica(primary: std::net::SocketAddr) -> (Replica, ReplicaHandle) {
        let replica = Replica::bind(
            ("127.0.0.1", 0),
            primary,
            DbOptions::default(),
            ReplicaOptions {
                reconnect_backoff: Duration::from_millis(10),
                ..ReplicaOptions::default()
            },
        )
        .expect("bind replica");
        let handle = replica.handle();
        (replica, handle)
    }

    /// Retries `pin_at(min_lsn)` against the replica until it stops
    /// refusing with `LagBehind` or the deadline passes.
    fn pin_until_caught_up(
        client: &mut Client,
        min_lsn: u64,
        deadline: Duration,
    ) -> crate::protocol::SnapshotReply {
        let start = Instant::now();
        loop {
            match client.pin_at(min_lsn) {
                Ok(snap) => return snap,
                Err(ClientError::Server(e)) if e.kind == ErrorKindWire::LagBehind => {
                    assert!(
                        start.elapsed() < deadline,
                        "replica never caught up to lsn {min_lsn}: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(other) => panic!("pin_at failed: {other}"),
            }
        }
    }

    #[test]
    fn replica_tails_the_primary_and_serves_pinned_reads() {
        let (primary_addr, primary_thread) = boot_primary();
        let mut writer = Client::connect(primary_addr).expect("connect primary");
        writer.declare_relation("R", 1).expect("declare");
        let first = writer.execute("INSERT R(a) WHERE T").expect("first insert");

        let (replica, handle) = boot_replica(primary_addr);
        let replica_addr = replica.local_addr();
        let replica_thread = std::thread::spawn(move || {
            let _ = replica.run();
        });

        let mut reader = Client::connect(replica_addr).expect("connect replica");
        // Pinned-LSN consistency: once the pin succeeds, the verdict must
        // match the primary's history at that LSN.
        let snap = pin_until_caught_up(&mut reader, first.lsn, Duration::from_secs(5));
        assert!(snap.last_lsn >= first.lsn);
        let truth = reader.check("R(a)").expect("check on replica");
        assert!(truth.certain, "R(a) is certain at lsn {}", first.lsn);
        reader.unpin().expect("unpin");

        // A later write becomes visible after a later pin.
        let second = writer.execute("DELETE R(a) WHERE T").expect("second write");
        let _ = pin_until_caught_up(&mut reader, second.lsn, Duration::from_secs(5));
        let truth = reader.check("R(a)").expect("check after delete");
        assert!(!truth.possible, "R(a) is gone at lsn {}", second.lsn);
        reader.unpin().expect("unpin");

        // An LSN from the future refuses instead of blocking or lying.
        match reader.pin_at(second.lsn + 1000) {
            Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKindWire::LagBehind),
            other => panic!("expected LagBehind, got {other:?}"),
        }

        // Every write-shaped request is a typed ReadOnly refusal.
        match reader.execute("INSERT R(b) WHERE T") {
            Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKindWire::ReadOnly),
            other => panic!("expected ReadOnly, got {other:?}"),
        }
        match reader.checkpoint() {
            Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKindWire::ReadOnly),
            other => panic!("expected ReadOnly, got {other:?}"),
        }

        // Close the read connection so the replica's drain is immediate.
        drop(reader);
        handle.request_shutdown();
        replica_thread.join().expect("replica thread");
        writer.shutdown().expect("shutdown primary");
        primary_thread.join().expect("primary thread");
    }

    #[test]
    fn replica_assembles_a_chunked_catchup_bootstrap() {
        use crate::protocol::{CatchupChunkReply, CatchupReply};
        use winslett_core::wal::{Catchup, DurableDatabase};
        use winslett_core::{MemStorage, WalOptions};

        // Real checkpoint material to serve, prepared in-process.
        let (mut db, _) = DurableDatabase::open(
            MemStorage::new(),
            DbOptions::default(),
            WalOptions::default(),
        )
        .expect("open");
        db.declare_relation("R", 1).expect("declare");
        db.execute("INSERT R(a) WHERE T").expect("insert");
        db.checkpoint().expect("checkpoint");
        let next_lsn = db.next_lsn();
        let snap = match db.catchup_from(0).expect("catchup") {
            Catchup::Snapshot(snap, _) => *snap,
            Catchup::Suffix(_) => panic!("checkpoint must force the snapshot path"),
        };
        let pin_lsn = snap.lsn.saturating_sub(1);

        // A hand-rolled primary: one subscription, answered with the
        // snapshot split into deliberately tiny CatchupChunk parts — the
        // exact wire shape a >4 MiB bootstrap produces, without the 4 MiB.
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind fake primary");
        let primary_addr = listener.local_addr().expect("addr");
        let fake = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            match recv::<Request>(&mut s) {
                Ok(Request::Subscribe(0)) => {}
                other => panic!("expected Subscribe(0), got {other:?}"),
            }
            send(
                &mut s,
                &Response::Catchup(Box::new(CatchupReply {
                    snapshot: None,
                    next_lsn,
                    chunked: true,
                })),
            )
            .expect("announce");
            let json = serde_json::to_string(&snap).expect("encode");
            let bytes = json.as_bytes();
            let mut at = 0usize;
            while at < bytes.len() {
                let mut cut = (at + 64).min(bytes.len());
                while !json.is_char_boundary(cut) {
                    cut -= 1;
                }
                let part = json[at..cut].to_string();
                at = cut;
                send(
                    &mut s,
                    &Response::CatchupChunk(CatchupChunkReply {
                        part,
                        done: at == bytes.len(),
                    }),
                )
                .expect("chunk");
            }
            // Heartbeats until the replica hangs up.
            while send(
                &mut s,
                &Response::WalBatch(WalBatchReply {
                    entries: Vec::new(),
                }),
            )
            .is_ok()
            {
                std::thread::sleep(Duration::from_millis(25));
            }
        });

        let (replica, handle) = boot_replica(primary_addr);
        let replica_addr = replica.local_addr();
        let replica_thread = std::thread::spawn(move || {
            let _ = replica.run();
        });
        let mut reader = Client::connect(replica_addr).expect("connect replica");
        let _ = pin_until_caught_up(&mut reader, pin_lsn, Duration::from_secs(5));
        let truth = reader.check("R(a)").expect("check");
        assert!(truth.certain, "R(a) folded into the chunked snapshot");
        reader.unpin().expect("unpin");
        let stats = reader.stats().expect("stats");
        assert_eq!(stats.replica_snapshots_loaded, 1, "snapshot path taken");

        drop(reader);
        handle.request_shutdown();
        replica_thread.join().expect("replica thread");
        fake.join().expect("fake primary thread");
    }

    #[test]
    fn replica_bootstraps_from_a_checkpoint_snapshot() {
        let (primary_addr, primary_thread) = boot_primary();
        let mut writer = Client::connect(primary_addr).expect("connect primary");
        writer.declare_relation("S", 1).expect("declare");
        writer.execute("INSERT S(x) WHERE T").expect("insert");
        // Checkpoint folds everything into the snapshot; a fresh replica
        // subscribing from 0 now predates the checkpoint and must take
        // the snapshot-plus-suffix path.
        writer.checkpoint().expect("checkpoint");
        let last = writer.execute("INSERT S(y) WHERE T").expect("suffix write");

        let (replica, handle) = boot_replica(primary_addr);
        let replica_addr = replica.local_addr();
        let replica_thread = std::thread::spawn(move || {
            let _ = replica.run();
        });
        let mut reader = Client::connect(replica_addr).expect("connect replica");
        let _ = pin_until_caught_up(&mut reader, last.lsn, Duration::from_secs(5));
        for probe in ["S(x)", "S(y)"] {
            let truth = reader.check(probe).expect("check");
            assert!(truth.certain, "{probe} must be certain after bootstrap");
        }
        reader.unpin().expect("unpin");
        let stats = reader.stats().expect("stats");
        assert_eq!(stats.replica_snapshots_loaded, 1, "snapshot path taken");
        assert!(stats.replica_records >= 1, "suffix replayed");

        drop(reader);
        handle.request_shutdown();
        replica_thread.join().expect("replica thread");
        writer.shutdown().expect("shutdown primary");
        primary_thread.join().expect("primary thread");
    }
}
