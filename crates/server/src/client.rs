//! A blocking client for the `winslett-serve` protocol.

use crate::protocol::{
    recv, send, CheckpointReply, ExecReply, ExplainReply, FrameError, QueryReply, Request,
    Response, SnapshotReply, StatsReply, TruthReply, TxnReply, WireError,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What a client call can fail with.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// Transport-level failure (connect, frame, decode).
    Frame(FrameError),
    /// The server answered with a typed error.
    Server(WireError),
    /// The server answered, but not with the response kind the call
    /// expected (a protocol bug, not a user error).
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One connection to a server; requests run strictly in order.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects (with Nagle disabled — requests are small and latency
    /// matters more than throughput here).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| FrameError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Connects with a bounded dial, then installs `read` as the
    /// socket-level response deadline (`SO_RCVTIMEO`; `None` blocks
    /// forever). A response that misses the deadline surfaces as the
    /// typed [`FrameError::TimedOut`] instead of hanging the caller —
    /// this is how the replica's tailer notices a dead primary.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        connect: Duration,
        read: Option<Duration>,
    ) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| FrameError::Io(e.to_string()))?
            .next()
            .ok_or_else(|| FrameError::Io("address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&addr, connect)
            .map_err(|e| FrameError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(read)
            .map_err(|e| FrameError::Io(e.to_string()))?;
        Ok(Client { stream })
    }

    /// Surrenders the underlying stream — for protocol flows that leave
    /// request/response framing (the replica's subscription stream).
    pub fn into_stream(self) -> TcpStream {
        self.stream
    }

    /// Borrows the underlying stream, e.g. to tune socket options the
    /// typed API does not cover.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Sets the read timeout for responses (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| FrameError::Io(e.to_string()).into())
    }

    /// Sends one request, reads one response. The typed-error response is
    /// passed through — use the convenience wrappers to turn it into
    /// `Err`.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        send(&mut self.stream, request)?;
        Ok(recv(&mut self.stream)?)
    }

    fn expect<T>(
        &mut self,
        request: Request,
        pick: impl FnOnce(Response) -> Result<T, Response>,
    ) -> Result<T, ClientError> {
        match self.request(&request)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            other => pick(other).map_err(|r| ClientError::Unexpected(format!("{r:?}"))),
        }
    }

    /// Executes one LDML / schema / load statement on the writer.
    pub fn execute(&mut self, src: &str) -> Result<ExecReply, ClientError> {
        self.expect(Request::Execute(src.to_string()), |r| match r {
            Response::Executed(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Declares an untyped relation.
    pub fn declare_relation(&mut self, name: &str, arity: u64) -> Result<ExecReply, ClientError> {
        self.expect(
            Request::DeclareRelation(name.to_string(), arity),
            |r| match r {
                Response::Executed(x) => Ok(x),
                other => Err(other),
            },
        )
    }

    /// Declares a unary attribute predicate.
    pub fn declare_attribute(&mut self, name: &str) -> Result<ExecReply, ClientError> {
        self.expect(Request::DeclareAttribute(name.to_string()), |r| match r {
            Response::Executed(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Loads a ground fact as certainly true.
    pub fn load_fact(&mut self, pred: &str, args: &[&str]) -> Result<ExecReply, ClientError> {
        let args = args.iter().map(|s| s.to_string()).collect();
        self.expect(Request::LoadFact(pred.to_string(), args), |r| match r {
            Response::Executed(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Loads an arbitrary ground wff into the initial state.
    pub fn load_wff(&mut self, src: &str) -> Result<ExecReply, ClientError> {
        self.expect(Request::LoadWff(src.to_string()), |r| match r {
            Response::Executed(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Runs a conjunctive query.
    pub fn query(&mut self, src: &str) -> Result<QueryReply, ClientError> {
        self.expect(Request::Query(src.to_string()), |r| match r {
            Response::Rows(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Entailment check: `(possible, certain)` plus the generation read.
    pub fn check(&mut self, src: &str) -> Result<TruthReply, ClientError> {
        self.expect(Request::Check(src.to_string()), |r| match r {
            Response::Truth(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Three-valued EXPLAIN.
    pub fn explain(&mut self, src: &str) -> Result<ExplainReply, ClientError> {
        self.expect(Request::Explain(src.to_string()), |r| match r {
            Response::Explained(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Pins the connection's reads to the current snapshot.
    pub fn pin(&mut self) -> Result<SnapshotReply, ClientError> {
        self.expect(Request::Pin, |r| match r {
            Response::Pinned(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Pins only if the server's snapshot has acknowledged `min_lsn`;
    /// otherwise the call fails with a typed `LagBehind` server error.
    /// Against a replica this is the pinned-LSN consistency primitive:
    /// retry (or fall back to the primary) until the replica catches up.
    pub fn pin_at(&mut self, min_lsn: u64) -> Result<SnapshotReply, ClientError> {
        self.expect(Request::PinAt(min_lsn), |r| match r {
            Response::Pinned(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Releases the pinned snapshot.
    pub fn unpin(&mut self) -> Result<(), ClientError> {
        self.expect(Request::Unpin, |r| match r {
            Response::Unpinned => Ok(()),
            other => Err(other),
        })
    }

    /// Server + WAL counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        self.expect(Request::Stats, |r| match r {
            Response::Stats(x) => Ok(*x),
            other => Err(other),
        })
    }

    /// Opens a multi-statement transaction on this connection. Until
    /// [`Client::commit`] or [`Client::rollback`], every write-shaped
    /// request on this connection joins the transaction: effects are
    /// visible to the transaction's own statements (read-your-writes on
    /// the server side) but to no other connection, and the whole group
    /// lands atomically at commit.
    pub fn begin(&mut self) -> Result<TxnReply, ClientError> {
        self.expect(Request::Begin, |r| match r {
            Response::TxnBegun(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Commits the connection's open transaction; the reply carries the
    /// commit LSN and the number of statements applied.
    pub fn commit(&mut self) -> Result<TxnReply, ClientError> {
        self.expect(Request::Commit, |r| match r {
            Response::TxnCommitted(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Rolls back the connection's open transaction, discarding every
    /// statement since [`Client::begin`].
    pub fn rollback(&mut self) -> Result<TxnReply, ClientError> {
        self.expect(Request::Rollback, |r| match r {
            Response::TxnRolledBack(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Forces a WAL checkpoint.
    pub fn checkpoint(&mut self) -> Result<CheckpointReply, ClientError> {
        self.expect(Request::Checkpoint, |r| match r {
            Response::Checkpointed(x) => Ok(x),
            other => Err(other),
        })
    }

    /// Requests graceful shutdown (the server drains, flushes, exits).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect(Request::Shutdown, |r| match r {
            Response::ShuttingDown => Ok(()),
            other => Err(other),
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect(Request::Ping, |r| match r {
            Response::Pong => Ok(()),
            other => Err(other),
        })
    }
}
