//! The `winslett-serve` binary: serve a durable LDML database over TCP,
//! talk to one from a line-oriented REPL, or run the CI smoke script.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use winslett_core::{DbOptions, DirStorage, MemStorage, SyncPolicy, WalOptions};
use winslett_serve::{Client, CompactionPolicy, Server, ServerOptions};

const USAGE: &str = "\
winslett-serve — a concurrent LDML database server

USAGE:
  winslett-serve serve --dir PATH [--addr HOST:PORT] [--idle-secs N]
                       [--max-conns N] [--group-commit N] [--no-batch]
                       [--compact | --no-compact] [--threaded]
                       [--lock-timeout-ms N]
  winslett-serve serve --replica-of HOST:PORT [--addr HOST:PORT]
                       [--idle-secs N] [--max-conns N]
  winslett-serve repl  --addr HOST:PORT
  winslett-serve smoke

serve   Serve a durable database from PATH (created if missing).
        Default --addr 127.0.0.1:7171. SIGTERM/SIGINT and the protocol
        Shutdown request both drain connections and flush the WAL.
        --no-batch disables the conflict-aware write batcher (queued
        pairwise-independent writes coalesced into one fsync and one
        snapshot publication).
        --no-compact disables the background compactor (on by default /
        --compact): a thread that snapshots the theory, runs full
        simplification off the writer lock, and atomically swaps the
        compacted theory back in, replaying the writes that raced it.
        --threaded serves with the classic blocking
        thread-per-connection loop instead of the default nonblocking
        epoll reactor (kept as the benchmarking baseline).
        --lock-timeout-ms bounds how long a transaction statement waits
        for a contended footprint lock before the transaction is rolled
        back with a typed TxnTimeout (default 2000; doubles as the
        deadlock-avoidance bound).
        With --replica-of, serve a read-only WAL-shipping replica of the
        primary at HOST:PORT instead: the database is rebuilt in memory
        from the primary's checkpoint and WAL stream, reads (query /
        check / explain / pin) are served locally, PinAt gives
        pinned-LSN consistency, and every write is a typed ReadOnly
        refusal. --dir is not used in replica mode.
repl    Interactive client. Lines are LDML statements; prefixed
        commands: query / check / explain / pin / unpin / begin /
        commit / rollback / stats / checkpoint / shutdown / quit.
smoke   In-process end-to-end session against an ephemeral-port server
        (the `make serve-smoke` gate). Exits non-zero on any mismatch.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("repl") => cmd_repl(&args[1..]),
        Some("smoke") => cmd_smoke(),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("winslett-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match flag_value(args, name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value for {name}: {raw}")),
    }
}

// ----- serve ----------------------------------------------------------------

/// Set by the signal handler; a watcher thread turns it into a graceful
/// shutdown request.
static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // `std` already links the platform libc; declaring `signal` directly
    // avoids a vendored libc crate for two constants.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7171");
    let idle_secs: u64 = parsed_flag(args, "--idle-secs")?.unwrap_or(30);
    let max_conns: usize = parsed_flag(args, "--max-conns")?.unwrap_or(64);
    if let Some(primary) = flag_value(args, "--replica-of") {
        return cmd_replica(primary, addr, idle_secs, max_conns);
    }
    let dir = flag_value(args, "--dir").ok_or("serve requires --dir PATH (or --replica-of)")?;
    let group_commit: usize = parsed_flag(args, "--group-commit")?.unwrap_or(1);

    let storage = DirStorage::new(dir).map_err(|e| e.to_string())?;
    let wal_options = WalOptions {
        policy: if group_commit <= 1 {
            SyncPolicy::EveryRecord
        } else {
            SyncPolicy::GroupCommit(group_commit)
        },
        ..WalOptions::default()
    };
    // `--compact` is the (default) explicit opt-in, `--no-compact`
    // disables the background compactor thread.
    let compaction = if args.iter().any(|a| a == "--no-compact") {
        None
    } else {
        Some(CompactionPolicy::default())
    };
    let lock_timeout_ms: u64 = parsed_flag(args, "--lock-timeout-ms")?.unwrap_or(2000);
    let server_options = ServerOptions {
        max_connections: max_conns,
        idle_timeout: Duration::from_secs(idle_secs.max(1)),
        batch_writes: !args.iter().any(|a| a == "--no-batch"),
        compaction,
        threaded: args.iter().any(|a| a == "--threaded"),
        lock_timeout: Duration::from_millis(lock_timeout_ms.max(1)),
    };
    let (server, report) = Server::bind(
        addr,
        storage,
        DbOptions::default(),
        wal_options,
        server_options,
    )
    .map_err(|e| e.to_string())?;
    if report.records_seen > 0 || report.snapshot_lsn > 0 {
        eprintln!(
            "recovered: snapshot lsn {}, {} wal records ({} replayed, {} nodes reclaimed by the post-replay simplify)",
            report.snapshot_lsn,
            report.records_seen,
            report.replayed,
            report.nodes_reclaimed()
        );
    }
    eprintln!("serving on {}", server.local_addr());

    install_signal_handlers();
    let handle = server.handle();
    std::thread::spawn(move || loop {
        if SIGNALED.load(Ordering::SeqCst) {
            eprintln!("signal received: draining");
            handle.request_shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    server.run().map(|_storage| ()).map_err(|e| e.to_string())?;
    eprintln!("shut down cleanly; WAL flushed");
    Ok(())
}

/// `serve --replica-of`: a read-only WAL-shipping follower. The database
/// lives in memory, rebuilt from the primary's catch-up material and
/// shipped batches; the tailer reconnects through primary restarts.
fn cmd_replica(primary: &str, addr: &str, idle_secs: u64, max_conns: usize) -> Result<(), String> {
    use std::net::ToSocketAddrs;
    let primary_addr = primary
        .to_socket_addrs()
        .map_err(|e| format!("bad --replica-of address {primary}: {e}"))?
        .next()
        .ok_or_else(|| format!("--replica-of {primary} resolved to no address"))?;
    let replica = winslett_serve::Replica::bind(
        addr,
        primary_addr,
        DbOptions::default(),
        winslett_serve::ReplicaOptions {
            max_connections: max_conns,
            idle_timeout: Duration::from_secs(idle_secs.max(1)),
            ..winslett_serve::ReplicaOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "replica of {primary_addr}: serving reads on {}",
        replica.local_addr()
    );

    install_signal_handlers();
    let handle = replica.handle();
    std::thread::spawn(move || loop {
        if SIGNALED.load(Ordering::SeqCst) {
            eprintln!("signal received: draining");
            handle.request_shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    replica.run().map_err(|e| e.to_string())?;
    eprintln!("replica shut down cleanly");
    Ok(())
}

// ----- repl -----------------------------------------------------------------

fn cmd_repl(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").ok_or("repl requires --addr HOST:PORT")?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    eprintln!("connected to {addr}; `quit` to leave, `help` for commands");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        use std::io::BufRead;
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            return Ok(()); // EOF
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        let (cmd, rest) = match input.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (input, ""),
        };
        let outcome = match (cmd.to_ascii_lowercase().as_str(), rest) {
            ("quit" | "exit", _) => return Ok(()),
            ("help", _) => {
                eprintln!(
                    "  <LDML statement>      journaled update\n  \
                     query <pattern>       certain/possible rows\n  \
                     check <wff>           entailment check\n  \
                     explain <wff>         verdict + witness worlds\n  \
                     pin | unpin           snapshot isolation\n  \
                     begin | commit | rollback  multi-statement transaction\n  \
                     stats | checkpoint | shutdown | quit"
                );
                continue;
            }
            ("query", src) => client.query(src).map(|r| {
                format!(
                    "certain: {:?}\npossible: {:?}  (gen {})",
                    r.certain, r.possible, r.generation
                )
            }),
            ("check", src) => client.check(src).map(|r| {
                format!(
                    "possible: {}, certain: {}  (gen {})",
                    r.possible, r.certain, r.generation
                )
            }),
            ("explain", src) => client.explain(src).map(|r| {
                let mut out = format!("{:?}  (gen {})", r.verdict, r.generation);
                if let Some(w) = r.witness {
                    out.push_str(&format!("\n  witness: {{{}}}", w.join(", ")));
                }
                if let Some(c) = r.counterexample {
                    out.push_str(&format!("\n  counterexample: {{{}}}", c.join(", ")));
                }
                out
            }),
            ("pin", _) => client.pin().map(|s| {
                format!(
                    "pinned generation {} ({} updates, last lsn {})",
                    s.generation, s.updates_applied, s.last_lsn
                )
            }),
            ("unpin", _) => client.unpin().map(|()| "unpinned".to_string()),
            ("begin", _) => client
                .begin()
                .map(|t| format!("transaction {} open", t.txn)),
            ("commit", _) => client.commit().map(|t| {
                format!(
                    "transaction {} committed: {} statements, lsn {}",
                    t.txn, t.statements, t.lsn
                )
            }),
            ("rollback", _) => client
                .rollback()
                .map(|t| format!("transaction {} rolled back", t.txn)),
            ("stats", _) => client.stats().map(|s| format!("{s:#?}")),
            ("checkpoint", _) => client
                .checkpoint()
                .map(|c| format!("checkpointed through lsn {}", c.lsn)),
            ("shutdown", _) => {
                let r = client.shutdown().map(|()| "server draining".to_string());
                print_outcome(r);
                return Ok(());
            }
            ("declare", spec) => match spec.rsplit_once('/') {
                Some((name, arity)) => match arity.parse::<u64>() {
                    Ok(a) => client
                        .declare_relation(name.trim(), a)
                        .map(|x| format!("declared (lsn {})", x.lsn)),
                    Err(_) => Err(winslett_serve::ClientError::Unexpected(format!(
                        "bad arity in `{spec}` (want name/arity)"
                    ))),
                },
                None => Err(winslett_serve::ClientError::Unexpected(format!(
                    "bad declare `{spec}` (want name/arity)"
                ))),
            },
            _ => client.execute(input).map(|x| {
                format!(
                    "ok: lsn {}, generation {}, {} nodes added",
                    x.lsn, x.generation, x.nodes_added
                )
            }),
        };
        print_outcome(outcome);
    }
}

fn print_outcome(outcome: Result<String, winslett_serve::ClientError>) {
    match outcome {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("error: {e}"),
    }
}

// ----- smoke ----------------------------------------------------------------

/// The `make serve-smoke` gate: an in-process server on an ephemeral
/// port, one scripted session exercising every request kind, exact
/// assertions on the replies.
fn cmd_smoke() -> Result<(), String> {
    let (server, _report) = Server::bind(
        ("127.0.0.1", 0),
        MemStorage::new(),
        DbOptions::default(),
        WalOptions {
            policy: SyncPolicy::GroupCommit(8),
            ..WalOptions::default()
        },
        ServerOptions {
            max_connections: 8,
            idle_timeout: Duration::from_secs(10),
            ..ServerOptions::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());

    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    c.ping().map_err(|e| format!("ping: {e}"))?;

    // Schema + facts + a branching update through the journaled writer.
    c.declare_relation("Orders", 3)
        .map_err(|e| format!("declare: {e}"))?;
    c.declare_relation("InStock", 2)
        .map_err(|e| format!("declare: {e}"))?;
    c.load_fact("Orders", &["700", "32", "9"])
        .map_err(|e| format!("load: {e}"))?;
    c.load_fact("InStock", &["32", "1"])
        .map_err(|e| format!("load: {e}"))?;
    let exec = c
        .execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
        .map_err(|e| format!("insert: {e}"))?;
    expect(exec.lsn == 4, "disjunctive insert should be lsn 4")?;

    // Pin a snapshot, then change the world under it.
    let pinned = c.pin().map_err(|e| format!("pin: {e}"))?;
    expect(pinned.updates_applied == 5, "5 acknowledged writes")?;
    let mut writer = Client::connect(addr).map_err(|e| format!("connect2: {e}"))?;
    writer
        .execute("ASSERT Orders(100,32,7) & !Orders(100,32,1)")
        .map_err(|e| format!("assert: {e}"))?;

    // The pinned connection still sees the pre-ASSERT uncertainty...
    let t = c
        .check("Orders(100,32,1)")
        .map_err(|e| format!("check: {e}"))?;
    expect(
        t.possible && !t.certain && t.generation == pinned.generation,
        "pinned read must see the branching state at its generation",
    )?;
    let rows = c
        .query("Orders(?o, 32, ?q)")
        .map_err(|e| format!("query: {e}"))?;
    expect(
        rows.certain.len() == 1 && rows.possible.len() == 3,
        "pinned query: 1 certain, 3 possible rows",
    )?;

    // ...while an unpinned connection sees the ASSERT's pruning.
    let now = writer
        .check("Orders(100,32,7)")
        .map_err(|e| format!("check2: {e}"))?;
    expect(
        now.certain && now.generation > pinned.generation,
        "latest read must see the ASSERT",
    )?;
    let ex = writer
        .explain("Orders(100,32,1)")
        .map_err(|e| format!("explain: {e}"))?;
    expect(
        ex.verdict == winslett_serve::WireVerdict::Impossible,
        "ASSERT made Orders(100,32,1) impossible",
    )?;

    c.unpin().map_err(|e| format!("unpin: {e}"))?;
    let after = c
        .check("Orders(100,32,7)")
        .map_err(|e| format!("check3: {e}"))?;
    expect(after.certain, "after unpin the read follows the latest")?;

    let stats = c.stats().map_err(|e| format!("stats: {e}"))?;
    expect(stats.updates == 6, "6 acknowledged writes in stats")?;
    expect(stats.accepted == 2, "two connections accepted")?;

    let ckpt = c.checkpoint().map_err(|e| format!("checkpoint: {e}"))?;
    expect(ckpt.lsn == 6, "checkpoint current through lsn 6")?;

    // A multi-statement transaction: invisible until commit, atomic and
    // durable after.
    let txn = c.begin().map_err(|e| format!("begin: {e}"))?;
    c.execute("INSERT InStock(700,9) WHERE T")
        .map_err(|e| format!("txn insert: {e}"))?;
    let peek = writer
        .check("InStock(700,9)")
        .map_err(|e| format!("txn peek: {e}"))?;
    expect(
        !peek.possible,
        "uncommitted transaction effects must be invisible to other connections",
    )?;
    let committed = c.commit().map_err(|e| format!("commit: {e}"))?;
    expect(
        committed.txn == txn.txn && committed.statements == 1,
        "commit acknowledges the one-statement transaction",
    )?;
    let seen = writer
        .check("InStock(700,9)")
        .map_err(|e| format!("post-commit check: {e}"))?;
    expect(seen.certain, "committed transaction effects are visible")?;

    c.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    let storage = running
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("run: {e}"))?;

    // The group-commit buffer was flushed on shutdown: a reopen sees the
    // full state.
    let (db, _) =
        winslett_core::DurableDatabase::open(storage, DbOptions::default(), WalOptions::default())
            .map_err(|e| format!("reopen: {e}"))?;
    let mut db = db;
    let certain = db
        .db_mut()
        .is_certain("Orders(100,32,7)")
        .map_err(|e| format!("reopen check: {e}"))?;
    expect(certain, "reopened database remembers the ASSERT")?;
    let txn_fact = db
        .db_mut()
        .is_certain("InStock(700,9)")
        .map_err(|e| format!("reopen txn check: {e}"))?;
    expect(
        txn_fact,
        "reopened database remembers the committed transaction",
    )?;

    println!("serve-smoke: ok");
    Ok(())
}

fn expect(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("smoke assertion failed: {what}"))
    }
}
