//! GUA — the Ground Update Algorithm (§3.3, extended per §3.5).
//!
//! For `INSERT ω WHERE φ` against an extended relational theory `T`:
//!
//! 1. **Add to completion axioms** — every atom of `ω` or `φ` not yet in
//!    `T` is registered and `¬f` is added to the non-axiomatic section
//!    (Lemma 1: this does not change the models).
//!    *Step 2′* (theories with type axioms): likewise register the
//!    attribute atoms `A(c)` for every constant appearing in an atom of
//!    `ω` whose relation is typed, adding `¬A(c)`.
//! 2. **Rename** — each distinct atom `f` of `ω` is renamed throughout the
//!    non-axiomatic section to a brand-new predicate constant `p_f`. With
//!    the slot-indirected store this costs O(1) per atom.
//! 3. **Define the update** — add `(φ)σ_p → ω`.
//! 4. **Restrict the update** — add `¬(φ)σ_p → (f ↔ p_f)` for every `f` of
//!    `ω`; following §3.6 these are fused into one implication
//!    `¬(φ)σ_p → ⋀_f (f ↔ p_f)`.
//! 5. **Instantiate the type axioms** for tuples whose attribute membership
//!    the update may violate.
//! 6. **Instantiate the dependency axioms** for instances that unify with
//!    an updated atom (in body — or head, for deletions that can invalidate
//!    old instances).
//! 7. **Add to completion axioms** for atoms first introduced by Steps 5–6.
//!
//! The `winslett-worlds` diagram checker verifies Theorem 1/5 (the
//! alternative worlds of the output equal those produced by updating every
//! world individually) over randomized theories in the test suite.

use crate::error::GuaError;
use crate::simplify::{simplify, SimplifyLevel, SimplifyReport};
use rustc_hash::{FxHashMap, FxHashSet};
use winslett_ldml::{parse_update, Update};
use winslett_logic::{AtomId, GroundAtom, ParseContext, Wff};
use winslett_theory::{Theory, TheoryError};

/// Options controlling a [`GuaEngine`].
#[derive(Clone, Copy, Debug)]
pub struct GuaOptions {
    /// Simplification applied after updates (§4: "a heuristic algorithm
    /// for simplification will be a vital part of any implementation").
    pub simplify: SimplifyLevel,
    /// Growth factor that triggers a simplification pass. A full pass
    /// costs O(store), so running it after *every* update would make
    /// updates O(store) instead of the §3.6 O(g·log R); instead — GC-style
    /// — the engine simplifies only once the store has grown past
    /// `threshold ×` its size after the previous pass, keeping the
    /// amortized cost per update O(g). `1.0` restores simplify-always;
    /// the default is `1.5`.
    pub simplify_threshold: f64,
}

impl Default for GuaOptions {
    fn default() -> Self {
        GuaOptions {
            simplify: SimplifyLevel::Fast,
            simplify_threshold: 1.5,
        }
    }
}

impl GuaOptions {
    /// Options with a given level and the default trigger threshold.
    pub fn with_level(simplify: SimplifyLevel) -> Self {
        GuaOptions {
            simplify,
            ..GuaOptions::default()
        }
    }

    /// Options that simplify after every update (the pre-threshold
    /// behaviour; used by tests that need deterministic per-update passes).
    pub fn simplify_always(simplify: SimplifyLevel) -> Self {
        GuaOptions {
            simplify,
            simplify_threshold: 1.0,
        }
    }
}

/// Per-update cost accounting in the currency of the §3.6 analysis.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// The paper's `g`: atom occurrences in the update.
    pub g: usize,
    /// Atoms newly added to completion axioms (Steps 1, 2′, 7).
    pub completion_added: usize,
    /// Distinct atoms renamed to predicate constants (Step 2).
    pub renamed: usize,
    /// Formula occurrences affected by renaming (for the O(1)-rename claim,
    /// this number may be large while the work is constant per atom).
    pub rename_occurrences: usize,
    /// Type-axiom instances added (Step 5).
    pub type_instances: usize,
    /// Dependency instances added (Step 6).
    pub dep_instances: usize,
    /// Net growth of the store in AST nodes (the O(g) claim, E4).
    pub nodes_added: isize,
    /// Whether the update could branch (ω satisfiable more than one way).
    pub branching: bool,
}

impl std::fmt::Display for UpdateReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "g = {}, renamed {} atom(s) ({} occurrence(s)), {} completion addition(s), \
             {} type + {} dependency instance(s), {} node(s) net growth{}",
            self.g,
            self.renamed,
            self.rename_occurrences,
            self.completion_added,
            self.type_instances,
            self.dep_instances,
            self.nodes_added,
            if self.branching { ", branching" } else { "" }
        )
    }
}

/// A stateful update processor owning an extended relational theory.
///
/// ```
/// use winslett_gua::GuaEngine;
/// use winslett_logic::{ModelLimit, Wff};
/// use winslett_theory::Theory;
///
/// // The §3.3 running example: atoms a, b with section {a, a ∨ b}.
/// let mut t = Theory::new();
/// let r = t.declare_relation("Tup", 1)?;
/// let (ca, cb) = (t.constant("a"), t.constant("b"));
/// let (a, b) = (t.atom(r, &[ca]), t.atom(r, &[cb]));
/// t.assert_wff(&Wff::Atom(a));
/// t.assert_wff(&Wff::or2(Wff::Atom(a), Wff::Atom(b)));
///
/// let mut engine = GuaEngine::with_defaults(t);
/// engine.execute("MODIFY Tup(a) TO BE Tup(a') WHERE Tup(b)")?;
/// let worlds = engine.theory.alternative_worlds(ModelLimit::default())?;
/// assert_eq!(worlds.len(), 2); // {a} and {b, a'}
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct GuaEngine {
    /// The theory being maintained.
    pub theory: Theory,
    options: GuaOptions,
    /// Axiom instances already materialized (Step 5's "if it is not
    /// already present").
    instantiated: FxHashSet<Wff>,
    /// When tracing is on, a human-readable narration of each GUA step.
    trace: Option<Vec<String>>,
    /// Store size (nodes) right after the last simplification pass — the
    /// baseline for the growth-threshold trigger.
    last_simplified_nodes: usize,
}

impl GuaEngine {
    /// Wraps a theory with the given options.
    pub fn new(theory: Theory, options: GuaOptions) -> Self {
        let last_simplified_nodes = theory.store.size_nodes();
        GuaEngine {
            theory,
            options,
            instantiated: FxHashSet::default(),
            trace: None,
            last_simplified_nodes,
        }
    }

    /// Enables or disables step-by-step transcripts of GUA's work (the
    /// narration used by `examples/paper_walkthrough.rs` and handy when
    /// debugging an update that didn't do what you expected).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the transcript accumulated since tracing was enabled or last
    /// taken.
    pub fn take_trace(&mut self) -> Vec<String> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    fn note(&mut self, f: impl FnOnce(&Theory) -> String) {
        if self.trace.is_some() {
            let msg = f(&self.theory);
            if let Some(t) = &mut self.trace {
                t.push(msg);
            }
        }
    }

    /// Wraps a theory with default options.
    pub fn with_defaults(theory: Theory) -> Self {
        Self::new(theory, GuaOptions::default())
    }

    /// The options in force.
    pub fn options(&self) -> GuaOptions {
        self.options
    }

    /// Parses an LDML statement against the theory's vocabulary (strict:
    /// unknown predicates are errors, predicate constants rejected;
    /// constants may be new — inserting fresh tuples is the point).
    pub fn parse(&mut self, src: &str) -> Result<Update, GuaError> {
        let mut ctx = ParseContext {
            vocab: &mut self.theory.vocab,
            atoms: &mut self.theory.atoms,
            declare: false,
            allow_predicate_constants: false,
        };
        // Strict mode rejects unknown constants too; new constants are
        // legitimate in updates (new order numbers, quantities, …), so we
        // pre-intern them by reparsing permissively on failure would be
        // wrong for predicates. Instead: strict on predicates, permissive
        // on constants.
        ctx.declare = false;
        match parse_update(src, &mut ctx) {
            Ok(u) => Ok(u),
            Err(winslett_ldml::LdmlError::Logic(winslett_logic::LogicError::UnknownSymbol {
                kind: "constant",
                ..
            })) => {
                // Re-parse allowing new constants but still checking that
                // predicates exist (manually validated below).
                let mut ctx = ParseContext {
                    vocab: &mut self.theory.vocab,
                    atoms: &mut self.theory.atoms,
                    declare: true,
                    allow_predicate_constants: false,
                };
                let before_preds = ctx.vocab.num_predicates();
                let u = parse_update(src, &mut ctx).map_err(GuaError::from)?;
                if self.theory.vocab.num_predicates() != before_preds {
                    return Err(GuaError::Theory(TheoryError::UnknownPredicate {
                        name: "<declared on the fly>".into(),
                    }));
                }
                Ok(u)
            }
            Err(e) => Err(GuaError::from(e)),
        }
    }

    /// Parses and applies an LDML statement.
    pub fn execute(&mut self, src: &str) -> Result<UpdateReport, GuaError> {
        let u = self.parse(src)?;
        self.apply(&u)
    }

    /// Applies a ground update via GUA Steps 1–7, then simplifies per the
    /// engine options.
    pub fn apply(&mut self, update: &Update) -> Result<UpdateReport, GuaError> {
        self.apply_simultaneous(std::slice::from_ref(update))
    }

    /// Applies a **set** of ground updates *simultaneously* — the reduction
    /// target for updates with variables (§4). With a single update this is
    /// exactly GUA Steps 1–7; with several, the steps generalize:
    ///
    /// * Step 2 renames every atom appearing in **any** ωᵢ once;
    /// * Step 3 adds `(φᵢ)σ → ωᵢ` for each update;
    /// * Step 4's frame formula per atom `f` allows `f` to change exactly
    ///   when some update whose ω mentions `f` fired:
    ///   `¬(⋁_{i: f∈ωᵢ} (φᵢ)σ) → (f ↔ p_f)` — atoms sharing an owner set
    ///   are fused into one implication (the §3.6 optimization).
    ///
    /// An empty slice is a no-op.
    pub fn apply_simultaneous(&mut self, updates: &[Update]) -> Result<UpdateReport, GuaError> {
        let nodes_before = self.theory.store.size_nodes() as isize;
        let mut report = UpdateReport::default();
        if updates.is_empty() {
            return Ok(report);
        }
        let mut forms = Vec::with_capacity(updates.len());
        for u in updates {
            u.validate(&self.theory.vocab, &self.theory.atoms)?;
            report.g += u.num_atom_occurrences();
            let form = u.to_insert();
            report.branching |= form.may_branch_bounded(10);
            forms.push(form);
        }

        // Which updates' ω mention each atom (the atom's "owners").
        let mut owners: FxHashMap<AtomId, Vec<usize>> = FxHashMap::default();
        for (i, form) in forms.iter().enumerate() {
            for a in form.omega.atom_set() {
                owners.entry(a).or_default().push(i);
            }
        }
        let mut omega_atoms: Vec<AtomId> = owners.keys().copied().collect();
        omega_atoms.sort_unstable();
        let mut all_atoms: Vec<AtomId> = omega_atoms.clone();
        for form in &forms {
            all_atoms.extend(form.phi.atom_set());
        }
        all_atoms.sort_unstable();
        all_atoms.dedup();

        // ---- Step 1: add to completion axioms --------------------------
        for &f in &all_atoms {
            if !self.theory.registry.is_registered(f) {
                self.theory.register_atom(f);
                self.theory.store.try_insert(&Wff::Atom(f).not())?;
                report.completion_added += 1;
                self.note(|t| {
                    format!(
                        "Step 1: registered {} in its completion axiom; added ¬{} to the section",
                        t.atoms.resolve(f).display(&t.vocab),
                        t.atoms.resolve(f).display(&t.vocab)
                    )
                });
            }
        }

        // ---- Step 2′: attribute completion for typed relations ---------
        if self.theory.schema.has_type_axioms() {
            for &f in &omega_atoms {
                let ga = self.theory.atoms.resolve(f).clone();
                let Some(attrs) = self.theory.schema.type_axiom(ga.pred) else {
                    continue;
                };
                let attrs = attrs.to_vec();
                for (&attr, &c) in attrs.iter().zip(ga.args.iter()) {
                    let aa = self.theory.atoms.intern(GroundAtom::new(attr, &[c]));
                    if !self.theory.registry.is_registered(aa) {
                        self.theory.register_atom(aa);
                        self.theory.store.try_insert(&Wff::Atom(aa).not())?;
                        report.completion_added += 1;
                    }
                }
            }
        }

        // ---- Step 2: rename ---------------------------------------------
        let mut sigma: FxHashMap<AtomId, AtomId> = FxHashMap::default();
        for &f in &omega_atoms {
            let display = self
                .theory
                .atoms
                .resolve(f)
                .display(&self.theory.vocab)
                .to_string();
            let pc = self.theory.vocab.fresh_predicate_constant_for(&display);
            let pa = self.theory.atoms.intern(GroundAtom::nullary(pc));
            let occurrences = self.theory.store.rename_atom(f, pa);
            report.rename_occurrences += occurrences;
            sigma.insert(f, pa);
            report.renamed += 1;
            self.note(|t| {
                format!(
                    "Step 2: renamed {} to fresh predicate constant {} ({} occurrence(s), O(1))",
                    t.atoms.resolve(f).display(&t.vocab),
                    t.atoms.resolve(pa).display(&t.vocab),
                    occurrences
                )
            });
        }

        // ---- Step 3: define the updates -----------------------------------
        let phis_renamed: Vec<Wff> = forms
            .iter()
            .map(|form| {
                form.phi
                    .map_atoms(&mut |a: &AtomId| sigma.get(a).copied().unwrap_or(*a))
            })
            .collect();
        for (form, phi_renamed) in forms.iter().zip(phis_renamed.iter()) {
            let wff = Wff::implies(phi_renamed.clone(), form.omega.clone());
            self.theory.store.try_insert(&wff)?;
            self.note(|t| {
                format!(
                    "Step 3: added (φ)σ → ω:  {}",
                    winslett_logic::display_wff(&wff, &t.vocab, &t.atoms)
                )
            });
        }

        // ---- Step 4: restrict the updates ----------------------------------
        // Group atoms by their owner set; one fused implication per group.
        let mut groups: FxHashMap<Vec<usize>, Vec<AtomId>> = FxHashMap::default();
        for &f in &omega_atoms {
            groups.entry(owners[&f].clone()).or_default().push(f);
        }
        let mut group_keys: Vec<&Vec<usize>> = groups.keys().collect();
        group_keys.sort(); // deterministic store contents
        for key in group_keys {
            let atoms_in_group = &groups[key];
            let fired = Wff::or(key.iter().map(|&i| phis_renamed[i].clone()).collect());
            let frame: Vec<Wff> = atoms_in_group
                .iter()
                .map(|f| Wff::iff(Wff::Atom(*f), Wff::Atom(sigma[f])))
                .collect();
            let wff = Wff::implies(fired.not(), Wff::And(frame));
            self.theory.store.try_insert(&wff)?;
            self.note(|t| {
                format!(
                    "Step 4: added frame formula ¬(φ)σ → ⋀(f ↔ p_f):  {}",
                    winslett_logic::display_wff(&wff, &t.vocab, &t.atoms)
                )
            });
        }

        // ---- Steps 5–7: type and dependency axioms -----------------------
        let mut step567_atoms: Vec<AtomId> = Vec::new();
        if self.theory.schema.has_type_axioms() {
            for form in &forms {
                let this_omega_atoms: Vec<AtomId> = form.omega.atom_set().into_iter().collect();
                self.step5(
                    &form.omega,
                    &this_omega_atoms,
                    &mut report,
                    &mut step567_atoms,
                )?;
            }
        }
        if !self.theory.deps.is_empty() {
            self.step6(&omega_atoms, &mut report, &mut step567_atoms)?;
        }
        self.step7(&step567_atoms, &mut report)?;

        // ---- §4: simplification (amortized via growth threshold) ----------
        if self.options.simplify != SimplifyLevel::None {
            let trigger = (self.last_simplified_nodes as f64 * self.options.simplify_threshold)
                .max(16.0) as usize;
            if self.theory.store.size_nodes() >= trigger {
                let r = simplify(&mut self.theory, self.options.simplify);
                self.last_simplified_nodes = r.nodes_after;
                self.note(|_| {
                    format!(
                        "§4 simplification: {} → {} nodes, {} → {} formulas",
                        r.nodes_before, r.nodes_after, r.formulas_before, r.formulas_after
                    )
                });
            }
        }

        report.nodes_added = self.theory.store.size_nodes() as isize - nodes_before;
        Ok(report)
    }

    /// Step 5: instantiate type axioms. Following the §3.6 optimization,
    /// "the testing of logical implications is reduced to a test of whether
    /// `A_i(c_i)` is a conjunct of ω".
    fn step5(
        &mut self,
        omega: &Wff,
        omega_atoms: &[AtomId],
        report: &mut UpdateReport,
        new_atoms: &mut Vec<AtomId>,
    ) -> Result<(), GuaError> {
        let omega_conjuncts = positive_conjuncts(omega);

        // Case (1): P(c⃗) ∈ ω whose attribute atoms are not all guaranteed
        // by ω.
        for &f in omega_atoms {
            let ga = self.theory.atoms.resolve(f).clone();
            let Some(attrs) = self.theory.schema.type_axiom(ga.pred) else {
                continue;
            };
            let attrs = attrs.to_vec();
            let all_guaranteed = attrs.iter().zip(ga.args.iter()).all(|(&attr, &c)| {
                self.theory
                    .atoms
                    .get(&GroundAtom::new(attr, &[c]))
                    .is_some_and(|aa| omega_conjuncts.contains(&aa))
            });
            if !all_guaranteed {
                if let Some(inst) = self.theory.type_axiom_instance(f) {
                    self.add_axiom_instance(inst, new_atoms, &mut report.type_instances)?;
                }
            }
        }

        // Case (2): an attribute atom A(c) ∈ ω that ω does not guarantee
        // true — the update may strip `c` from its domain, so every
        // registered tuple mentioning `c` under a type axiom using A needs
        // its instance. The constant index makes the lookup O(log R).
        for &f in omega_atoms {
            let ga = self.theory.atoms.resolve(f).clone();
            if !self.theory.schema.is_attribute(ga.pred) || omega_conjuncts.contains(&f) {
                continue;
            }
            let c = ga.args[0];
            let candidates: Vec<AtomId> = self.theory.registry.atoms_with_constant(c).collect();
            for tuple in candidates {
                let tga = self.theory.atoms.resolve(tuple).clone();
                let Some(attrs) = self.theory.schema.type_axiom(tga.pred) else {
                    continue;
                };
                let uses_attr_at_c = attrs
                    .iter()
                    .zip(tga.args.iter())
                    .any(|(&attr, &arg)| attr == ga.pred && arg == c);
                if uses_attr_at_c {
                    if let Some(inst) = self.theory.type_axiom_instance(tuple) {
                        self.add_axiom_instance(inst, new_atoms, &mut report.type_instances)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Step 6: instantiate dependency axioms triggered by updated atoms.
    fn step6(
        &mut self,
        omega_atoms: &[AtomId],
        report: &mut UpdateReport,
        new_atoms: &mut Vec<AtomId>,
    ) -> Result<(), GuaError> {
        let deps = self.theory.deps.clone();
        for dep in &deps {
            for &f in omega_atoms {
                let insts = dep.instantiate(&self.theory.registry, &mut self.theory.atoms, Some(f));
                for inst in insts {
                    self.add_axiom_instance(inst, new_atoms, &mut report.dep_instances)?;
                }
            }
        }
        Ok(())
    }

    /// Step 7: completion-axiom upkeep for atoms first introduced by Steps
    /// 5–6, including attribute atoms for their constants.
    fn step7(&mut self, new_atoms: &[AtomId], report: &mut UpdateReport) -> Result<(), GuaError> {
        for &a in new_atoms {
            if !self.theory.registry.is_registered(a) {
                self.theory.register_atom(a);
                self.theory.store.try_insert(&Wff::Atom(a).not())?;
                report.completion_added += 1;
            }
            // Attribute completion for the constants of typed tuples.
            let ga = self.theory.atoms.resolve(a).clone();
            if let Some(attrs) = self.theory.schema.type_axiom(ga.pred) {
                let attrs = attrs.to_vec();
                for (&attr, &c) in attrs.iter().zip(ga.args.iter()) {
                    let aa = self.theory.atoms.intern(GroundAtom::new(attr, &[c]));
                    if !self.theory.registry.is_registered(aa) {
                        self.theory.register_atom(aa);
                        self.theory.store.try_insert(&Wff::Atom(aa).not())?;
                        report.completion_added += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn add_axiom_instance(
        &mut self,
        inst: Wff,
        new_atoms: &mut Vec<AtomId>,
        counter: &mut usize,
    ) -> Result<(), GuaError> {
        if self.instantiated.insert(inst.clone()) {
            new_atoms.extend(inst.atom_set());
            self.theory.store.try_insert(&inst)?;
            *counter += 1;
            self.note(|t| {
                format!(
                    "Step 5/6: instantiated axiom:  {}",
                    winslett_logic::display_wff(&inst, &t.vocab, &t.atoms)
                )
            });
        }
        Ok(())
    }

    /// Runs a standalone simplification pass (beyond the automatic
    /// threshold-triggered ones).
    pub fn simplify(&mut self, level: SimplifyLevel) -> SimplifyReport {
        let r = simplify(&mut self.theory, level);
        self.last_simplified_nodes = r.nodes_after;
        r
    }
}

/// The positive top-level atom conjuncts of ω — the syntactic entailment
/// test of §3.6 ("whether A_i(c_i) is a conjunct of w").
fn positive_conjuncts(w: &Wff) -> FxHashSet<AtomId> {
    let mut out = FxHashSet::default();
    match w {
        Wff::Atom(a) => {
            out.insert(*a);
        }
        Wff::And(xs) => {
            for x in xs {
                if let Wff::Atom(a) = x {
                    out.insert(*a);
                }
            }
        }
        _ => {}
    }
    out
}

/// One-shot convenience: applies `update` to `theory` in place with the
/// given options, returning the report.
pub fn apply_update(
    theory: &mut Theory,
    update: &Update,
    options: GuaOptions,
) -> Result<UpdateReport, GuaError> {
    let mut engine = GuaEngine::new(std::mem::take(theory), options);
    let result = engine.apply(update);
    *theory = engine.theory;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::ModelLimit;

    /// §3.3 running example: atoms a, b; section {a, a ∨ b}.
    fn paper_theory() -> (Theory, AtomId, AtomId) {
        let mut t = Theory::new();
        let r = t.declare_relation("Tup", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        t.assert_wff(&Wff::Atom(a));
        t.assert_wff(&Wff::or2(Wff::Atom(a), Wff::Atom(b)));
        (t, a, b)
    }

    fn worlds_of(t: &Theory) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = t
            .alternative_worlds(ModelLimit::default())
            .unwrap()
            .iter()
            .map(|w| t.format_world(w))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn paper_nonbranching_example() {
        // MODIFY a TO BE a′ WHERE b ∧ a ⇒ worlds {a} and {b, a′} (§3.3).
        let (mut t, a, b) = paper_theory();
        let r = t.vocab.find_predicate("Tup").unwrap();
        let ca2 = t.constant("a'");
        let a2 = t.atom(r, &[ca2]);
        let u = Update::modify(a, Wff::Atom(a2), Wff::Atom(b));
        let mut engine = GuaEngine::new(t, GuaOptions::default());
        let report = engine.apply(&u).unwrap();
        assert!(!report.branching);
        assert!(report.renamed >= 2); // a and a' (¬a and a' in ω)
        let worlds = worlds_of(&engine.theory);
        assert_eq!(
            worlds,
            vec![
                vec!["Tup(a')".to_string(), "Tup(b)".to_string()],
                vec!["Tup(a)".to_string()],
            ]
        );
    }

    #[test]
    fn paper_branching_example() {
        // MODIFY a TO BE (c ∨ a) WHERE b ∧ a ⇒ 4 worlds (§3.3).
        let (mut t, a, b) = paper_theory();
        let r = t.vocab.find_predicate("Tup").unwrap();
        let cc = t.constant("c");
        let c = t.atom(r, &[cc]);
        let u = Update::modify(a, Wff::Or(vec![Wff::Atom(c), Wff::Atom(a)]), Wff::Atom(b));
        let mut engine = GuaEngine::new(t, GuaOptions::default());
        let report = engine.apply(&u).unwrap();
        assert!(report.branching);
        let worlds = worlds_of(&engine.theory);
        assert_eq!(worlds.len(), 4);
        assert!(worlds.contains(&vec!["Tup(a)".to_string()]));
        assert!(worlds.contains(&vec!["Tup(b)".to_string(), "Tup(c)".to_string()]));
        assert!(worlds.contains(&vec!["Tup(a)".to_string(), "Tup(b)".to_string()]));
        assert!(worlds.contains(&vec![
            "Tup(a)".to_string(),
            "Tup(b)".to_string(),
            "Tup(c)".to_string()
        ]));
    }

    #[test]
    fn insert_disjunction_branches() {
        // INSERT a ∨ b WHERE T over a single empty world ⇒ 3 worlds.
        let mut t = Theory::new();
        let r = t.declare_relation("Tup", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        t.assert_not_atom(a);
        t.assert_not_atom(b);
        let u = Update::insert(Wff::Or(vec![Wff::Atom(a), Wff::Atom(b)]), Wff::t());
        let mut engine = GuaEngine::with_defaults(t);
        engine.apply(&u).unwrap();
        assert_eq!(worlds_of(&engine.theory).len(), 3);
    }

    #[test]
    fn assert_removes_worlds() {
        let (t, _, b) = paper_theory();
        let mut engine = GuaEngine::with_defaults(t);
        engine.apply(&Update::assert(Wff::Atom(b))).unwrap();
        let worlds = worlds_of(&engine.theory);
        assert_eq!(worlds.len(), 1);
        assert_eq!(worlds[0], vec!["Tup(a)".to_string(), "Tup(b)".to_string()]);
    }

    #[test]
    fn delete_tuple() {
        let (t, a, _) = paper_theory();
        let mut engine = GuaEngine::with_defaults(t);
        engine.apply(&Update::delete(a, Wff::t())).unwrap();
        let worlds = worlds_of(&engine.theory);
        // a removed from both worlds: {} and {b}.
        assert_eq!(worlds.len(), 2);
        assert!(worlds.contains(&Vec::<String>::new()));
        assert!(worlds.contains(&vec!["Tup(b)".to_string()]));
    }

    #[test]
    fn update_on_fresh_atom_registers_it() {
        let (t, _, _) = paper_theory();
        let mut engine = GuaEngine::with_defaults(t);
        let r = engine.theory.vocab.find_predicate("Tup").unwrap();
        let cc = engine.theory.constant("c");
        let c = engine.theory.atom(r, &[cc]);
        let report = engine
            .apply(&Update::insert(Wff::Atom(c), Wff::t()))
            .unwrap();
        assert!(report.completion_added >= 1);
        assert!(engine.theory.registry.is_registered(c));
        let worlds = worlds_of(&engine.theory);
        assert_eq!(worlds.len(), 2);
        assert!(worlds.iter().all(|w| w.contains(&"Tup(c)".to_string())));
    }

    #[test]
    fn execute_parses_and_applies() {
        let (t, _, _) = paper_theory();
        let mut engine = GuaEngine::with_defaults(t);
        let report = engine.execute("INSERT Tup(c) WHERE Tup(a)").unwrap();
        assert_eq!(report.renamed, 1);
        let worlds = worlds_of(&engine.theory);
        assert!(worlds.iter().all(|w| w.contains(&"Tup(c)".to_string())));
    }

    #[test]
    fn execute_rejects_unknown_predicate() {
        let (t, _, _) = paper_theory();
        let mut engine = GuaEngine::with_defaults(t);
        assert!(engine.execute("INSERT Nope(c) WHERE T").is_err());
    }

    #[test]
    fn update_with_predicate_constant_rejected() {
        let (mut t, a, _) = paper_theory();
        let pc = t.vocab.fresh_predicate_constant();
        let pca = t.atoms.intern(GroundAtom::nullary(pc));
        let mut engine = GuaEngine::with_defaults(t);
        let u = Update::insert(Wff::Atom(pca), Wff::Atom(a));
        assert!(matches!(
            engine.apply(&u),
            Err(GuaError::Ldml(
                winslett_ldml::LdmlError::PredicateConstantInUpdate { .. }
            ))
        ));
    }

    #[test]
    fn selection_referencing_other_tuples() {
        // Abiteboul–Grahne-style updates the paper supports but tables
        // don't: a selection clause referencing tuples other than the
        // target. INSERT b WHERE a: fires only in a-worlds.
        let (t, _, b) = paper_theory();
        // First remove certainty: worlds are {a} and {a,b}. Insert ¬b where
        // ¬b... make it interesting: DELETE b WHERE a — b removed wherever
        // a ∧ b holds.
        let mut engine = GuaEngine::with_defaults(t);
        engine.apply(&Update::delete(b, Wff::t())).unwrap();
        let worlds = worlds_of(&engine.theory);
        assert_eq!(worlds, vec![vec!["Tup(a)".to_string()]]);
    }

    #[test]
    fn sequences_of_updates_compose() {
        let (t, a, b) = paper_theory();
        let mut engine = GuaEngine::with_defaults(t);
        // Forget a (branch), then assert it back.
        engine
            .apply(&Update::insert(
                Wff::Or(vec![Wff::Atom(a), Wff::Atom(a).not()]),
                Wff::t(),
            ))
            .unwrap();
        assert_eq!(worlds_of(&engine.theory).len(), 4); // {a?} × {b from a∨b: when ¬a, b forced}
        engine.apply(&Update::assert(Wff::Atom(a))).unwrap();
        let worlds = worlds_of(&engine.theory);
        assert_eq!(worlds.len(), 2);
        let _ = b;
    }

    #[test]
    fn tracing_narrates_the_steps() {
        let (t, a, b) = paper_theory();
        let mut engine = GuaEngine::with_defaults(t);
        engine.set_tracing(true);
        let r = engine.theory.vocab.find_predicate("Tup").unwrap();
        let cc = engine.theory.constant("c");
        let c = engine.theory.atom(r, &[cc]);
        engine
            .apply(&Update::insert(Wff::Atom(c), Wff::Atom(b)))
            .unwrap();
        let trace = engine.take_trace();
        assert!(trace.iter().any(|l| l.starts_with("Step 1")), "{trace:?}");
        assert!(trace.iter().any(|l| l.starts_with("Step 2")), "{trace:?}");
        assert!(trace.iter().any(|l| l.starts_with("Step 3")), "{trace:?}");
        assert!(trace.iter().any(|l| l.starts_with("Step 4")), "{trace:?}");
        assert!(
            trace.iter().any(|l| l.contains("simplification")),
            "{trace:?}"
        );
        // Taking drains; tracing off produces nothing.
        assert!(engine.take_trace().is_empty());
        engine.set_tracing(false);
        engine.apply(&Update::delete(a, Wff::t())).unwrap();
        assert!(engine.take_trace().is_empty());
    }

    #[test]
    fn simplify_threshold_defers_passes() {
        // With a high threshold, small updates must not trigger passes;
        // worlds are identical either way.
        let (t, a, b) = paper_theory();
        let mut lazy = GuaEngine::new(
            t.clone(),
            GuaOptions {
                simplify: SimplifyLevel::Fast,
                simplify_threshold: 100.0,
            },
        );
        let mut eager = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::Fast));
        for _ in 0..5 {
            let u = Update::insert(Wff::Atom(b), Wff::Atom(a));
            lazy.apply(&u).unwrap();
            eager.apply(&u).unwrap();
        }
        // Deferred simplification: the lazy store is strictly larger...
        assert!(lazy.theory.store.size_nodes() > eager.theory.store.size_nodes());
        // ...but the worlds agree.
        assert_eq!(
            lazy.theory
                .alternative_worlds(ModelLimit::default())
                .unwrap(),
            eager
                .theory
                .alternative_worlds(ModelLimit::default())
                .unwrap()
        );
        // An explicit pass resets the baseline and shrinks the store.
        let before = lazy.theory.store.size_nodes();
        lazy.simplify(SimplifyLevel::Fast);
        assert!(lazy.theory.store.size_nodes() <= before);
    }

    #[test]
    fn one_shot_helper() {
        let (mut t, a, _) = paper_theory();
        let report =
            apply_update(&mut t, &Update::delete(a, Wff::t()), GuaOptions::default()).unwrap();
        assert!(report.g >= 1);
        assert_eq!(worlds_of(&t).len(), 2);
    }
}
