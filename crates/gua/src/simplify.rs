//! Heuristic simplification of extended relational theories (§4).
//!
//! "As they grow steadily longer under the update algorithms … it is in
//! large part the possibility of heuristic simplification that makes the
//! LDML algorithms more attractive than simply keeping a record of past
//! updates and recomputing the state of the theory on each new query. A
//! heuristic algorithm for simplification will be a vital part of any
//! implementation."
//!
//! Every pass here preserves the **alternative worlds** of the theory:
//!
//! * constant folding, unit propagation, duplicate removal, and
//!   tautology dropping preserve logical equivalence of the non-axiomatic
//!   section — which, per the closing remark of §3.4, is exactly what
//!   preserves the alternative-world set;
//! * predicate constants are existentially quantified from the user's
//!   standpoint (they are invisible in worlds), so a predicate constant `p`
//!   of *pure polarity* may be assigned its favourable value
//!   (`∃p F ≡ F[p:=T]` when `F` is monotone in `p`), and a `p` confined to
//!   a single formula `f` may be eliminated by Shannon expansion
//!   (`∃p f ≡ f[p:=T] ∨ f[p:=F]`);
//! * at [`SimplifyLevel::Full`], a predicate constant *spanning* a small
//!   group of formulas is eliminated by Shannon-expanding the group's
//!   conjunction (`∃p (f₁∧…∧fₖ) ≡ (∧f)[p:=T] ∨ (∧f)[p:=F]`) — this is what
//!   reclaims the chained frame residue a long uncertain-update history
//!   leaves behind — and a formula entailed by the remaining formulas is
//!   removed (SAT-checked), again preserving equivalence.
//!
//! The world-preservation property is verified against the possible-worlds
//! baseline over randomized theories in the integration tests (E6's
//! soundness leg).

use rustc_hash::{FxHashMap, FxHashSet};
use winslett_logic::{AtomId, EntailmentSession, Formula, Polarity, PredicateKind, Wff};
use winslett_theory::Theory;

/// How aggressively to simplify.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimplifyLevel {
    /// Leave the theory exactly as GUA produced it.
    None,
    /// Constant folding, unit propagation, duplicate removal, pure/confined
    /// predicate-constant elimination. Linear-ish, no SAT calls.
    Fast,
    /// Everything in `Fast`, plus SAT-backed removal of formulas entailed
    /// by the rest of the section.
    Full,
}

/// What a simplification pass accomplished.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SimplifyReport {
    /// Store nodes before.
    pub nodes_before: usize,
    /// Store nodes after.
    pub nodes_after: usize,
    /// Live formulas before.
    pub formulas_before: usize,
    /// Live formulas after.
    pub formulas_after: usize,
    /// Unit literals propagated.
    pub units_propagated: usize,
    /// Predicate constants eliminated (pure or confined).
    pub pcs_eliminated: usize,
    /// Formulas removed as entailed by the rest (`Full` only).
    pub redundant_removed: usize,
}

/// Runs a simplification pass over the theory's non-axiomatic section.
pub fn simplify(theory: &mut Theory, level: SimplifyLevel) -> SimplifyReport {
    let mut report = SimplifyReport {
        nodes_before: theory.store.size_nodes(),
        formulas_before: theory.store.len(),
        ..SimplifyReport::default()
    };
    if level == SimplifyLevel::None {
        report.nodes_after = report.nodes_before;
        report.formulas_after = report.formulas_before;
        return report;
    }

    let mut wffs: Vec<Wff> = theory
        .store
        .wffs()
        .iter()
        .map(Formula::fold_constants)
        .filter(|w| *w != Wff::t())
        .collect();

    let is_pc = |theory: &Theory, a: AtomId| {
        theory.vocab.predicate(theory.atoms.resolve(a).pred).kind
            == PredicateKind::PredicateConstant
    };

    // Smallest coherent state seen across spanning rounds, with the
    // pcs_eliminated count that produced it: (total nodes, wffs, count).
    let mut best: Option<(usize, Vec<Wff>, usize)> = None;

    'rounds: loop {
        loop {
            let mut changed = false;

            // ---- inconsistency short-circuit -----------------------------
            if wffs.iter().any(|w| *w == Wff::f()) {
                wffs = vec![Wff::f()];
                break 'rounds;
            }

            // ---- unit propagation ----------------------------------------
            let mut units: FxHashMap<AtomId, bool> = FxHashMap::default();
            let mut conflict = false;
            for w in &wffs {
                let (atom, value) = match w {
                    Formula::Atom(a) => (*a, true),
                    Formula::Not(inner) => match inner.as_ref() {
                        Formula::Atom(a) => (*a, false),
                        _ => continue,
                    },
                    _ => continue,
                };
                if let Some(prev) = units.insert(atom, value) {
                    if prev != value {
                        conflict = true;
                        break;
                    }
                }
            }
            if conflict {
                wffs = vec![Wff::f()];
                break 'rounds;
            }
            if !units.is_empty() {
                let mut next: Vec<Wff> = Vec::with_capacity(wffs.len());
                for w in wffs.drain(..) {
                    let unit_shape = matches!(&w, Formula::Atom(_))
                        || matches!(&w, Formula::Not(x) if matches!(x.as_ref(), Formula::Atom(_)));
                    if unit_shape {
                        next.push(w);
                        continue;
                    }
                    let mut rewritten = w.clone();
                    for (&a, &v) in &units {
                        if rewritten.contains_atom(a) {
                            rewritten = rewritten.assign(a, v);
                            report.units_propagated += 1;
                            changed = true;
                        }
                    }
                    if rewritten != Wff::t() {
                        next.push(rewritten);
                    }
                }
                wffs = next;
            }

            // ---- forced-literal extraction ---------------------------------
            // For small formulas, split out literals the formula itself forces:
            // f ≡ lit₁ ∧ … ∧ litₖ ∧ f[lits], which turns hidden certainties
            // (e.g. `a ∧ (b ∨ c)` after cofactoring) into units the next round
            // can propagate.
            {
                let mut extracted: Vec<Wff> = Vec::new();
                for w in &mut wffs {
                    let unit_shape = matches!(&*w, Formula::Atom(_))
                        || matches!(&*w, Formula::Not(x) if matches!(x.as_ref(), Formula::Atom(_)));
                    if unit_shape {
                        continue;
                    }
                    if let Some(forced) = winslett_logic::forced_literals(w, 8) {
                        if forced.is_empty() {
                            continue;
                        }
                        let mut reduced = w.clone();
                        for &(a, v) in &forced {
                            reduced = reduced.assign(a, v);
                            extracted.push(if v { Wff::Atom(a) } else { Wff::Atom(a).not() });
                            report.units_propagated += 1;
                        }
                        *w = reduced;
                        changed = true;
                    }
                }
                wffs.extend(extracted);
                if changed {
                    wffs.retain(|w| *w != Wff::t());
                }
            }

            // ---- duplicate removal ----------------------------------------
            {
                let mut seen: FxHashSet<Wff> = FxHashSet::default();
                let before = wffs.len();
                wffs.retain(|w| seen.insert(w.clone()));
                if wffs.len() != before {
                    changed = true;
                }
            }

            // ---- predicate-constant elimination ----------------------------
            // Pure polarity: assign the favourable value.
            let mut polarity: FxHashMap<AtomId, Polarity> = FxHashMap::default();
            let mut occurrences: FxHashMap<AtomId, usize> = FxHashMap::default();
            for (idx, w) in wffs.iter().enumerate() {
                for a in w.atom_set() {
                    if !is_pc(theory, a) {
                        continue;
                    }
                    if let Some(p) = w.polarity_of(a) {
                        polarity
                            .entry(a)
                            .and_modify(|q| {
                                if *q != p {
                                    *q = Polarity::Both;
                                }
                            })
                            .or_insert(p);
                    }
                    // Track the single formula index holding the atom, encoded
                    // as idx+1; 0 = multiple.
                    occurrences
                        .entry(a)
                        .and_modify(|e| {
                            if *e != idx + 1 {
                                *e = 0;
                            }
                        })
                        .or_insert(idx + 1);
                }
            }
            let mut assigned: FxHashMap<AtomId, bool> = FxHashMap::default();
            for (&a, &p) in &polarity {
                match p {
                    Polarity::Positive => {
                        assigned.insert(a, true);
                    }
                    Polarity::Negative => {
                        assigned.insert(a, false);
                    }
                    Polarity::Both => {}
                }
            }
            if !assigned.is_empty() {
                report.pcs_eliminated += assigned.len();
                changed = true;
                let mut next: Vec<Wff> = Vec::with_capacity(wffs.len());
                for w in wffs.drain(..) {
                    let mut rewritten = w;
                    for (&a, &v) in &assigned {
                        if rewritten.contains_atom(a) {
                            rewritten = rewritten.assign(a, v);
                        }
                    }
                    if rewritten != Wff::t() {
                        next.push(rewritten);
                    }
                }
                wffs = next;
            } else {
                // Confined predicate constants: Shannon-expand within their
                // single formula (skip oversized formulas to avoid blow-up).
                let confined: Vec<(AtomId, usize)> = occurrences
                    .iter()
                    .filter(|&(a, &idx1)| idx1 != 0 && polarity.get(a) == Some(&Polarity::Both))
                    .map(|(&a, &idx1)| (a, idx1 - 1))
                    .collect();
                for (a, idx) in confined {
                    if idx >= wffs.len() || wffs[idx].size() > 64 {
                        continue;
                    }
                    let f = &wffs[idx];
                    if !f.contains_atom(a) {
                        continue; // already rewritten this round
                    }
                    let expanded = Wff::or2(f.assign(a, true), f.assign(a, false));
                    wffs[idx] = expanded;
                    report.pcs_eliminated += 1;
                    changed = true;
                }
                // Drop any formulas that folded to T.
                let before = wffs.len();
                wffs.retain(|w| *w != Wff::t());
                if wffs.len() != before {
                    changed = true;
                }
            }

            if !changed {
                break;
            }
        }

        if level != SimplifyLevel::Full {
            break;
        }

        // The inner fixpoint has converged, so this state is a coherent
        // local minimum; remember the smallest one. The spanning expansion
        // below may grow the section transiently while a chain collapses —
        // if the cascade never pays off, the final answer reverts to the
        // best state, so `Full` can never hand back a bigger store than
        // the cheap fixpoint alone produced.
        let size: usize = wffs.iter().map(|w| w.size()).sum();
        if best.as_ref().is_none_or(|(s, _, _)| size < *s) {
            best = Some((size, wffs.clone(), report.pcs_eliminated));
        }

        // ---- Full: spanning predicate-constant elimination ---------------
        // A constant chained across several formulas (the frame residue a
        // long uncertain-update history leaves behind) defeats both the
        // pure-polarity and the confined passes: it occurs in two or more
        // formulas with both polarities. Each elimination removes at least
        // one distinct predicate constant from the section, so the round
        // loop terminates.
        if !eliminate_spanning_pcs(theory, &mut wffs, &mut report) {
            break;
        }
    }

    // Revert to the best coherent state if the spanning cascade ended up
    // net-negative (an entangled constant whose expansion never folded).
    if let Some((size, saved, pcs)) = best {
        let current: usize = wffs.iter().map(|w| w.size()).sum();
        if current > size {
            wffs = saved;
            report.pcs_eliminated = pcs;
        }
    }

    // ---- Full: entailment-based redundancy removal -----------------------
    if level == SimplifyLevel::Full && wffs.len() > 1 {
        // One session encodes every wff once behind a selector literal;
        // each absorption check "do the other alive wffs entail wff i?"
        // is then a single assumption-solve under {s_j : j ≠ i alive} ∪
        // {¬s_i} — n solves total where the fresh-solver approach paid
        // O(n²) encodings. Duplicate wffs share a selector, which makes
        // the assumption set contradictory and the verdict `removed`,
        // matching what entailment-by-an-identical-copy concluded before.
        let mut session = EntailmentSession::new(theory.num_atoms());
        let selectors: Vec<_> = wffs.iter().map(|w| session.literal_for(w)).collect();
        // Largest formulas first: removing a big one is worth more.
        let mut order: Vec<usize> = (0..wffs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(wffs[i].size()));
        let mut removed: Vec<bool> = vec![false; wffs.len()];
        for &i in &order {
            let mut assumptions: Vec<_> = (0..wffs.len())
                .filter(|&j| j != i && !removed[j])
                .map(|j| selectors[j])
                .collect();
            assumptions.push(selectors[i].negate());
            if !session.satisfiable_under(&assumptions) {
                removed[i] = true;
                report.redundant_removed += 1;
            }
        }
        wffs = wffs
            .into_iter()
            .zip(removed)
            .filter(|(_, r)| !r)
            .map(|(w, _)| w)
            .collect();
    }

    theory.store.replace_all(&wffs);
    report.nodes_after = theory.store.size_nodes();
    report.formulas_after = theory.store.len();
    report
}

/// Existentially eliminates predicate constants that span a small group of
/// formulas: `∃p (f₁ ∧ … ∧ fₖ) ≡ (∧f)[p:=T] ∨ (∧f)[p:=F]`. The group's
/// formulas are replaced by the folded expansion. Bounded by formula count
/// and total group size so a genuinely entangled constant is left alone
/// rather than blowing the store up; a single batch may still grow the
/// section transiently (a chain collapse pays off only after several
/// rounds), which is why `simplify` keeps the smallest coherent state seen
/// and reverts to it if the cascade never converges below it. Returns
/// whether anything was eliminated; callers should re-run the cheap
/// fixpoint afterwards to fold and propagate what the expansion exposed.
fn eliminate_spanning_pcs(
    theory: &Theory,
    wffs: &mut Vec<Wff>,
    report: &mut SimplifyReport,
) -> bool {
    /// Most formulas a group may have before the constant is left alone.
    const MAX_GROUP_FORMULAS: usize = 4;
    /// Largest total node count of a group's formulas; the expansion is at
    /// most twice this before folding.
    const MAX_GROUP_NODES: usize = 128;

    let mut occurrences: FxHashMap<AtomId, Vec<usize>> = FxHashMap::default();
    for (idx, w) in wffs.iter().enumerate() {
        for a in w.atom_set() {
            if theory.vocab.predicate(theory.atoms.resolve(a).pred).kind
                == PredicateKind::PredicateConstant
            {
                occurrences.entry(a).or_default().push(idx);
            }
        }
    }
    // Cheapest groups first; the AtomId tiebreak keeps runs deterministic.
    let mut candidates: Vec<(usize, AtomId)> = occurrences
        .iter()
        .filter(|(_, idxs)| idxs.len() >= 2 && idxs.len() <= MAX_GROUP_FORMULAS)
        .map(|(&a, idxs)| (idxs.iter().map(|&i| wffs[i].size()).sum::<usize>(), a))
        .filter(|&(cost, _)| cost <= MAX_GROUP_NODES)
        .collect();
    candidates.sort_unstable();

    let mut consumed: FxHashSet<usize> = FxHashSet::default();
    let mut fresh: Vec<Wff> = Vec::new();
    let mut any = false;
    for (_, a) in candidates {
        let idxs = &occurrences[&a];
        // Groups must be disjoint within a batch: a consumed formula's
        // replacement may no longer mention this constant at all.
        if idxs.iter().any(|i| consumed.contains(i)) {
            continue;
        }
        let Some(conjunction) = idxs.iter().map(|&i| wffs[i].clone()).reduce(Wff::and2) else {
            continue;
        };
        let expanded =
            Wff::or2(conjunction.assign(a, true), conjunction.assign(a, false)).fold_constants();
        consumed.extend(idxs.iter().copied());
        if expanded != Wff::t() {
            fresh.push(expanded);
        }
        report.pcs_eliminated += 1;
        any = true;
    }
    if any {
        let mut next: Vec<Wff> = wffs
            .iter()
            .enumerate()
            .filter(|(i, _)| !consumed.contains(i))
            .map(|(_, w)| w.clone())
            .collect();
        next.append(&mut fresh);
        *wffs = next;
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::{GroundAtom, ModelLimit};

    fn fixture() -> (Theory, AtomId, AtomId) {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        (t, a, b)
    }

    fn worlds(t: &Theory) -> Vec<winslett_logic::BitSet> {
        t.alternative_worlds(ModelLimit::default()).unwrap()
    }

    #[test]
    fn folding_removes_tautologies() {
        let (mut t, a, _) = fixture();
        t.assert_wff(&Wff::implies(Wff::f(), Wff::Atom(a))); // ≡ T
        t.assert_atom(a);
        let before = worlds(&t);
        let report = simplify(&mut t, SimplifyLevel::Fast);
        assert_eq!(report.formulas_after, 1);
        assert_eq!(worlds(&t), before);
    }

    #[test]
    fn unit_propagation_shrinks() {
        let (mut t, a, b) = fixture();
        t.assert_atom(a);
        t.assert_wff(&Wff::or2(Wff::Atom(a).not(), Wff::Atom(b))); // a → b
        let before = worlds(&t);
        let report = simplify(&mut t, SimplifyLevel::Fast);
        assert!(report.units_propagated > 0);
        // a, and b as a propagated unit.
        let wffs = t.store.wffs();
        assert!(wffs.contains(&Wff::Atom(a)));
        assert!(wffs.contains(&Wff::Atom(b)));
        assert_eq!(worlds(&t), before);
    }

    #[test]
    fn conflicting_units_collapse_to_false() {
        let (mut t, a, _) = fixture();
        t.assert_atom(a);
        t.assert_not_atom(a);
        simplify(&mut t, SimplifyLevel::Fast);
        assert_eq!(t.store.wffs(), vec![Wff::f()]);
        assert!(worlds(&t).is_empty());
    }

    #[test]
    fn duplicates_removed() {
        let (mut t, a, b) = fixture();
        let w = Wff::or2(Wff::Atom(a), Wff::Atom(b));
        t.assert_wff(&w);
        t.assert_wff(&w);
        let report = simplify(&mut t, SimplifyLevel::Fast);
        assert_eq!(report.formulas_after, 1);
    }

    #[test]
    fn pure_predicate_constant_eliminated() {
        let (mut t, a, b) = fixture();
        let pc = t.vocab.fresh_predicate_constant();
        let p = t.atoms.intern(GroundAtom::nullary(pc));
        // p ∨ a, with p pure positive: ∃p (p ∨ a) ≡ T — the formula tells
        // the user nothing, and must disappear. (b pins the theory to keep
        // it nontrivial without introducing a unit about a.)
        t.assert_wff(&Wff::or2(Wff::Atom(p), Wff::Atom(a)));
        t.assert_not_atom(b);
        let before = worlds(&t);
        let report = simplify(&mut t, SimplifyLevel::Fast);
        assert!(report.pcs_eliminated >= 1);
        assert!(t.store.wffs().iter().all(|w| !w.contains_atom(p)));
        assert_eq!(worlds(&t), before);
    }

    #[test]
    fn confined_predicate_constant_shannon_eliminated() {
        let (mut t, a, b) = fixture();
        let pc = t.vocab.fresh_predicate_constant();
        let p = t.atoms.intern(GroundAtom::nullary(pc));
        // (p → a) ∧ (¬p → b) in one formula: ∃p … ≡ a ∨ b.
        let w = Wff::and2(
            Wff::implies(Wff::Atom(p), Wff::Atom(a)),
            Wff::implies(Wff::Atom(p).not(), Wff::Atom(b)),
        );
        t.assert_wff(&w);
        let before = worlds(&t);
        let report = simplify(&mut t, SimplifyLevel::Fast);
        assert!(report.pcs_eliminated >= 1);
        assert!(t.store.wffs().iter().all(|x| !x.contains_atom(p)));
        assert_eq!(worlds(&t), before);
    }

    #[test]
    fn spanning_predicate_constant_eliminated_at_full() {
        let (mut t, a, b) = fixture();
        let pc = t.vocab.fresh_predicate_constant();
        let p = t.atoms.intern(GroundAtom::nullary(pc));
        // (p → a) and (¬p → b) as *separate* formulas: p has both
        // polarities (not pure) and spans two formulas (not confined), so
        // only the Full spanning pass can touch it. ∃p … ≡ a ∨ b.
        t.assert_wff(&Wff::implies(Wff::Atom(p), Wff::Atom(a)));
        t.assert_wff(&Wff::implies(Wff::Atom(p).not(), Wff::Atom(b)));
        let before = worlds(&t);

        let mut fast = t.clone();
        simplify(&mut fast, SimplifyLevel::Fast);
        assert!(
            fast.store.wffs().iter().any(|w| w.contains_atom(p)),
            "Fast must leave a spanning constant alone"
        );

        let report = simplify(&mut t, SimplifyLevel::Full);
        assert!(report.pcs_eliminated >= 1);
        assert!(t.store.wffs().iter().all(|w| !w.contains_atom(p)));
        assert_eq!(worlds(&t), before);
    }

    #[test]
    fn spanning_chain_collapses_at_full() {
        // A three-link history chain p₀ ↔ p₁ ↔ p₂ with only the newest
        // constant tied to a visible atom — the shape sustained uncertain
        // updates leave behind. Full must project every link out.
        let (mut t, a, _) = fixture();
        let ps: Vec<AtomId> = (0..3)
            .map(|_| {
                let pc = t.vocab.fresh_predicate_constant();
                t.atoms.intern(GroundAtom::nullary(pc))
            })
            .collect();
        t.assert_wff(&Wff::iff(Wff::Atom(ps[0]), Wff::Atom(ps[1])));
        t.assert_wff(&Wff::iff(Wff::Atom(ps[1]), Wff::Atom(ps[2])));
        t.assert_wff(&Wff::implies(Wff::Atom(ps[2]), Wff::Atom(a)));
        let before = worlds(&t);
        let report = simplify(&mut t, SimplifyLevel::Full);
        assert!(report.pcs_eliminated >= 3);
        for &p in &ps {
            assert!(t.store.wffs().iter().all(|w| !w.contains_atom(p)));
        }
        assert_eq!(worlds(&t), before);
    }

    #[test]
    fn full_removes_entailed_formulas() {
        let (mut t, a, b) = fixture();
        // Non-unit formulas so unit propagation can't pre-empt the check:
        // (a ∨ b) entails (a ∨ b ∨ (a ∧ b)).
        let w1 = Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]);
        let w2 = Formula::Or(vec![
            Wff::Atom(a),
            Wff::Atom(b),
            Formula::And(vec![Wff::Atom(a), Wff::Atom(b)]),
        ]);
        t.assert_wff(&w1);
        t.assert_wff(&w2);
        let before = worlds(&t);
        let report = simplify(&mut t, SimplifyLevel::Full);
        assert!(report.redundant_removed >= 1);
        assert_eq!(report.formulas_after, 1);
        assert_eq!(worlds(&t), before);
    }

    #[test]
    fn none_level_is_identity() {
        let (mut t, a, _) = fixture();
        t.assert_wff(&Wff::implies(Wff::t(), Wff::Atom(a)));
        let nodes = t.store.size_nodes();
        let report = simplify(&mut t, SimplifyLevel::None);
        assert_eq!(report.nodes_after, nodes);
        assert_eq!(t.store.size_nodes(), nodes);
    }

    #[test]
    fn worlds_preserved_on_random_sections() {
        // Randomized soundness: simplify must never change the worlds.
        let mut state = 0xFEED_FACE_CAFEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..60 {
            let mut t = Theory::new();
            let r = t.declare_relation("R", 1).unwrap();
            let mut ids = Vec::new();
            for i in 0..4 {
                let c = t.constant(&format!("c{i}"));
                ids.push(t.atom(r, &[c]));
            }
            // A couple of predicate constants in the mix.
            for _ in 0..2 {
                let pc = t.vocab.fresh_predicate_constant();
                ids.push(t.atoms.intern(GroundAtom::nullary(pc)));
            }
            let n_wffs = 1 + (next() % 5) as usize;
            for _ in 0..n_wffs {
                let w = random_wff(&mut next, &ids, 3);
                t.assert_wff(&w);
            }
            let before = worlds(&t);
            let level = if trial % 2 == 0 {
                SimplifyLevel::Fast
            } else {
                SimplifyLevel::Full
            };
            simplify(&mut t, level);
            assert_eq!(worlds(&t), before, "worlds changed at {level:?}");
        }
    }

    fn random_wff(next: &mut impl FnMut() -> u64, ids: &[AtomId], depth: usize) -> Wff {
        if depth == 0 || next().is_multiple_of(3) {
            let a = ids[(next() % ids.len() as u64) as usize];
            return if next().is_multiple_of(2) {
                Wff::Atom(a)
            } else {
                Wff::Atom(a).not()
            };
        }
        match next() % 4 {
            0 => random_wff(next, ids, depth - 1).not(),
            1 => Formula::And(vec![
                random_wff(next, ids, depth - 1),
                random_wff(next, ids, depth - 1),
            ]),
            2 => Formula::Or(vec![
                random_wff(next, ids, depth - 1),
                random_wff(next, ids, depth - 1),
            ]),
            _ => Wff::implies(
                random_wff(next, ids, depth - 1),
                random_wff(next, ids, depth - 1),
            ),
        }
    }
}
