//! # winslett-gua
//!
//! GUA — the Ground Update Algorithm of Winslett (PODS 1986, §3.3/§3.5) —
//! together with the §4 simplification pass.
//!
//! * [`GuaEngine`] owns an extended relational theory and performs LDML
//!   updates on it syntactically: Steps 1–4 (rename-and-restrict) plus
//!   Steps 2′ and 5–7 for theories with type and dependency axioms.
//! * [`simplify()`](simplify::simplify) keeps the theory small as updates accumulate —
//!   world-preserving constant folding, unit propagation, predicate-
//!   constant elimination, and (at [`SimplifyLevel::Full`]) SAT-backed
//!   redundancy removal.
//!
//! Correctness (Theorems 1 and 5) is checked in the workspace integration
//! tests by comparing against the possible-worlds baseline of
//! `winslett-worlds` on randomized theories and updates.

pub mod algorithm;
pub mod error;
pub mod simplify;

pub use algorithm::{apply_update, GuaEngine, GuaOptions, UpdateReport};
pub use error::GuaError;
pub use simplify::{simplify, SimplifyLevel, SimplifyReport};
