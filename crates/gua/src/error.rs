//! Error type for the GUA crate.

use std::fmt;

/// Errors raised while performing a ground update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GuaError {
    /// An error from the theory layer.
    Theory(winslett_theory::TheoryError),
    /// An error from LDML (parsing or validation).
    Ldml(winslett_ldml::LdmlError),
}

impl fmt::Display for GuaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuaError::Theory(e) => write!(f, "{e}"),
            GuaError::Ldml(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GuaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuaError::Theory(e) => Some(e),
            GuaError::Ldml(e) => Some(e),
        }
    }
}

impl From<winslett_theory::TheoryError> for GuaError {
    fn from(e: winslett_theory::TheoryError) -> Self {
        GuaError::Theory(e)
    }
}

impl From<winslett_ldml::LdmlError> for GuaError {
    fn from(e: winslett_ldml::LdmlError) -> Self {
        GuaError::Ldml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: GuaError = winslett_theory::TheoryError::Inconsistent.into();
        assert!(e.to_string().contains("no models"));
        let e: GuaError = winslett_ldml::LdmlError::TargetNotAtomic.into();
        assert!(e.to_string().contains("atomic"));
    }
}
