//! Theorem 1 and Theorem 5 as randomized executable properties:
//! GUA's output theory must represent exactly the alternative worlds
//! obtained by updating every alternative world individually (the §3.2
//! commutative diagram), with and without type/dependency axioms.

use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_ldml::Update;
use winslett_logic::{AtomId, Formula, ModelLimit, Wff};
use winslett_theory::{Dependency, Theory};
use winslett_worlds::check_commutes;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_wff(rng: &mut Rng, ids: &[AtomId], depth: usize) -> Wff {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(8) {
            0 => Wff::t(),
            1 => Wff::f(),
            _ => {
                let a = Wff::Atom(ids[rng.below(ids.len())]);
                if rng.below(2) == 0 {
                    a
                } else {
                    a.not()
                }
            }
        };
    }
    match rng.below(5) {
        0 => random_wff(rng, ids, depth - 1).not(),
        1 => Formula::And(vec![
            random_wff(rng, ids, depth - 1),
            random_wff(rng, ids, depth - 1),
        ]),
        2 => Formula::Or(vec![
            random_wff(rng, ids, depth - 1),
            random_wff(rng, ids, depth - 1),
        ]),
        3 => Wff::implies(
            random_wff(rng, ids, depth - 1),
            random_wff(rng, ids, depth - 1),
        ),
        _ => Wff::iff(
            random_wff(rng, ids, depth - 1),
            random_wff(rng, ids, depth - 1),
        ),
    }
}

fn random_update(rng: &mut Rng, ids: &[AtomId]) -> Update {
    match rng.below(4) {
        0 => Update::insert(random_wff(rng, ids, 2), random_wff(rng, ids, 2)),
        1 => Update::delete(ids[rng.below(ids.len())], random_wff(rng, ids, 1)),
        2 => Update::modify(
            ids[rng.below(ids.len())],
            random_wff(rng, ids, 1),
            random_wff(rng, ids, 1),
        ),
        _ => Update::assert(random_wff(rng, ids, 2)),
    }
}

/// Builds a random untyped theory over one binary relation.
fn random_theory(rng: &mut Rng, num_atoms: usize, num_wffs: usize) -> (Theory, Vec<AtomId>) {
    let mut t = Theory::new();
    let r = t.declare_relation("R", 2).unwrap();
    let mut ids = Vec::new();
    for i in 0..num_atoms {
        let c1 = t.constant(&format!("k{}", i / 3));
        let c2 = t.constant(&format!("v{i}"));
        ids.push(t.atom(r, &[c1, c2]));
    }
    for _ in 0..num_wffs {
        let w = random_wff(rng, &ids, 3);
        t.assert_wff(&w);
    }
    (t, ids)
}

fn run_trials(simplify: SimplifyLevel, seed: u64, trials: usize) {
    let mut rng = Rng(seed);
    for trial in 0..trials {
        let n_atoms = 3 + rng.below(4);
        let n_wffs = 1 + rng.below(4);
        let (theory, ids) = random_theory(&mut rng, n_atoms, n_wffs);
        if !theory.is_consistent() {
            continue;
        }
        let before = theory.clone();
        let mut engine = GuaEngine::new(theory, GuaOptions::simplify_always(simplify));
        let n_updates = 1 + rng.below(3);
        let mut updates = Vec::new();
        for _ in 0..n_updates {
            let u = random_update(&mut rng, &ids);
            updates.push(u.clone());
            engine.apply(&u).expect("update applies");
        }
        let report = check_commutes(&before, &updates, &engine.theory, ModelLimit::default())
            .expect("diagram check runs");
        assert!(
            report.commutes,
            "trial {trial} (simplify={simplify:?}): {}\nupdates: {updates:?}",
            report.describe(&engine.theory)
        );
    }
}

#[test]
fn diagram_commutes_without_simplification() {
    run_trials(SimplifyLevel::None, 0xA5A5_0001, 120);
}

#[test]
fn diagram_commutes_with_fast_simplification() {
    run_trials(SimplifyLevel::Fast, 0xA5A5_0002, 120);
}

#[test]
fn diagram_commutes_with_full_simplification() {
    run_trials(SimplifyLevel::Full, 0xA5A5_0003, 60);
}

/// The simultaneous-update generalization (§4 reduction target): GUA's
/// `apply_simultaneous` must match the per-world simultaneous semantics.
#[test]
fn diagram_commutes_for_simultaneous_updates() {
    use winslett_ldml::canonicalize;
    use winslett_worlds::WorldsEngine;

    let mut rng = Rng(0xC0FFEE);
    for trial in 0..120 {
        let n_atoms = 3 + rng.below(3);
        let n_wffs = 1 + rng.below(3);
        let (theory, ids) = random_theory(&mut rng, n_atoms, n_wffs);
        if !theory.is_consistent() {
            continue;
        }
        let before = theory.clone();
        let level = match trial % 3 {
            0 => SimplifyLevel::None,
            1 => SimplifyLevel::Fast,
            _ => SimplifyLevel::Full,
        };
        let mut engine = GuaEngine::new(theory, GuaOptions::simplify_always(level));
        let batch: Vec<Update> = (0..(1 + rng.below(3)))
            .map(|_| random_update(&mut rng, &ids))
            .collect();
        engine
            .apply_simultaneous(&batch)
            .expect("simultaneous update applies");

        let mut baseline =
            WorldsEngine::from_theory(&before, ModelLimit::default()).expect("materializes");
        baseline
            .apply_simultaneous(&batch, &engine.theory)
            .expect("baseline applies");
        let expected = canonicalize(baseline.worlds().to_vec());
        let actual = canonicalize(
            engine
                .theory
                .alternative_worlds(ModelLimit::default())
                .expect("enumerable"),
        );
        assert_eq!(
            expected, actual,
            "trial {trial} (simplify={level:?}) batch {batch:?}"
        );
    }
}

/// For updates whose ω-atoms are pairwise disjoint AND whose selections
/// don't mention any other update's ω-atoms, simultaneous application
/// coincides with sequential application in any order — the independence
/// property one expects of a set-oriented DML.
#[test]
fn disjoint_simultaneous_equals_sequential_any_order() {
    use winslett_ldml::canonicalize;

    let mut rng = Rng(0xD15);
    for trial in 0..80 {
        // Partition 6 atoms into two blocks of 3; each update works only
        // within its own block.
        let n_wffs = 1 + rng.below(3);
        let (theory, ids) = random_theory(&mut rng, 6, n_wffs);
        if !theory.is_consistent() || ids.len() < 6 {
            continue;
        }
        let block_a = &ids[0..3];
        let block_b = &ids[3..6];
        let u1 = random_update(&mut rng, block_a);
        let u2 = random_update(&mut rng, block_b);

        let run_simultaneous = |level: SimplifyLevel| {
            let mut e = GuaEngine::new(theory.clone(), GuaOptions::simplify_always(level));
            e.apply_simultaneous(&[u1.clone(), u2.clone()]).unwrap();
            canonicalize(e.theory.alternative_worlds(ModelLimit::default()).unwrap())
        };
        let run_sequential = |first: &Update, second: &Update| {
            let mut e = GuaEngine::new(
                theory.clone(),
                GuaOptions::simplify_always(SimplifyLevel::Fast),
            );
            e.apply(first).unwrap();
            e.apply(second).unwrap();
            canonicalize(e.theory.alternative_worlds(ModelLimit::default()).unwrap())
        };

        let sim = run_simultaneous(SimplifyLevel::Fast);
        let seq12 = run_sequential(&u1, &u2);
        let seq21 = run_sequential(&u2, &u1);
        assert_eq!(sim, seq12, "trial {trial}: sim vs 1;2 for {u1:?}, {u2:?}");
        assert_eq!(sim, seq21, "trial {trial}: sim vs 2;1 for {u1:?}, {u2:?}");
    }
}

#[test]
fn diagram_commutes_with_dependencies() {
    let mut rng = Rng(0xBEEF_0001);
    for trial in 0..60 {
        let mut t = Theory::new();
        let p = t.declare_relation("P", 2).unwrap();
        let q = t.declare_relation("Q", 1).unwrap();
        t.add_dependency(Dependency::functional("fd", p, 2, &[0]).unwrap());
        t.add_dependency(Dependency::inclusion("inc", p, 2, q, &[0]).unwrap());
        let mut ids = Vec::new();
        let mut key_consts = Vec::new();
        for i in 0..2 {
            key_consts.push(t.constant(&format!("k{i}")));
        }
        let mut val_consts = Vec::new();
        for i in 0..2 {
            val_consts.push(t.constant(&format!("v{i}")));
        }
        for &k in &key_consts {
            for &v in &val_consts {
                ids.push(t.atom(p, &[k, v]));
            }
            ids.push(t.atom(q, &[k]));
        }
        // Build a dependency-respecting start state: one P tuple + its Q.
        let pk = ids[0];
        let qk = ids[2];
        t.assert_atom(pk);
        t.assert_atom(qk);
        for &other in &[ids[1], ids[3], ids[4], ids[5]] {
            t.assert_not_atom(other);
        }
        assert!(t.check_axioms_redundant().is_ok(), "start state legal");
        let before = t.clone();
        let mut engine = GuaEngine::new(
            t,
            GuaOptions::simplify_always(if trial % 2 == 0 {
                SimplifyLevel::None
            } else {
                SimplifyLevel::Fast
            }),
        );
        let u = random_update(&mut rng, &ids);
        engine.apply(&u).expect("update applies");
        let report = check_commutes(
            &before,
            std::slice::from_ref(&u),
            &engine.theory,
            ModelLimit::default(),
        )
        .expect("diagram check runs");
        assert!(
            report.commutes,
            "trial {trial}: {}\nupdate: {u:?}",
            report.describe(&engine.theory)
        );
        // Theorem 5's legality clause: the output is a legal extended
        // relational theory — in particular the dependency axioms remain
        // redundant (removable without changing models).
        engine
            .theory
            .check_axioms_redundant()
            .unwrap_or_else(|e| panic!("trial {trial}: output theory illegal: {e}\nupdate: {u:?}"));
    }
}

#[test]
fn diagram_commutes_with_type_axioms() {
    let mut rng = Rng(0xBEEF_0002);
    for trial in 0..60 {
        let mut t = Theory::new();
        let part = t.declare_attribute("PartNo").unwrap();
        let quan = t.declare_attribute("Quan").unwrap();
        let instock = t.declare_typed_relation("InStock", &[part, quan]).unwrap();
        let c32 = t.constant("32");
        let c5 = t.constant("5");
        let c9 = t.constant("9");
        let tup1 = t.atom(instock, &[c32, c5]);
        let tup2 = t.atom(instock, &[c32, c9]);
        let a32 = t.atom(part, &[c32]);
        let a5 = t.atom(quan, &[c5]);
        let a9 = t.atom(quan, &[c9]);
        // Legal start: tup1 present with its attributes; tup2 absent.
        t.assert_atom(tup1);
        t.assert_atom(a32);
        t.assert_atom(a5);
        t.assert_not_atom(tup2);
        t.assert_not_atom(a9);
        assert!(t.check_axioms_redundant().is_ok());
        let ids = vec![tup1, tup2, a32, a5, a9];
        let before = t.clone();
        let mut engine = GuaEngine::new(
            t,
            GuaOptions::simplify_always(if trial % 2 == 0 {
                SimplifyLevel::None
            } else {
                SimplifyLevel::Fast
            }),
        );
        let u = random_update(&mut rng, &ids);
        engine.apply(&u).expect("update applies");
        let report = check_commutes(
            &before,
            std::slice::from_ref(&u),
            &engine.theory,
            ModelLimit::default(),
        )
        .expect("diagram check runs");
        assert!(
            report.commutes,
            "trial {trial}: {}\nupdate: {u:?}",
            report.describe(&engine.theory)
        );
        // Theorem 5's legality clause for type axioms.
        engine
            .theory
            .check_axioms_redundant()
            .unwrap_or_else(|e| panic!("trial {trial}: output theory illegal: {e}\nupdate: {u:?}"));
    }
}
