//! LDML updates **with variables** (§4).
//!
//! "We concentrate on the concept of a ground update … updates with
//! variables can be reduced to the problem of performing a set of ground
//! updates simultaneously." This module is that reduction:
//!
//! ```text
//! DELETE Orders(?o, 32, ?q) WHERE T
//! MODIFY Stored(?p, bin1) TO BE Stored(?p, bin2) WHERE T
//! INSERT Counted(?p, 0) WHERE Stored(?p, bin1)
//! ```
//!
//! 1. the statement is parsed into patterns over `?`-variables;
//! 2. *generator* atoms (the DELETE/MODIFY target, plus the positive
//!    top-level conjuncts of the WHERE clause) are matched against the
//!    registered atoms, producing the finite set of bindings — every
//!    variable must occur in a generator (range restriction);
//! 3. each binding grounds the statement into an ordinary [`Update`];
//! 4. the resulting set is applied **simultaneously** via
//!    [`winslett_gua::GuaEngine::apply_simultaneous`], whose agreement with
//!    the per-world simultaneous semantics is property-tested.
//!
//! Sequential application would be wrong: with `MODIFY P(?x) TO BE Q(?x)`,
//! an early instance could enable or disable a later instance's selection.

use crate::error::DbError;
use rustc_hash::FxHashSet;
use winslett_ldml::Update;
use winslett_logic::{AtomId, ConstId, Formula, GroundAtom, PredId, PredicateKind, Wff};
use winslett_theory::Theory;

/// A term in a variable-update pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VarTerm {
    /// A variable, by index.
    Var(u16),
    /// An existing constant.
    Cst(ConstId),
    /// A constant name not yet in the vocabulary — legitimate in ω (an
    /// update may introduce new values); it matches nothing when used in a
    /// generator pattern.
    New(String),
}

/// An atom pattern in a variable update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VarAtom {
    /// The predicate.
    pub pred: PredId,
    /// Argument terms (constants, variables, or new constant names).
    pub args: Vec<VarTerm>,
}

/// A wff whose leaves are atom patterns.
pub type PatternWff = Formula<VarAtom>;

/// A parsed LDML statement with variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VarUpdate {
    /// `INSERT ω WHERE φ` — variables range over φ's positive conjuncts.
    Insert {
        /// Pattern ω.
        omega: PatternWff,
        /// Pattern φ.
        phi: PatternWff,
    },
    /// `DELETE t WHERE φ` — variables range over t (and φ's positives).
    Delete {
        /// Target pattern.
        t: VarAtom,
        /// Pattern φ.
        phi: PatternWff,
    },
    /// `MODIFY t TO BE ω WHERE φ`.
    Modify {
        /// Target pattern.
        t: VarAtom,
        /// Pattern ω.
        omega: PatternWff,
        /// Pattern φ.
        phi: PatternWff,
    },
}

/// A parsed variable update plus its variable names.
#[derive(Clone, Debug)]
pub struct VarStatement {
    /// The statement.
    pub update: VarUpdate,
    /// Variable names, by index.
    pub var_names: Vec<String>,
}

impl VarStatement {
    /// Parses a variable LDML statement against a theory's vocabulary.
    pub fn parse(src: &str, theory: &Theory) -> Result<VarStatement, DbError> {
        let mut vars: Vec<String> = Vec::new();
        let trimmed = src.trim();
        let (keyword, rest) = split_first_word(trimmed);
        let update = match keyword.to_ascii_uppercase().as_str() {
            "INSERT" => {
                let (omega_src, phi_src) =
                    split_keyword(rest, "WHERE").ok_or_else(|| DbError::Query {
                        message: "INSERT requires WHERE".into(),
                    })?;
                VarUpdate::Insert {
                    omega: parse_pattern(omega_src, theory, &mut vars)?,
                    phi: parse_pattern(phi_src, theory, &mut vars)?,
                }
            }
            "DELETE" => {
                let (t_src, phi_src) =
                    split_keyword(rest, "WHERE").ok_or_else(|| DbError::Query {
                        message: "DELETE requires WHERE".into(),
                    })?;
                let t = parse_target(t_src, theory, &mut vars)?;
                VarUpdate::Delete {
                    t,
                    phi: parse_pattern(phi_src, theory, &mut vars)?,
                }
            }
            "MODIFY" => {
                let (t_src, rest2) =
                    split_keyword(rest, "TO BE").ok_or_else(|| DbError::Query {
                        message: "MODIFY requires TO BE".into(),
                    })?;
                let (omega_src, phi_src) =
                    split_keyword(rest2, "WHERE").ok_or_else(|| DbError::Query {
                        message: "MODIFY requires WHERE".into(),
                    })?;
                let t = parse_target(t_src, theory, &mut vars)?;
                VarUpdate::Modify {
                    t,
                    omega: parse_pattern(omega_src, theory, &mut vars)?,
                    phi: parse_pattern(phi_src, theory, &mut vars)?,
                }
            }
            other => {
                return Err(DbError::Query {
                    message: format!(
                        "unsupported variable operator `{other}` (ASSERT takes no variables)"
                    ),
                })
            }
        };
        let stmt = VarStatement {
            update,
            var_names: vars,
        };
        stmt.check_range_restriction()?;
        Ok(stmt)
    }

    /// The generator patterns: the DELETE/MODIFY target plus positive
    /// top-level conjuncts of φ.
    fn generators(&self) -> Vec<VarAtom> {
        let mut out = Vec::new();
        let phi = match &self.update {
            VarUpdate::Insert { phi, .. } => phi,
            VarUpdate::Delete { t, phi } => {
                out.push(t.clone());
                phi
            }
            VarUpdate::Modify { t, phi, .. } => {
                out.push(t.clone());
                phi
            }
        };
        collect_positive_conjunct_atoms(phi, &mut out);
        out
    }

    /// Range restriction: every variable occurs in a generator.
    fn check_range_restriction(&self) -> Result<(), DbError> {
        let mut covered: FxHashSet<u16> = FxHashSet::default();
        for g in self.generators() {
            for t in &g.args {
                if let VarTerm::Var(v) = t {
                    covered.insert(*v);
                }
            }
        }
        for v in 0..self.var_names.len() as u16 {
            if !covered.contains(&v) {
                return Err(DbError::Query {
                    message: format!(
                        "variable ?{} is not range-restricted (must occur in the target \
                         or a positive conjunct of WHERE)",
                        self.var_names[v as usize]
                    ),
                });
            }
        }
        Ok(())
    }

    /// Expands the statement into its set of ground updates over `theory`'s
    /// registered atoms. The set is deduplicated and deterministic.
    pub fn expand(&self, theory: &mut Theory) -> Result<Vec<Update>, DbError> {
        let generators = self.generators();
        let mut bindings: Vec<Vec<Option<ConstId>>> = Vec::new();
        let mut env: Vec<Option<ConstId>> = vec![None; self.var_names.len()];
        enumerate_bindings(&generators, 0, theory, &mut env, &mut bindings);
        bindings.sort();
        bindings.dedup();

        let mut out: Vec<Update> = Vec::with_capacity(bindings.len());
        let mut seen: FxHashSet<Update> = FxHashSet::default();
        for binding in &bindings {
            let u = match &self.update {
                VarUpdate::Insert { omega, phi } => Update::Insert {
                    omega: ground_wff(omega, binding, theory),
                    phi: ground_wff(phi, binding, theory),
                },
                VarUpdate::Delete { t, phi } => Update::Delete {
                    t: ground_atom(t, binding, theory),
                    phi: ground_wff(phi, binding, theory),
                },
                VarUpdate::Modify { t, omega, phi } => Update::Modify {
                    t: ground_atom(t, binding, theory),
                    omega: ground_wff(omega, binding, theory),
                    phi: ground_wff(phi, binding, theory),
                },
            };
            if seen.insert(u.clone()) {
                out.push(u);
            }
        }
        Ok(out)
    }
}

fn split_first_word(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

/// Case-insensitive whole-word keyword split at parenthesis depth 0.
fn split_keyword<'a>(s: &'a str, keyword: &str) -> Option<(&'a str, &'a str)> {
    let bytes = s.as_bytes();
    let upper = s.to_ascii_uppercase();
    let ubytes = upper.as_bytes();
    let kw = keyword.to_ascii_uppercase();
    let kbytes = kw.as_bytes();
    let mut depth = 0i32;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            _ => {
                if depth == 0 && ubytes[i..].starts_with(kbytes) {
                    let before_ok = i == 0 || bytes[i - 1].is_ascii_whitespace();
                    let after = i + kbytes.len();
                    let after_ok = after >= bytes.len() || bytes[after].is_ascii_whitespace();
                    if before_ok && after_ok {
                        return Some((&s[..i], &s[after..]));
                    }
                }
            }
        }
    }
    None
}

fn parse_target(src: &str, theory: &Theory, vars: &mut Vec<String>) -> Result<VarAtom, DbError> {
    match parse_pattern(src, theory, vars)? {
        Formula::Atom(a) => Ok(a),
        _ => Err(DbError::Query {
            message: "DELETE/MODIFY target must be a single atom pattern".into(),
        }),
    }
}

/// A compact recursive-descent parser for pattern wffs — the grammar of
/// `winslett_logic::parse_wff` with `?var` terms added.
fn parse_pattern(
    src: &str,
    theory: &Theory,
    vars: &mut Vec<String>,
) -> Result<PatternWff, DbError> {
    let mut p = PatParser {
        src: src.trim(),
        pos: 0,
        theory,
        vars,
    };
    p.skip_ws();
    let w = p.parse_iff()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(DbError::Query {
            message: format!("trailing input in pattern at byte {}", p.pos),
        });
    }
    Ok(w)
}

struct PatParser<'a> {
    src: &'a str,
    pos: usize,
    theory: &'a Theory,
    vars: &'a mut Vec<String>,
}

impl PatParser<'_> {
    fn err(&self, m: impl Into<String>) -> DbError {
        DbError::Query { message: m.into() }
    }

    fn skip_ws(&mut self) {
        let b = self.src.as_bytes();
        while self.pos < b.len() && b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.src[self.pos..].starts_with(s) {
            self.pos += s.len();
            self.skip_ws();
            true
        } else {
            false
        }
    }

    fn eat_any(&mut self, opts: &[&str]) -> bool {
        opts.iter().any(|s| self.eat(s))
    }

    fn parse_iff(&mut self) -> Result<PatternWff, DbError> {
        let mut lhs = self.parse_imp()?;
        while self.eat_any(&["<->", "↔"]) {
            let rhs = self.parse_imp()?;
            lhs = Formula::Iff(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_imp(&mut self) -> Result<PatternWff, DbError> {
        let lhs = self.parse_or()?;
        if self.eat_any(&["->", "→"]) {
            let rhs = self.parse_imp()?;
            Ok(Formula::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<PatternWff, DbError> {
        let mut parts = vec![self.parse_and()?];
        while self.eat_any(&["\\/", "∨", "|"]) {
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Formula::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<PatternWff, DbError> {
        let mut parts = vec![self.parse_neg()?];
        while self.eat_any(&["/\\", "∧", "&"]) {
            parts.push(self.parse_neg()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Formula::And(parts)
        })
    }

    fn parse_neg(&mut self) -> Result<PatternWff, DbError> {
        if self.eat_any(&["!", "~", "¬"]) {
            Ok(Formula::Not(Box::new(self.parse_neg()?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<PatternWff, DbError> {
        if self.eat("(") {
            let inner = self.parse_iff()?;
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(inner);
        }
        let ident = self.parse_ident()?;
        if ident == "T" && !self.src[self.pos..].starts_with('(') {
            self.skip_ws();
            return Ok(Formula::Truth(true));
        }
        if ident == "F" && !self.src[self.pos..].starts_with('(') {
            self.skip_ws();
            return Ok(Formula::Truth(false));
        }
        // Atom.
        let pred = self
            .theory
            .vocab
            .find_predicate(&ident)
            .ok_or_else(|| self.err(format!("unknown predicate `{ident}`")))?;
        let decl = self.theory.vocab.predicate(pred);
        if decl.kind == PredicateKind::PredicateConstant {
            return Err(self.err(format!(
                "predicate constant `{ident}` may not appear in updates"
            )));
        }
        let mut args = Vec::new();
        if self.eat("(") {
            loop {
                self.skip_ws();
                if self.src[self.pos..].starts_with('?') {
                    self.pos += 1;
                    let name = self.parse_ident()?;
                    let idx = match self.vars.iter().position(|v| *v == name) {
                        Some(i) => i,
                        None => {
                            self.vars.push(name);
                            self.vars.len() - 1
                        }
                    };
                    args.push(VarTerm::Var(idx as u16));
                } else {
                    let name = self.parse_ident()?;
                    match self.theory.vocab.find_constant(&name) {
                        Some(c) => args.push(VarTerm::Cst(c)),
                        None => args.push(VarTerm::New(name)),
                    }
                }
                self.skip_ws();
                if self.eat(",") {
                    continue;
                }
                if self.eat(")") {
                    break;
                }
                return Err(self.err("expected ',' or ')'"));
            }
        }
        if args.len() != decl.arity {
            return Err(self.err(format!(
                "predicate `{ident}` has arity {} but was given {} arguments",
                decl.arity,
                args.len()
            )));
        }
        self.skip_ws();
        Ok(Formula::Atom(VarAtom { pred, args }))
    }

    fn parse_ident(&mut self) -> Result<String, DbError> {
        let b = self.src.as_bytes();
        let start = self.pos;
        while self.pos < b.len() {
            let c = b[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err(format!("expected identifier at byte {start}")));
        }
        Ok(self.src[start..self.pos].to_owned())
    }
}

fn collect_positive_conjunct_atoms(w: &PatternWff, out: &mut Vec<VarAtom>) {
    match w {
        Formula::Atom(a) => out.push(a.clone()),
        Formula::And(xs) => {
            for x in xs {
                collect_positive_conjunct_atoms(x, out);
            }
        }
        _ => {}
    }
}

fn enumerate_bindings(
    generators: &[VarAtom],
    pos: usize,
    theory: &Theory,
    env: &mut Vec<Option<ConstId>>,
    out: &mut Vec<Vec<Option<ConstId>>>,
) {
    if pos == generators.len() {
        out.push(env.clone());
        return;
    }
    let pattern = &generators[pos];
    let candidates: Vec<AtomId> = theory.registry.atoms_of(pattern.pred).collect();
    for cand in candidates {
        let ground = theory.atoms.resolve(cand).clone();
        let mut trail: Vec<u16> = Vec::new();
        if unify_pattern(pattern, &ground, env, &mut trail) {
            enumerate_bindings(generators, pos + 1, theory, env, out);
        }
        for v in trail {
            env[v as usize] = None;
        }
    }
}

fn unify_pattern(
    pattern: &VarAtom,
    ground: &GroundAtom,
    env: &mut [Option<ConstId>],
    trail: &mut Vec<u16>,
) -> bool {
    if pattern.pred != ground.pred || pattern.args.len() != ground.args.len() {
        return false;
    }
    for (t, &c) in pattern.args.iter().zip(ground.args.iter()) {
        match t {
            VarTerm::New(_) => return false,
            VarTerm::Cst(k) => {
                if *k != c {
                    return false;
                }
            }
            VarTerm::Var(v) => match env[*v as usize] {
                Some(bound) => {
                    if bound != c {
                        return false;
                    }
                }
                None => {
                    env[*v as usize] = Some(c);
                    trail.push(*v);
                }
            },
        }
    }
    true
}

fn ground_atom(a: &VarAtom, env: &[Option<ConstId>], theory: &mut Theory) -> AtomId {
    let args: Vec<ConstId> = a
        .args
        .iter()
        .map(|t| match t {
            VarTerm::Cst(c) => *c,
            VarTerm::Var(v) => env[*v as usize].expect("range-restricted"),
            VarTerm::New(name) => theory.vocab.constant(name),
        })
        .collect();
    theory.atoms.intern(GroundAtom::new(a.pred, &args))
}

fn ground_wff(w: &PatternWff, env: &[Option<ConstId>], theory: &mut Theory) -> Wff {
    match w {
        Formula::Truth(b) => Formula::Truth(*b),
        Formula::Atom(a) => Formula::Atom(ground_atom(a, env, theory)),
        Formula::Not(x) => Formula::Not(Box::new(ground_wff(x, env, theory))),
        Formula::And(xs) => Formula::And(xs.iter().map(|x| ground_wff(x, env, theory)).collect()),
        Formula::Or(xs) => Formula::Or(xs.iter().map(|x| ground_wff(x, env, theory)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(ground_wff(a, env, theory)),
            Box::new(ground_wff(b, env, theory)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(ground_wff(a, env, theory)),
            Box::new(ground_wff(b, env, theory)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders_theory() -> Theory {
        let mut t = Theory::new();
        let orders = t.declare_relation("Orders", 3).unwrap();
        let add = |t: &mut Theory, o: &str, p: &str, q: &str| {
            let co = t.constant(o);
            let cp = t.constant(p);
            let cq = t.constant(q);
            let a = t.atom(orders, &[co, cp, cq]);
            t.assert_atom(a);
        };
        add(&mut t, "700", "32", "9");
        add(&mut t, "701", "32", "5");
        add(&mut t, "702", "33", "5");
        t
    }

    #[test]
    fn parse_and_expand_delete() {
        let mut t = orders_theory();
        let stmt = VarStatement::parse("DELETE Orders(?o, 32, ?q) WHERE T", &t).unwrap();
        assert_eq!(stmt.var_names, vec!["o", "q"]);
        let updates = stmt.expand(&mut t).unwrap();
        assert_eq!(updates.len(), 2); // orders 700 and 701 match part 32
        assert!(updates.iter().all(|u| matches!(u, Update::Delete { .. })));
    }

    #[test]
    fn expand_insert_ranges_over_where() {
        let mut t = orders_theory();
        let stmt =
            VarStatement::parse("INSERT Orders(?o, 32, 0) WHERE Orders(?o, 32, ?q)", &t).unwrap();
        let updates = stmt.expand(&mut t).unwrap();
        // Bindings: (700,9) and (701,5) → two grounded inserts.
        assert_eq!(updates.len(), 2);
    }

    #[test]
    fn range_restriction_enforced() {
        let t = orders_theory();
        let r = VarStatement::parse("INSERT Orders(?o, 32, 1) WHERE T", &t);
        assert!(matches!(r, Err(DbError::Query { .. })));
        // Variables only under negation don't range either.
        let r = VarStatement::parse("INSERT Orders(700,32,1) WHERE !Orders(?o,33,?q)", &t);
        assert!(matches!(r, Err(DbError::Query { .. })));
    }

    #[test]
    fn modify_with_shared_variable() {
        let mut t = orders_theory();
        let stmt = VarStatement::parse(
            "MODIFY Orders(?o, 32, ?q) TO BE Orders(?o, 32, 0) WHERE T",
            &t,
        )
        .unwrap();
        let updates = stmt.expand(&mut t).unwrap();
        assert_eq!(updates.len(), 2);
        assert!(updates.iter().all(|u| matches!(u, Update::Modify { .. })));
    }

    #[test]
    fn unknown_predicate_and_arity_errors() {
        let t = orders_theory();
        assert!(VarStatement::parse("DELETE Nope(?x) WHERE T", &t).is_err());
        assert!(VarStatement::parse("DELETE Orders(?x, 32) WHERE T", &t).is_err());
        assert!(VarStatement::parse("ASSERT Orders(?x, 32, 1)", &t).is_err());
    }

    #[test]
    fn no_matches_expands_to_empty_set() {
        let mut t = orders_theory();
        let stmt = VarStatement::parse("DELETE Orders(?o, 99, ?q) WHERE T", &t).unwrap();
        let updates = stmt.expand(&mut t).unwrap();
        assert!(updates.is_empty());
    }

    #[test]
    fn foreign_constant_in_pattern_matches_nothing() {
        let mut t = orders_theory();
        let stmt = VarStatement::parse("DELETE Orders(?o, neverseen, ?q) WHERE T", &t).unwrap();
        assert!(stmt.expand(&mut t).unwrap().is_empty());
    }
}
