//! MVCC-style snapshot reads: pin a theory generation, query it forever.
//!
//! The serving layer (`winslett-serve`) runs one writer and many readers.
//! The writer owns the [`DurableDatabase`](crate::DurableDatabase) and,
//! after each committed update, publishes an immutable [`TheorySnapshot`] —
//! the theory cloned once and parked behind an `Arc`, stamped with the
//! [`Theory::generation`] it was taken at. Readers clone the `Arc` (cheap)
//! and never touch the writer again: a long analytical query runs against
//! its pinned snapshot while the writer commits on.
//!
//! Reading still needs *mutable* machinery — parsing a wff interns atoms,
//! and SAT solving mutates the solver — so each reader holds a
//! [`SnapshotReader`]: a private copy of the snapshot's symbol tables plus
//! a private [`EntailmentSession`] encoded **once per snapshot** and reused
//! across every query the connection sends at that generation. Atoms a
//! query mentions that the snapshot has never interned are outside every
//! completion axiom, hence false in every world: the reader folds them to
//! `F` before the session sees them, so answers agree exactly with what
//! [`LogicalDatabase`](crate::LogicalDatabase) would say if the same
//! question were asked at that generation.

use crate::error::DbError;
use crate::explain::{Explanation, Verdict};
use crate::query::{Answers, Query};
use std::sync::Arc;
use winslett_logic::{
    parse_wff, AtomTable, EntailmentSession, ParseContext, SatResult, SessionStats, Vocabulary, Wff,
};
use winslett_theory::Theory;

/// An immutable, generation-stamped view of a theory, shared by `Arc`.
///
/// Cloning a `TheorySnapshot` clones the `Arc`, not the theory — handing
/// the same snapshot to a hundred readers costs a hundred refcounts.
#[derive(Clone, Debug)]
pub struct TheorySnapshot {
    theory: Arc<Theory>,
    generation: u64,
}

impl TheorySnapshot {
    /// Freezes `theory` into a snapshot (one clone; the only deep copy in
    /// the snapshot lifecycle).
    pub fn capture(theory: &Theory) -> Self {
        Self::from_theory(theory.clone())
    }

    /// Wraps an owned theory without copying.
    pub fn from_theory(theory: Theory) -> Self {
        let generation = theory.generation();
        TheorySnapshot {
            theory: Arc::new(theory),
            generation,
        }
    }

    /// The frozen theory.
    pub fn theory(&self) -> &Theory {
        &self.theory
    }

    /// The [`Theory::generation`] this snapshot was taken at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A weak handle on the frozen theory's allocation: lets an observer
    /// (the server's retained-generation gauge) test whether this
    /// generation is still held alive anywhere — by a snapshot clone or a
    /// [`SnapshotReader`] — without extending its lifetime.
    pub fn theory_weak(&self) -> std::sync::Weak<Theory> {
        Arc::downgrade(&self.theory)
    }

    /// A fresh per-connection reader over this snapshot.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::new(self.clone())
    }
}

/// A private read session over one [`TheorySnapshot`].
///
/// Construction clones the snapshot's vocabulary and atom table (so query
/// parsing can intern without mutating the shared theory) and encodes the
/// theory into a dedicated [`EntailmentSession`]; every subsequent query
/// is assumption-solves against that one encoding.
pub struct SnapshotReader {
    snapshot: TheorySnapshot,
    /// Private language copy: interning a query's atoms must not race the
    /// writer or other readers.
    vocab: Vocabulary,
    atoms: AtomTable,
    session: EntailmentSession,
    /// Atom-universe size of the underlying theory; atoms interned past
    /// this bound by query parsing are false in every world.
    universe: usize,
}

impl SnapshotReader {
    /// Builds a reader (clones the symbol tables, encodes the session).
    pub fn new(snapshot: TheorySnapshot) -> Self {
        let theory = snapshot.theory();
        SnapshotReader {
            vocab: theory.vocab.clone(),
            atoms: theory.atoms.clone(),
            session: theory.fresh_entailment_session(),
            universe: theory.num_atoms(),
            snapshot,
        }
    }

    /// The generation this reader is pinned at.
    pub fn generation(&self) -> u64 {
        self.snapshot.generation()
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &TheorySnapshot {
        &self.snapshot
    }

    /// Work counters of the private session.
    pub fn session_stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// Parses a ground wff strictly against the private symbol tables and
    /// folds atoms outside the snapshot's universe to `F` (they are
    /// unregistered, hence false in every alternative world).
    fn parse(&mut self, src: &str) -> Result<Wff, DbError> {
        let mut ctx = ParseContext::strict(&mut self.vocab, &mut self.atoms);
        let wff = parse_wff(src, &mut ctx)?;
        let universe = self.universe;
        Ok(wff.subst_atoms(&mut |a| {
            if a.index() < universe {
                Wff::Atom(*a)
            } else {
                Wff::f()
            }
        }))
    }

    /// Whether `src` is true in every alternative world of the snapshot.
    pub fn is_certain(&mut self, src: &str) -> Result<bool, DbError> {
        let wff = self.parse(src)?;
        Ok(self.session.entails(&wff))
    }

    /// Whether `src` is true in some alternative world of the snapshot.
    pub fn is_possible(&mut self, src: &str) -> Result<bool, DbError> {
        let wff = self.parse(src)?;
        Ok(self.session.consistent_with(&wff))
    }

    /// The `(possible, certain)` pair for `src` — one activation literal,
    /// at most two solves.
    pub fn decide(&mut self, src: &str) -> Result<(bool, bool), DbError> {
        let wff = self.parse(src)?;
        Ok(self.session.decide(&wff))
    }

    /// Explains `src`: three-valued verdict plus witness/counterexample
    /// worlds, extracted from the private session (no world enumeration).
    pub fn explain(&mut self, src: &str) -> Result<Explanation, DbError> {
        let wff = self.parse(src)?;
        let l = self.session.literal_for(&wff);
        let witness = match self.session.solve_under(&[l]) {
            SatResult::Sat(model) => Some(self.snapshot.theory().project_model_to_world(&model)),
            SatResult::Unsat => None,
        };
        let counter = match self.session.solve_under(&[l.negate()]) {
            SatResult::Sat(model) => Some(self.snapshot.theory().project_model_to_world(&model)),
            SatResult::Unsat => None,
        };
        let verdict = match (&witness, &counter) {
            (Some(_), Some(_)) => Verdict::Uncertain,
            (Some(_), None) => Verdict::Certain,
            (None, Some(_)) => Verdict::Impossible,
            (None, None) => Verdict::Inconsistent,
        };
        let render = |w: &winslett_logic::BitSet| self.snapshot.theory().format_world(w);
        Ok(Explanation {
            verdict,
            witness: witness.as_ref().map(render),
            counterexample: counter.as_ref().map(render),
        })
    }

    /// Runs a conjunctive query against the snapshot through the private
    /// session ([`Query::evaluate_with_session`]).
    pub fn query(&mut self, src: &str) -> Result<Answers, DbError> {
        let q = Query::parse(src, self.snapshot.theory())?;
        q.evaluate_with_session(self.snapshot.theory(), &mut self.session)
    }

    /// Whether the snapshot has at least one alternative world.
    pub fn is_consistent(&mut self) -> bool {
        self.session.is_consistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::LogicalDatabase;

    fn orders_db() -> LogicalDatabase {
        let mut db = LogicalDatabase::new();
        db.declare_relation("Orders", 3).unwrap();
        db.declare_relation("InStock", 2).unwrap();
        db.load_fact("Orders", &["700", "32", "9"]).unwrap();
        db.load_fact("InStock", &["32", "1"]).unwrap();
        db
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut db = orders_db();
        let snap = TheorySnapshot::capture(db.theory());
        let pinned_gen = snap.generation();
        db.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        assert!(db.theory().generation() > pinned_gen);
        // The live database no longer has the tuple; the snapshot still does.
        assert!(db.is_certain("!Orders(700,32,9)").unwrap());
        let mut reader = snap.reader();
        assert!(reader.is_certain("Orders(700,32,9)").unwrap());
        assert_eq!(reader.generation(), pinned_gen);
    }

    #[test]
    fn dropping_reader_and_snapshot_releases_the_theory_generation() {
        // The retention contract behind the server's pinned snapshots: a
        // pinned generation is held alive by exactly the reader + snapshot
        // Arc clones, so reaping an abandoned connection (which drops its
        // reader) must actually free the pre-compaction theory.
        let db = orders_db();
        let snap = TheorySnapshot::capture(db.theory());
        let weak = std::sync::Arc::downgrade(&snap.theory);
        let reader = snap.reader();
        drop(snap);
        assert!(
            weak.upgrade().is_some(),
            "reader must keep its snapshot's theory alive"
        );
        drop(reader);
        assert!(
            weak.upgrade().is_none(),
            "dropping the last reader must release the pinned generation"
        );
    }

    #[test]
    fn reader_matches_live_database_verdicts() {
        let mut db = orders_db();
        db.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
            .unwrap();
        let snap = TheorySnapshot::capture(db.theory());
        let mut reader = snap.reader();
        for wff in [
            "Orders(700,32,9)",
            "Orders(100,32,1)",
            "Orders(100,32,1) | Orders(100,32,7)",
            "!InStock(32,1)",
            "Orders(100,32,1) & Orders(100,32,7)",
        ] {
            assert_eq!(
                reader.is_certain(wff).unwrap(),
                db.is_certain(wff).unwrap(),
                "certain({wff})"
            );
            assert_eq!(
                reader.is_possible(wff).unwrap(),
                db.is_possible(wff).unwrap(),
                "possible({wff})"
            );
            let (possible, certain) = reader.decide(wff).unwrap();
            assert_eq!(possible, db.is_possible(wff).unwrap());
            assert_eq!(certain, db.is_certain(wff).unwrap());
        }
    }

    #[test]
    fn reader_query_matches_live_query() {
        let mut db = orders_db();
        db.execute("INSERT Orders(800,32,5) WHERE T").unwrap();
        db.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
            .unwrap();
        let snap = TheorySnapshot::capture(db.theory());
        let mut reader = snap.reader();
        for q in [
            "Orders(?o, 32, ?q)",
            "Orders(?o, 32, ?q) & !InStock(32, ?q)",
        ] {
            assert_eq!(reader.query(q).unwrap(), db.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn foreign_atoms_fold_to_false_not_error() {
        let db = orders_db();
        let snap = TheorySnapshot::capture(db.theory());
        let mut reader = snap.reader();
        // `Orders(700,32,1)` mentions only known constants but was never
        // interned as an atom in the snapshot: certainly false, possibly
        // false — and its negation certainly true.
        assert!(!reader.is_possible("Orders(700,32,1)").unwrap());
        assert!(reader.is_certain("!Orders(700,32,1)").unwrap());
        // The shared theory's atom table is untouched by the probe.
        assert_eq!(snap.theory().num_atoms(), reader.universe);
        // Unknown predicates are still strict errors.
        assert!(reader.is_certain("Nope(1)").is_err());
    }

    #[test]
    fn declared_but_empty_relation_folds_closed_world() {
        // A relation that was declared but never populated interns no
        // atoms, so every ground atom over it sits outside the snapshot's
        // universe: certainly false under completion, not a parse error.
        let mut db = orders_db();
        db.declare_relation("Discontinued", 1).unwrap();
        let snap = TheorySnapshot::capture(db.theory());
        let mut reader = snap.reader();
        assert!(!reader.is_possible("Discontinued(32)").unwrap());
        assert!(reader.is_certain("!Discontinued(32)").unwrap());
        // Exactly what the live database answers for the same probe.
        assert_eq!(
            reader.is_certain("!Discontinued(32)").unwrap(),
            db.is_certain("!Discontinued(32)").unwrap()
        );
        // Folding composes under connectives: the dead disjunct drops out.
        assert!(reader
            .is_certain("Orders(700,32,9) | Discontinued(32)")
            .unwrap());
        assert!(!reader
            .is_possible("Orders(700,32,9) & Discontinued(32)")
            .unwrap());
    }

    #[test]
    fn atoms_minted_after_pin_stay_false_in_the_snapshot() {
        let mut db = orders_db();
        let snap = TheorySnapshot::capture(db.theory());
        // `Orders(700,32,1)` uses only constants the snapshot knows, but
        // the atom itself is interned by this later write: it exists in
        // the live theory, not in the pinned universe.
        db.execute("INSERT Orders(700,32,1) WHERE T").unwrap();
        assert!(db.is_certain("Orders(700,32,1)").unwrap());
        let mut reader = snap.reader();
        assert!(!reader.is_possible("Orders(700,32,1)").unwrap());
        assert!(reader.is_certain("!Orders(700,32,1)").unwrap());
        // The probe interned the atom only in the reader's private table;
        // the shared snapshot stays frozen, and a second reader over the
        // same snapshot starts from the pinned universe again.
        assert_eq!(snap.theory().num_atoms(), reader.universe);
        let mut second = snap.reader();
        assert_eq!(second.universe, reader.universe);
        assert!(!second.is_possible("Orders(700,32,1)").unwrap());
        // Constants minted after the pin are a different case: the strict
        // parse has never seen them, so the probe is an error, not a
        // silent false.
        db.execute("INSERT Orders(900,32,1) WHERE T").unwrap();
        assert!(reader.is_certain("Orders(900,32,1)").is_err());
    }

    #[test]
    fn reader_explain_matches_live_explain() {
        let mut db = orders_db();
        db.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
            .unwrap();
        let snap = TheorySnapshot::capture(db.theory());
        let mut reader = snap.reader();
        for wff in ["Orders(700,32,9)", "Orders(100,32,1)", "!InStock(32,1)"] {
            let live = db.explain(wff).unwrap();
            let snap_e = reader.explain(wff).unwrap();
            assert_eq!(live.verdict, snap_e.verdict, "{wff}");
            // Witness worlds may differ (any model is a legal witness);
            // presence/absence must agree.
            assert_eq!(live.witness.is_some(), snap_e.witness.is_some());
            assert_eq!(
                live.counterexample.is_some(),
                snap_e.counterexample.is_some()
            );
        }
    }

    #[test]
    fn session_is_reused_across_queries_at_one_snapshot() {
        let db = orders_db();
        let snap = TheorySnapshot::capture(db.theory());
        let mut reader = snap.reader();
        reader.is_certain("Orders(700,32,9)").unwrap();
        reader.is_certain("Orders(700,32,9)").unwrap();
        reader.is_possible("Orders(700,32,9)").unwrap();
        let stats = reader.session_stats();
        // The wff was encoded once; later asks hit the literal cache.
        assert_eq!(stats.encoded_wffs, 1);
        assert!(stats.encode_reuse_hits >= 2);
    }

    #[test]
    fn cloning_a_snapshot_shares_the_theory() {
        let db = orders_db();
        let snap = TheorySnapshot::capture(db.theory());
        let other = snap.clone();
        assert!(Arc::ptr_eq(&snap.theory, &other.theory));
        assert_eq!(snap.generation(), other.generation());
    }
}
