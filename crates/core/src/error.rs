//! Error type for the database façade.

use std::fmt;

/// Errors surfaced by [`crate::LogicalDatabase`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    /// From the theory layer.
    Theory(winslett_theory::TheoryError),
    /// From LDML parsing/validation.
    Ldml(winslett_ldml::LdmlError),
    /// From the update algorithm.
    Gua(winslett_gua::GuaError),
    /// From world materialization.
    Worlds(winslett_worlds::WorldsError),
    /// From the logic kernel (query parsing).
    Logic(winslett_logic::LogicError),
    /// A query used an unknown variable or malformed syntax.
    Query {
        /// Description of the defect.
        message: String,
    },
    /// A null value was declared with an empty candidate domain.
    EmptyNullDomain {
        /// The null's name.
        name: String,
    },
    /// A persisted artifact (theory dump or WAL) carries a format version
    /// this build does not understand. Refusing loudly beats silently
    /// misreading a future format.
    UnsupportedVersion {
        /// Which artifact: `"theory dump"` or `"wal"`.
        what: &'static str,
        /// The version found in the artifact.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
    /// An update handed to [`crate::ReplayDatabase`] references atom ids
    /// that were never interned in that database's theory — it was parsed
    /// against a different (richer) theory. Use
    /// [`crate::ReplayDatabase::update_synced`] to adopt the richer
    /// language first.
    ForeignUpdate {
        /// The first out-of-range atom id in the update.
        atom_id: u32,
        /// The number of atoms interned in the replay theory.
        num_atoms: usize,
    },
    /// The WAL suffix does not meet the checkpoint: the first surviving
    /// record's LSN skips past the LSN the snapshot is current through,
    /// so replaying it would reconstruct a state the primary never
    /// acknowledged. Raised by recovery and by replica catch-up.
    LsnGap {
        /// Highest LSN the suffix may start at (the snapshot's LSN, or
        /// the subscriber's requested cursor).
        expected: u64,
        /// The LSN actually found at the boundary.
        found: u64,
    },
    /// A record was refused at mint time because its serialized payload
    /// exceeds [`crate::wal::MAX_RECORD_LEN`] — the bound that keeps every
    /// WAL record shippable inside one wire frame. The database state is
    /// unchanged; nothing was journaled.
    RecordTooLarge {
        /// Serialized payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// A storage-layer failure (I/O error, or an injected fault in tests).
    Storage {
        /// Stringified cause.
        message: String,
    },
    /// A persisted artifact is structurally corrupt beyond the WAL's
    /// tolerate-and-truncate tail handling (e.g. bad magic bytes).
    Corrupt {
        /// What was found wrong.
        message: String,
    },
    /// Misuse of the background-compaction protocol on
    /// [`crate::DurableDatabase`] (e.g. installing a compacted theory
    /// without an outstanding capture).
    Compaction {
        /// What went wrong.
        message: String,
    },
    /// A write conflicts with locks held by an open transaction and the
    /// caller cannot (or will not) wait for them.
    TxnConflict {
        /// What conflicted, naming the contended lock key.
        message: String,
    },
    /// A lock acquisition gave up at its deadline — the deadlock-avoidance
    /// bound of [`crate::txn::LockTable::lock_wait`].
    TxnTimeout {
        /// What timed out, naming the contended lock key.
        message: String,
    },
    /// A transaction operation referenced an id that is not open (never
    /// begun, or already committed/rolled back).
    TxnUnknown {
        /// The offending transaction id.
        txn: u64,
    },
    /// A checkpoint was refused because transactions are open: a snapshot
    /// boundary must never strand the early intents of a transaction that
    /// later commits.
    TxnOpen {
        /// How many transactions were open.
        active: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Theory(e) => write!(f, "{e}"),
            DbError::Ldml(e) => write!(f, "{e}"),
            DbError::Gua(e) => write!(f, "{e}"),
            DbError::Worlds(e) => write!(f, "{e}"),
            DbError::Logic(e) => write!(f, "{e}"),
            DbError::Query { message } => write!(f, "query error: {message}"),
            DbError::EmptyNullDomain { name } => {
                write!(f, "null value `{name}` has an empty candidate domain")
            }
            DbError::UnsupportedVersion {
                what,
                found,
                supported,
            } => write!(
                f,
                "unsupported {what} version {found} (this build reads up to version {supported})"
            ),
            DbError::ForeignUpdate { atom_id, num_atoms } => write!(
                f,
                "update references atom id {atom_id} but only {num_atoms} atoms are interned \
                 in this theory; the update was built against a different theory \
                 (use update_synced)"
            ),
            DbError::LsnGap { expected, found } => write!(
                f,
                "lsn gap at the checkpoint boundary: suffix starts at lsn {found} but the \
                 snapshot is only current through lsn {expected}; replaying it would skip \
                 acknowledged operations"
            ),
            DbError::RecordTooLarge { len, max } => write!(
                f,
                "record refused at write time: serialized payload is {len} bytes \
                 (max {max}); nothing was journaled"
            ),
            DbError::Storage { message } => write!(f, "storage error: {message}"),
            DbError::Corrupt { message } => write!(f, "corrupt artifact: {message}"),
            DbError::Compaction { message } => write!(f, "compaction error: {message}"),
            DbError::TxnConflict { message } => write!(f, "transaction conflict: {message}"),
            DbError::TxnTimeout { message } => write!(f, "transaction timeout: {message}"),
            DbError::TxnUnknown { txn } => {
                write!(f, "transaction {txn} is not open on this database")
            }
            DbError::TxnOpen { active } => write!(
                f,
                "refused while {active} transaction(s) are open: a checkpoint here could \
                 strand a committing transaction's journaled intents behind the snapshot \
                 boundary"
            ),
        }
    }
}

impl std::error::Error for DbError {}

impl From<winslett_theory::TheoryError> for DbError {
    fn from(e: winslett_theory::TheoryError) -> Self {
        DbError::Theory(e)
    }
}

impl From<winslett_ldml::LdmlError> for DbError {
    fn from(e: winslett_ldml::LdmlError) -> Self {
        DbError::Ldml(e)
    }
}

impl From<winslett_gua::GuaError> for DbError {
    fn from(e: winslett_gua::GuaError) -> Self {
        DbError::Gua(e)
    }
}

impl From<winslett_worlds::WorldsError> for DbError {
    fn from(e: winslett_worlds::WorldsError) -> Self {
        DbError::Worlds(e)
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Storage {
            message: e.to_string(),
        }
    }
}

impl From<winslett_logic::LogicError> for DbError {
    fn from(e: winslett_logic::LogicError) -> Self {
        DbError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: DbError = winslett_theory::TheoryError::Inconsistent.into();
        assert!(e.to_string().contains("no models"));
        let e = DbError::Query {
            message: "variable ?x unbound".into(),
        };
        assert!(e.to_string().contains("?x"));
    }
}
