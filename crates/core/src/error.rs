//! Error type for the database façade.

use std::fmt;

/// Errors surfaced by [`crate::LogicalDatabase`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    /// From the theory layer.
    Theory(winslett_theory::TheoryError),
    /// From LDML parsing/validation.
    Ldml(winslett_ldml::LdmlError),
    /// From the update algorithm.
    Gua(winslett_gua::GuaError),
    /// From world materialization.
    Worlds(winslett_worlds::WorldsError),
    /// From the logic kernel (query parsing).
    Logic(winslett_logic::LogicError),
    /// A query used an unknown variable or malformed syntax.
    Query {
        /// Description of the defect.
        message: String,
    },
    /// A null value was declared with an empty candidate domain.
    EmptyNullDomain {
        /// The null's name.
        name: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Theory(e) => write!(f, "{e}"),
            DbError::Ldml(e) => write!(f, "{e}"),
            DbError::Gua(e) => write!(f, "{e}"),
            DbError::Worlds(e) => write!(f, "{e}"),
            DbError::Logic(e) => write!(f, "{e}"),
            DbError::Query { message } => write!(f, "query error: {message}"),
            DbError::EmptyNullDomain { name } => {
                write!(f, "null value `{name}` has an empty candidate domain")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<winslett_theory::TheoryError> for DbError {
    fn from(e: winslett_theory::TheoryError) -> Self {
        DbError::Theory(e)
    }
}

impl From<winslett_ldml::LdmlError> for DbError {
    fn from(e: winslett_ldml::LdmlError) -> Self {
        DbError::Ldml(e)
    }
}

impl From<winslett_gua::GuaError> for DbError {
    fn from(e: winslett_gua::GuaError) -> Self {
        DbError::Gua(e)
    }
}

impl From<winslett_worlds::WorldsError> for DbError {
    fn from(e: winslett_worlds::WorldsError) -> Self {
        DbError::Worlds(e)
    }
}

impl From<winslett_logic::LogicError> for DbError {
    fn from(e: winslett_logic::LogicError) -> Self {
        DbError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: DbError = winslett_theory::TheoryError::Inconsistent.into();
        assert!(e.to_string().contains("no models"));
        let e = DbError::Query {
            message: "variable ?x unbound".into(),
        };
        assert!(e.to_string().contains("?x"));
    }
}
