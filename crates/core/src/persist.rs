//! Saving and loading logical databases.
//!
//! A [`Theory`] serializes to a self-contained JSON document holding the
//! schema (attributes, relations, type axioms), the dependency axioms, the
//! completion-axiom registry (as atom strings), and the non-axiomatic
//! section (as wff strings in the concrete syntax of
//! [`winslett_logic::parse_wff`]). Everything is name-based, so a dump is
//! stable across interning orders and readable in a code review — the
//! moral equivalent of a `.sql` dump for a logical database.
//!
//! Predicate constants minted by GUA are preserved (they carry the
//! residual update history), and the fresh-name counter is bumped past
//! them on load so future updates cannot collide.

use crate::error::DbError;
use serde::{Deserialize, Serialize};
use winslett_logic::{display_wff, parse_wff, ParseContext, PredicateKind};
use winslett_theory::{AtomPattern, Dependency, HeadFormula, Term, Theory};

/// The newest dump format version this build writes and reads.
pub const DUMP_VERSION: u32 = 2;

/// The serialized form of a theory.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TheoryDump {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The vocabulary's fresh-name counter at dump time (version ≥ 2).
    /// Restoring it keeps GUA-minted predicate-constant names disjoint
    /// from every name the saved theory ever used — including `__pN` names
    /// that simplification freed, which appear nowhere else in the dump.
    pub fresh_counter: u64,
    /// Attribute predicate names.
    pub attributes: Vec<String>,
    /// Relations: `(name, arity, type axiom attribute names if any)`.
    pub relations: Vec<(String, usize, Option<Vec<String>>)>,
    /// Predicate constants present in the store (names).
    pub predicate_constants: Vec<String>,
    /// Dependency axioms, in a portable structural form.
    pub dependencies: Vec<DependencyDump>,
    /// Registered atoms, as rendered atom strings (completion axioms).
    pub registered: Vec<String>,
    /// The non-axiomatic section, one wff string per formula.
    pub wffs: Vec<String>,
}

// Hand-written so a version-1 document (which predates `fresh_counter`)
// still deserializes, defaulting the counter to 0; `restore_theory` then
// reconstructs a safe counter from the minted names themselves.
impl serde::Deserialize for TheoryDump {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::DeError::new("expected object for TheoryDump"))?;
        let fresh_counter = match serde::field(entries, "fresh_counter") {
            Ok(fv) => serde::Deserialize::from_value(fv)?,
            Err(_) => 0,
        };
        Ok(TheoryDump {
            version: serde::Deserialize::from_value(serde::field(entries, "version")?)?,
            fresh_counter,
            attributes: serde::Deserialize::from_value(serde::field(entries, "attributes")?)?,
            relations: serde::Deserialize::from_value(serde::field(entries, "relations")?)?,
            predicate_constants: serde::Deserialize::from_value(serde::field(
                entries,
                "predicate_constants",
            )?)?,
            dependencies: serde::Deserialize::from_value(serde::field(entries, "dependencies")?)?,
            registered: serde::Deserialize::from_value(serde::field(entries, "registered")?)?,
            wffs: serde::Deserialize::from_value(serde::field(entries, "wffs")?)?,
        })
    }
}

/// Portable form of a template dependency.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DependencyDump {
    /// Label.
    pub name: String,
    /// Number of variables.
    pub num_vars: u16,
    /// Body patterns: `(pred name, terms)` where a term is either
    /// `{"v": i}` or `{"c": "name"}`.
    pub body: Vec<(String, Vec<TermDump>)>,
    /// Head, structurally.
    pub head: HeadDump,
}

/// Portable term.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TermDump {
    /// Variable index.
    V(u16),
    /// Constant name.
    C(String),
}

/// Portable head formula.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum HeadDump {
    /// Truth constant.
    Truth(bool),
    /// Atom pattern.
    Atom(String, Vec<TermDump>),
    /// Equality.
    Eq(TermDump, TermDump),
    /// Negation.
    Not(Box<HeadDump>),
    /// Conjunction.
    And(Vec<HeadDump>),
    /// Disjunction.
    Or(Vec<HeadDump>),
}

/// Serializes a theory to its dump form.
pub fn dump_theory(theory: &Theory) -> TheoryDump {
    let mut attributes = Vec::new();
    let mut relations = Vec::new();
    let mut predicate_constants = Vec::new();
    for (pid, pred) in theory.vocab.predicates() {
        match pred.kind {
            PredicateKind::Attribute => attributes.push(pred.name.clone()),
            PredicateKind::Relation => {
                let ty = theory.schema.type_axiom(pid).map(|attrs| {
                    attrs
                        .iter()
                        .map(|a| theory.vocab.predicate(*a).name.clone())
                        .collect()
                });
                relations.push((pred.name.clone(), pred.arity, ty));
            }
            PredicateKind::PredicateConstant => {
                predicate_constants.push(pred.name.clone());
            }
        }
    }
    let registered: Vec<String> = {
        let mut v: Vec<_> = theory
            .registry
            .iter()
            .map(|(_, a)| theory.atoms.resolve(a).display(&theory.vocab).to_string())
            .collect();
        v.sort();
        v
    };
    let wffs: Vec<String> = theory
        .store
        .iter()
        .map(|(_, w)| display_wff(&w, &theory.vocab, &theory.atoms).to_string())
        .collect();
    let dependencies = theory
        .deps
        .iter()
        .map(|d| dump_dependency(d, theory))
        .collect();
    TheoryDump {
        version: DUMP_VERSION,
        fresh_counter: theory.vocab.fresh_counter(),
        attributes,
        relations,
        predicate_constants,
        dependencies,
        registered,
        wffs,
    }
}

fn dump_term(t: &Term, theory: &Theory) -> TermDump {
    match t {
        Term::Var(v) => TermDump::V(*v),
        Term::Cst(c) => TermDump::C(theory.vocab.constant_name(*c).to_owned()),
    }
}

fn dump_head(h: &HeadFormula, theory: &Theory) -> HeadDump {
    match h {
        HeadFormula::Truth(b) => HeadDump::Truth(*b),
        HeadFormula::Atom(a) => HeadDump::Atom(
            theory.vocab.predicate(a.pred).name.clone(),
            a.args.iter().map(|t| dump_term(t, theory)).collect(),
        ),
        HeadFormula::Eq(s, t) => HeadDump::Eq(dump_term(s, theory), dump_term(t, theory)),
        HeadFormula::Not(x) => HeadDump::Not(Box::new(dump_head(x, theory))),
        HeadFormula::And(xs) => HeadDump::And(xs.iter().map(|x| dump_head(x, theory)).collect()),
        HeadFormula::Or(xs) => HeadDump::Or(xs.iter().map(|x| dump_head(x, theory)).collect()),
    }
}

pub(crate) fn dump_dependency(d: &Dependency, theory: &Theory) -> DependencyDump {
    DependencyDump {
        name: d.name.clone(),
        num_vars: d.num_vars,
        body: d
            .body
            .iter()
            .map(|g| {
                (
                    theory.vocab.predicate(g.pred).name.clone(),
                    g.args.iter().map(|t| dump_term(t, theory)).collect(),
                )
            })
            .collect(),
        head: dump_head(&d.head, theory),
    }
}

/// Serializes a theory to a JSON string.
pub fn save_theory(theory: &Theory) -> Result<String, DbError> {
    serde_json::to_string_pretty(&dump_theory(theory)).map_err(|e| DbError::Query {
        message: format!("serialization failed: {e}"),
    })
}

/// Reconstructs a theory from its dump form.
pub fn restore_theory(dump: &TheoryDump) -> Result<Theory, DbError> {
    // Version 1 dumps (no `fresh_counter` field) are still readable; any
    // unknown or future version is refused with a structured error rather
    // than silently misread.
    if dump.version == 0 || dump.version > DUMP_VERSION {
        return Err(DbError::UnsupportedVersion {
            what: "theory dump",
            found: dump.version,
            supported: DUMP_VERSION,
        });
    }
    let mut t = Theory::new();
    let mut attr_ids = Vec::new();
    for a in &dump.attributes {
        attr_ids.push((a.clone(), t.declare_attribute(a)?));
    }
    for (name, arity, ty) in &dump.relations {
        match ty {
            None => {
                t.declare_relation(name, *arity)?;
            }
            Some(attrs) => {
                let ids: Result<Vec<_>, DbError> = attrs
                    .iter()
                    .map(|a| {
                        attr_ids
                            .iter()
                            .find(|(n, _)| n == a)
                            .map(|(_, id)| *id)
                            .ok_or_else(|| DbError::Query {
                                message: format!("type axiom references unknown attribute `{a}`"),
                            })
                    })
                    .collect();
                t.declare_typed_relation(name, &ids?)?;
            }
        }
    }
    for pc in &dump.predicate_constants {
        t.vocab
            .declare_predicate(pc, 0, PredicateKind::PredicateConstant)
            .ok_or_else(|| DbError::Query {
                message: format!("predicate constant `{pc}` conflicts with a relation"),
            })?;
    }
    // Restore the fresh-name counter. Version-1 dumps did not record it,
    // so additionally bump past every `__p<N>…` name present in the dump
    // — future mints must not reuse a number a GUA-minted constant
    // carries, or renames of distinct atoms could be given colliding
    // lineage tags.
    t.vocab.bump_fresh_counter_to(dump.fresh_counter);
    for pc in &dump.predicate_constants {
        if let Some(digits) = pc.strip_prefix("__p") {
            let digits: String = digits.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(n) = digits.parse::<u64>() {
                t.vocab.bump_fresh_counter_to(n + 1);
            }
        }
    }
    for d in &dump.dependencies {
        let dep = restore_dependency(d, &mut t)?;
        t.add_dependency(dep);
    }
    // The non-axiomatic section: parse each wff; this interns atoms and
    // registers them.
    for src in &dump.wffs {
        let wff = {
            let mut ctx = ParseContext {
                vocab: &mut t.vocab,
                atoms: &mut t.atoms,
                declare: true, // constants may be new; predicates exist
                allow_predicate_constants: true,
            };
            parse_wff(src, &mut ctx).map_err(DbError::from)?
        };
        t.assert_wff(&wff);
    }
    // Registered atoms beyond those in the section (e.g. freed by
    // simplification): re-register explicitly.
    for src in &dump.registered {
        let wff = {
            let mut ctx = ParseContext {
                vocab: &mut t.vocab,
                atoms: &mut t.atoms,
                declare: true,
                allow_predicate_constants: false,
            };
            parse_wff(src, &mut ctx).map_err(DbError::from)?
        };
        match wff {
            winslett_logic::Formula::Atom(id) => {
                t.register_atom(id);
            }
            other => {
                return Err(DbError::Query {
                    message: format!("registered entry `{src}` is not an atom: {other:?}"),
                })
            }
        }
    }
    Ok(t)
}

fn restore_term(t: &TermDump, theory: &mut Theory) -> Term {
    match t {
        TermDump::V(v) => Term::Var(*v),
        TermDump::C(name) => Term::Cst(theory.constant(name)),
    }
}

fn restore_head(h: &HeadDump, theory: &mut Theory) -> Result<HeadFormula, DbError> {
    Ok(match h {
        HeadDump::Truth(b) => HeadFormula::Truth(*b),
        HeadDump::Atom(pred, args) => {
            let p = theory
                .vocab
                .find_predicate(pred)
                .ok_or_else(|| DbError::Query {
                    message: format!("dependency references unknown predicate `{pred}`"),
                })?;
            let args = args.iter().map(|t| restore_term(t, theory)).collect();
            HeadFormula::Atom(AtomPattern::new(p, args))
        }
        HeadDump::Eq(s, t) => HeadFormula::Eq(restore_term(s, theory), restore_term(t, theory)),
        HeadDump::Not(x) => HeadFormula::Not(Box::new(restore_head(x, theory)?)),
        HeadDump::And(xs) => HeadFormula::And(
            xs.iter()
                .map(|x| restore_head(x, theory))
                .collect::<Result<_, _>>()?,
        ),
        HeadDump::Or(xs) => HeadFormula::Or(
            xs.iter()
                .map(|x| restore_head(x, theory))
                .collect::<Result<_, _>>()?,
        ),
    })
}

pub(crate) fn restore_dependency(
    d: &DependencyDump,
    theory: &mut Theory,
) -> Result<Dependency, DbError> {
    let mut body = Vec::with_capacity(d.body.len());
    for (pred, args) in &d.body {
        let p = theory
            .vocab
            .find_predicate(pred)
            .ok_or_else(|| DbError::Query {
                message: format!("dependency references unknown predicate `{pred}`"),
            })?;
        let args = args.iter().map(|t| restore_term(t, theory)).collect();
        body.push(AtomPattern::new(p, args));
    }
    let head = restore_head(&d.head, theory)?;
    Dependency::new(d.name.clone(), d.num_vars, body, head).map_err(DbError::from)
}

/// Deserializes a theory from a JSON string produced by [`save_theory`].
pub fn load_theory(json: &str) -> Result<Theory, DbError> {
    let dump: TheoryDump = serde_json::from_str(json).map_err(|e| DbError::Query {
        message: format!("deserialization failed: {e}"),
    })?;
    restore_theory(&dump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_gua::GuaEngine;
    use winslett_logic::ModelLimit;

    fn sample_theory() -> Theory {
        let mut t = Theory::new();
        let part = t.declare_attribute("PartNo").unwrap();
        let quan = t.declare_attribute("Quan").unwrap();
        let instock = t.declare_typed_relation("InStock", &[part, quan]).unwrap();
        let orders = t.declare_relation("Orders", 3).unwrap();
        t.add_dependency(Dependency::functional("stock-fd", instock, 2, &[0]).unwrap());
        let c32 = t.constant("32");
        let c5 = t.constant("5");
        let tup = t.atom(instock, &[c32, c5]);
        let p32 = t.atom(part, &[c32]);
        let q5 = t.atom(quan, &[c5]);
        t.assert_atom(tup);
        t.assert_atom(p32);
        t.assert_atom(q5);
        let o = {
            let a = t.constant("700");
            let b = t.constant("9");
            t.atom(orders, &[a, c32, b])
        };
        let o2 = {
            let a = t.constant("701");
            let b = t.constant("9");
            t.atom(orders, &[a, c32, b])
        };
        t.assert_wff(&winslett_logic::Formula::Or(vec![
            winslett_logic::Wff::Atom(o),
            winslett_logic::Wff::Atom(o2),
        ]));
        t
    }

    fn worlds_of(t: &Theory) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = t
            .alternative_worlds(ModelLimit::default())
            .unwrap()
            .iter()
            .map(|w| t.format_world(w))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn roundtrip_preserves_worlds() {
        let t = sample_theory();
        let json = save_theory(&t).unwrap();
        let restored = load_theory(&json).unwrap();
        assert_eq!(worlds_of(&t), worlds_of(&restored));
        assert_eq!(t.deps.len(), restored.deps.len());
        assert_eq!(t.store.len(), restored.store.len());
    }

    #[test]
    fn roundtrip_after_updates_preserves_worlds() {
        // Including the predicate constants GUA leaves behind.
        let t = sample_theory();
        let mut engine = GuaEngine::new(
            t,
            winslett_gua::GuaOptions::simplify_always(winslett_gua::SimplifyLevel::None),
        );
        engine.execute("DELETE InStock(32,5) WHERE T").unwrap();
        engine
            .execute("INSERT Orders(702,32,1) | Orders(702,32,2) WHERE T")
            .unwrap();
        let json = save_theory(&engine.theory).unwrap();
        let restored = load_theory(&json).unwrap();
        assert_eq!(worlds_of(&engine.theory), worlds_of(&restored));
        // And the restored theory keeps working: apply another update.
        let mut engine2 = GuaEngine::with_defaults(restored);
        engine2.execute("ASSERT Orders(702,32,1)").unwrap();
        assert!(engine2.theory.is_consistent());
    }

    #[test]
    fn dump_is_human_readable() {
        let t = sample_theory();
        let json = save_theory(&t).unwrap();
        assert!(json.contains("InStock(32,5)"));
        assert!(json.contains("Orders(700,32,9) | Orders(701,32,9)"));
        assert!(json.contains("stock-fd"));
    }

    #[test]
    fn bad_version_rejected_with_structured_error() {
        let t = sample_theory();
        let mut dump = dump_theory(&t);
        dump.version = 99;
        assert_eq!(
            restore_theory(&dump).unwrap_err(),
            DbError::UnsupportedVersion {
                what: "theory dump",
                found: 99,
                supported: DUMP_VERSION,
            }
        );
        dump.version = 0;
        assert!(matches!(
            restore_theory(&dump),
            Err(DbError::UnsupportedVersion { found: 0, .. })
        ));
        // A JSON document with a future version is rejected through
        // load_theory too (the field used to be accepted unchecked there).
        let mut json = save_theory(&t).unwrap();
        json = json.replacen(
            &format!("\"version\": {DUMP_VERSION}"),
            "\"version\": 77",
            1,
        );
        assert!(matches!(
            load_theory(&json),
            Err(DbError::UnsupportedVersion { found: 77, .. })
        ));
    }

    #[test]
    fn fresh_counter_survives_roundtrip_and_cannot_collide() {
        // GUA mints predicate constants; after save/load the restored
        // vocabulary must keep minting names disjoint from the saved ones.
        let t = sample_theory();
        let mut engine = GuaEngine::new(
            t,
            winslett_gua::GuaOptions::simplify_always(winslett_gua::SimplifyLevel::None),
        );
        engine.execute("DELETE InStock(32,5) WHERE T").unwrap();
        engine.execute("INSERT InStock(32,6) WHERE T").unwrap();
        let saved_counter = engine.theory.vocab.fresh_counter();
        assert!(saved_counter > 0);
        let json = save_theory(&engine.theory).unwrap();
        let restored = load_theory(&json).unwrap();
        assert_eq!(restored.vocab.fresh_counter(), saved_counter);
        // Fresh names minted post-restore are new to the restored theory.
        let mut vocab = restored.vocab.clone();
        let pid = vocab.fresh_predicate_constant();
        assert!(restored
            .vocab
            .find_predicate(&vocab.predicate(pid).name)
            .is_none());
    }

    #[test]
    fn version1_dump_bumps_counter_past_minted_names() {
        // A version-1 dump has no fresh_counter field; the loader must
        // still move the counter past every `__pN…` name in the dump.
        let t = sample_theory();
        let mut engine = GuaEngine::new(
            t,
            winslett_gua::GuaOptions::simplify_always(winslett_gua::SimplifyLevel::None),
        );
        engine.execute("DELETE InStock(32,5) WHERE T").unwrap();
        let mut dump = dump_theory(&engine.theory);
        dump.version = 1;
        dump.fresh_counter = 0; // as if absent from the JSON
        let restored = restore_theory(&dump).unwrap();
        assert!(restored.vocab.fresh_counter() >= engine.theory.vocab.fresh_counter());
    }

    #[test]
    fn garbage_json_rejected() {
        assert!(load_theory("{not json").is_err());
        assert!(load_theory("{}").is_err());
    }
}
