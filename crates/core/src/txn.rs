//! Footprint-granular lock table for multi-statement transactions.
//!
//! The §4 update semantics are defined statement-at-a-time; transactions
//! group statements into an atomic, isolated unit. Isolation is enforced
//! here with strict two-phase locking over **footprint atoms**: every
//! statement's read/write sets (the same
//! `winslett_analyze::ConflictAnalyzer` footprints PR 6's write batching
//! uses) become shared/exclusive locks held until commit or rollback.
//! Theorems 3 and 4 of the paper justify the granularity — updates whose
//! footprints are disjoint commute, so interleaving lock-disjoint
//! transactions through the single writer path is equivalent to *some*
//! serial order of them (commit order is always a valid witness, because
//! a later-committing transaction's statements were all computed against
//! states that already contained every earlier-committed effect on the
//! atoms they touch).
//!
//! Keys are canonical atom renderings (`"R(a,b)"`), plus the reserved
//! [`GLOBAL_KEY`] that conflicts with everything — taken in exclusive
//! mode by statements whose footprint the analyzer cannot bound (schema
//! changes, loads, unparseable sources, pruning updates).
//!
//! Deadlock handling is avoidance by timeout, not detection: a waiter
//! that cannot acquire its full request set within the deadline gives up
//! with a typed [`DbError::TxnTimeout`], and the server aborts the
//! transaction, releasing whatever it held. Acquisition is
//! all-or-nothing per statement (no partial grants), which keeps the
//! hold-and-wait window to a single condvar wait and makes the timeout
//! bound the only liveness knob.

use crate::error::DbError;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The reserved whole-database key: conflicts with every other key (and
/// itself). Statements without a bounded footprint lock this exclusively.
pub const GLOBAL_KEY: &str = "*";

/// Lock strength.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared: compatible with other shared holders of the same key.
    Shared,
    /// Exclusive: compatible with nothing.
    Exclusive,
}

/// One lock demand: a key plus the strength required.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockRequest {
    /// Canonical atom rendering, or [`GLOBAL_KEY`].
    pub key: String,
    /// Required strength.
    pub mode: LockMode,
}

impl LockRequest {
    /// A shared-mode request.
    pub fn shared(key: impl Into<String>) -> Self {
        LockRequest {
            key: key.into(),
            mode: LockMode::Shared,
        }
    }

    /// An exclusive-mode request.
    pub fn exclusive(key: impl Into<String>) -> Self {
        LockRequest {
            key: key.into(),
            mode: LockMode::Exclusive,
        }
    }

    /// The whole-database exclusive request.
    pub fn global() -> Self {
        LockRequest::exclusive(GLOBAL_KEY)
    }
}

/// Who holds one key.
#[derive(Debug, Default)]
struct Holders {
    /// Exclusive holder, if any (excludes all shared holders but itself).
    exclusive: Option<u64>,
    /// Shared holders.
    shared: HashSet<u64>,
}

impl Holders {
    fn is_free(&self) -> bool {
        self.exclusive.is_none() && self.shared.is_empty()
    }

    /// Whether `txn` (or anyone, when `txn` is `None`) can take this key
    /// in `mode` right now. A transaction is never blocked by locks it
    /// already holds (re-entrant grants and S→X upgrades with no other
    /// holders are allowed).
    fn grantable(&self, txn: Option<u64>, mode: LockMode) -> bool {
        let foreign_x = self.exclusive.is_some() && self.exclusive != txn;
        if foreign_x {
            return false;
        }
        match mode {
            LockMode::Shared => true,
            LockMode::Exclusive => self.shared.iter().all(|holder| Some(*holder) == txn),
        }
    }

    fn grant(&mut self, txn: u64, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                if self.exclusive != Some(txn) {
                    self.shared.insert(txn);
                }
            }
            LockMode::Exclusive => {
                self.shared.remove(&txn);
                self.exclusive = Some(txn);
            }
        }
    }
}

#[derive(Debug, Default)]
struct Tables {
    locks: HashMap<String, Holders>,
    /// Keys held per transaction, so release is O(held).
    owned: HashMap<u64, HashSet<String>>,
}

impl Tables {
    /// First request in `requests` that cannot be granted to `txn` right
    /// now, or `None` if the whole set is grantable at once.
    fn blocked_on(&self, txn: Option<u64>, requests: &[LockRequest]) -> Option<String> {
        for req in requests {
            if let Some(h) = self.locks.get(&req.key) {
                if !h.grantable(txn, req.mode) {
                    return Some(req.key.clone());
                }
            }
            // The global key conflicts with every held key, and every
            // key conflicts with a held global lock.
            if req.key == GLOBAL_KEY {
                let foreign = self
                    .owned
                    .iter()
                    .any(|(owner, keys)| Some(*owner) != txn && !keys.is_empty());
                if foreign {
                    return Some(GLOBAL_KEY.to_string());
                }
            } else if let Some(h) = self.locks.get(GLOBAL_KEY) {
                if !h.grantable(txn, LockMode::Exclusive) {
                    return Some(GLOBAL_KEY.to_string());
                }
            }
        }
        None
    }

    fn grant_all(&mut self, txn: u64, requests: &[LockRequest]) {
        let owned = self.owned.entry(txn).or_default();
        for req in requests {
            self.locks
                .entry(req.key.clone())
                .or_default()
                .grant(txn, req.mode);
            owned.insert(req.key.clone());
        }
    }
}

/// Counters the server surfaces through `Stats`.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Acquisitions that had to wait at least once.
    pub waits: AtomicU64,
    /// Acquisitions that gave up at the deadline.
    pub timeouts: AtomicU64,
}

/// The lock table: S/X locks on footprint-atom keys, all-or-nothing
/// acquisition per statement, strict 2PL release at commit/rollback.
#[derive(Debug, Default)]
pub struct LockTable {
    tables: Mutex<Tables>,
    released: Condvar,
    /// Wait/timeout counters.
    pub stats: LockStats,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn tables(&self) -> std::sync::MutexGuard<'_, Tables> {
        self.tables.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Atomically acquires every request for `txn`, blocking (bounded by
    /// `timeout`) until the whole set is grantable. On timeout the typed
    /// [`DbError::TxnTimeout`] names the first contended key; nothing is
    /// granted. Safe only on threads that hold **no** writer lock — a
    /// blocked waiter is released by another transaction's
    /// commit/rollback, which needs the writer lock to journal.
    pub fn lock_wait(
        &self,
        txn: u64,
        requests: &[LockRequest],
        timeout: Duration,
    ) -> Result<(), DbError> {
        if requests.is_empty() {
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut tables = self.tables();
        let mut waited = false;
        loop {
            match tables.blocked_on(Some(txn), requests) {
                None => {
                    tables.grant_all(txn, requests);
                    return Ok(());
                }
                Some(key) => {
                    if !waited {
                        waited = true;
                        self.stats.waits.fetch_add(1, Ordering::Relaxed);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        return Err(DbError::TxnTimeout {
                            message: format!(
                                "transaction {txn} timed out waiting for lock on `{key}`"
                            ),
                        });
                    }
                    let (guard, _) = self
                        .released
                        .wait_timeout(tables, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    tables = guard;
                }
            }
        }
    }

    /// Non-blocking all-or-nothing acquisition — the epoll writer thread's
    /// path (it must never condvar-wait; contended statements are requeued
    /// with a retry deadline instead). `Err` carries the contended key.
    pub fn try_lock(&self, txn: u64, requests: &[LockRequest]) -> Result<(), String> {
        if requests.is_empty() {
            return Ok(());
        }
        let mut tables = self.tables();
        match tables.blocked_on(Some(txn), requests) {
            None => {
                tables.grant_all(txn, requests);
                Ok(())
            }
            Some(key) => Err(key),
        }
    }

    /// Whether a non-transactional write with these demands would
    /// conflict with any held transaction lock. Checked under the writer
    /// lock immediately before the write applies, so the answer cannot go
    /// stale against a transaction statement (which journals under the
    /// same writer lock *after* acquiring its locks). `Some(key)` names a
    /// contended key.
    pub fn would_block(&self, requests: &[LockRequest]) -> Option<String> {
        if requests.is_empty() {
            return None;
        }
        self.tables().blocked_on(None, requests)
    }

    /// Releases everything `txn` holds (strict 2PL release point) and
    /// wakes every waiter.
    pub fn release_all(&self, txn: u64) {
        let mut tables = self.tables();
        let Some(keys) = tables.owned.remove(&txn) else {
            return;
        };
        for key in keys {
            if let Some(h) = tables.locks.get_mut(&key) {
                if h.exclusive == Some(txn) {
                    h.exclusive = None;
                }
                h.shared.remove(&txn);
                if h.is_free() {
                    tables.locks.remove(&key);
                }
            }
        }
        drop(tables);
        self.released.notify_all();
    }

    /// Number of transactions currently holding at least one lock.
    pub fn holders(&self) -> usize {
        self.tables().owned.len()
    }

    /// Whether `txn` already holds every request at (at least) the
    /// requested strength: a shared request is satisfied by a held S or
    /// X lock, an exclusive request only by a held X lock, and the
    /// global key only by holding it exclusively. Used to skip
    /// workspace refreshes: an atom continuously held since it was
    /// first locked cannot have been changed by any other writer, so a
    /// statement confined to held atoms sees current values in a stale
    /// workspace. Conservative on anything else (returns `false`).
    pub fn holds_all(&self, txn: u64, requests: &[LockRequest]) -> bool {
        if requests.is_empty() {
            return false;
        }
        let tables = self.tables();
        requests.iter().all(|req| {
            let Some(h) = tables.locks.get(&req.key) else {
                return false;
            };
            match req.mode {
                LockMode::Exclusive => h.exclusive == Some(txn),
                LockMode::Shared => h.exclusive == Some(txn) || h.shared.contains(&txn),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_locks_coexist_exclusive_excludes() {
        let t = LockTable::new();
        t.try_lock(1, &[LockRequest::shared("R(a)")]).unwrap();
        t.try_lock(2, &[LockRequest::shared("R(a)")]).unwrap();
        assert_eq!(
            t.try_lock(3, &[LockRequest::exclusive("R(a)")]),
            Err("R(a)".to_string())
        );
        t.release_all(1);
        t.release_all(2);
        t.try_lock(3, &[LockRequest::exclusive("R(a)")]).unwrap();
        assert_eq!(
            t.try_lock(1, &[LockRequest::shared("R(a)")]),
            Err("R(a)".to_string())
        );
        assert_eq!(t.holders(), 1);
    }

    #[test]
    fn reentrant_grants_and_upgrade() {
        let t = LockTable::new();
        t.try_lock(1, &[LockRequest::shared("R(a)")]).unwrap();
        // Upgrade with no other holders is allowed; re-granting is a no-op.
        t.try_lock(1, &[LockRequest::exclusive("R(a)")]).unwrap();
        t.try_lock(1, &[LockRequest::shared("R(a)")]).unwrap();
        assert_eq!(
            t.try_lock(2, &[LockRequest::shared("R(a)")]),
            Err("R(a)".to_string())
        );
        // Upgrade *with* another shared holder must refuse.
        t.release_all(1);
        t.try_lock(1, &[LockRequest::shared("R(b)")]).unwrap();
        t.try_lock(2, &[LockRequest::shared("R(b)")]).unwrap();
        assert_eq!(
            t.try_lock(1, &[LockRequest::exclusive("R(b)")]),
            Err("R(b)".to_string())
        );
    }

    #[test]
    fn global_key_conflicts_with_everything() {
        let t = LockTable::new();
        t.try_lock(1, &[LockRequest::shared("R(a)")]).unwrap();
        assert_eq!(
            t.try_lock(2, &[LockRequest::global()]),
            Err("*".to_string())
        );
        t.release_all(1);
        t.try_lock(2, &[LockRequest::global()]).unwrap();
        assert_eq!(
            t.try_lock(1, &[LockRequest::shared("S(q)")]),
            Err("*".to_string())
        );
        assert!(t.would_block(&[LockRequest::shared("anything")]).is_some());
        t.release_all(2);
        assert!(t.would_block(&[LockRequest::exclusive("S(q)")]).is_none());
    }

    #[test]
    fn holds_all_matches_granted_strength() {
        let t = LockTable::new();
        t.try_lock(
            1,
            &[LockRequest::exclusive("R(a)"), LockRequest::shared("S(a)")],
        )
        .unwrap();
        // Exclusive covers both strengths; shared covers only shared.
        assert!(t.holds_all(1, &[LockRequest::exclusive("R(a)")]));
        assert!(t.holds_all(1, &[LockRequest::shared("R(a)")]));
        assert!(t.holds_all(1, &[LockRequest::shared("S(a)")]));
        assert!(!t.holds_all(1, &[LockRequest::exclusive("S(a)")]));
        // Any unheld key, another txn, an empty footprint, or the
        // global key is never covered.
        assert!(!t.holds_all(
            1,
            &[LockRequest::shared("R(a)"), LockRequest::shared("R(b)")]
        ));
        assert!(!t.holds_all(2, &[LockRequest::shared("R(a)")]));
        assert!(!t.holds_all(1, &[]));
        assert!(!t.holds_all(1, &[LockRequest::global()]));
        t.release_all(1);
        assert!(!t.holds_all(1, &[LockRequest::shared("R(a)")]));
    }

    #[test]
    fn all_or_nothing_acquisition() {
        let t = LockTable::new();
        t.try_lock(1, &[LockRequest::exclusive("R(b)")]).unwrap();
        // Txn 2 wants a and b; b is taken, so *nothing* may be granted.
        assert!(t
            .try_lock(
                2,
                &[
                    LockRequest::exclusive("R(a)"),
                    LockRequest::exclusive("R(b)")
                ]
            )
            .is_err());
        assert!(t.would_block(&[LockRequest::exclusive("R(a)")]).is_none());
    }

    #[test]
    fn lock_wait_times_out_with_typed_error() {
        let t = LockTable::new();
        t.try_lock(1, &[LockRequest::exclusive("R(a)")]).unwrap();
        let err = t
            .lock_wait(
                2,
                &[LockRequest::exclusive("R(a)")],
                Duration::from_millis(20),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::TxnTimeout { .. }), "{err:?}");
        assert_eq!(t.stats.timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(t.stats.waits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn release_wakes_blocked_waiter() {
        let t = Arc::new(LockTable::new());
        t.try_lock(1, &[LockRequest::exclusive("R(a)")]).unwrap();
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || {
            t2.lock_wait(2, &[LockRequest::exclusive("R(a)")], Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(30));
        t.release_all(1);
        waiter.join().expect("join").expect("granted after release");
        assert_eq!(t.holders(), 1);
    }
}
