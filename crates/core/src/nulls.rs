//! Null values via finite-domain Skolem expansion.
//!
//! The paper notes that GUA "can be extended to cover the case where null
//! values appear in the theory as Skolem constants, in which case the
//! theory may have an infinite set of models." With completion axioms over
//! named constants, every attribute domain in play is finite, so a null
//! value — "known to lie in a certain domain but whose value is currently
//! unknown" (§1) — is faithfully represented by a *disjunction over its
//! candidate values*: inserting `Orders(700, 32, @q)` with
//! `@q ∈ {1, 5, 9}` becomes
//!
//! ```text
//! INSERT Orders(700,32,1) ∨ Orders(700,32,5) ∨ Orders(700,32,9) WHERE T
//! ```
//!
//! which yields one alternative world per candidate (plus combinations, if
//! other constraints intervene) — exactly the world set the Skolem
//! treatment denotes. Genuinely infinite domains are out of scope and
//! documented as such in DESIGN.md.
//!
//! [`NullCatalog`] tracks declared nulls; [`NullCatalog::expand_insert`]
//! builds the disjunctive ω; resolving a null later is an ordinary
//! `ASSERT` (§3.2: "ASSERT is the usual method for removing incomplete
//! information when more exact knowledge is obtained").

use crate::error::DbError;
use rustc_hash::FxHashMap;
use winslett_ldml::Update;
use winslett_logic::{Formula, Wff};
use winslett_theory::Theory;

/// An argument in a null-aware tuple: a concrete constant or a named null.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NullableArg {
    /// A known constant, by name.
    Known(String),
    /// A declared null value, by name (conventionally `@`-prefixed).
    Null(String),
}

impl NullableArg {
    /// Convenience constructor from `&str`, treating a leading `@` as a
    /// null reference.
    pub fn parse(s: &str) -> NullableArg {
        if let Some(rest) = s.strip_prefix('@') {
            NullableArg::Null(rest.to_owned())
        } else {
            NullableArg::Known(s.to_owned())
        }
    }
}

/// Declared null values and their candidate domains.
#[derive(Clone, Default, Debug)]
pub struct NullCatalog {
    domains: FxHashMap<String, Vec<String>>,
}

impl NullCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a null with its candidate domain. Re-declaring replaces the
    /// domain (e.g. after partial information narrows it).
    pub fn declare(&mut self, name: &str, candidates: &[&str]) -> Result<(), DbError> {
        if candidates.is_empty() {
            return Err(DbError::EmptyNullDomain { name: name.into() });
        }
        self.domains.insert(
            name.to_owned(),
            candidates.iter().map(|s| s.to_string()).collect(),
        );
        Ok(())
    }

    /// The candidate domain of `name`.
    pub fn domain(&self, name: &str) -> Option<&[String]> {
        self.domains.get(name).map(Vec::as_slice)
    }

    /// Builds the INSERT update for a tuple containing nulls: the
    /// disjunction over all combinations of candidate values. The number of
    /// disjuncts is the product of the domain sizes — callers should keep
    /// domains modest (the same constraint the Skolem treatment hides
    /// inside its infinite model set).
    pub fn expand_insert(
        &self,
        theory: &mut Theory,
        pred: &str,
        args: &[NullableArg],
        phi: Wff,
    ) -> Result<Update, DbError> {
        let mut combos: Vec<Vec<String>> = vec![Vec::new()];
        for arg in args {
            let choices: Vec<String> = match arg {
                NullableArg::Known(c) => vec![c.clone()],
                NullableArg::Null(n) => self
                    .domains
                    .get(n)
                    .ok_or_else(|| DbError::Query {
                        message: format!("undeclared null `@{n}`"),
                    })?
                    .clone(),
            };
            let mut next = Vec::with_capacity(combos.len() * choices.len());
            for combo in &combos {
                for c in &choices {
                    let mut extended = combo.clone();
                    extended.push(c.clone());
                    next.push(extended);
                }
            }
            combos = next;
        }
        let mut atoms = Vec::with_capacity(combos.len());
        for combo in &combos {
            let refs: Vec<&str> = combo.iter().map(String::as_str).collect();
            atoms.push(theory.atom_by_name(pred, &refs)?);
        }
        // Exactly-one expansion: a null *has* a single (unknown) value, so
        // each alternative world adopts exactly one candidate tuple. A bare
        // inclusive disjunction would also admit worlds with several
        // candidates true, which the Skolem reading excludes.
        let omega = if atoms.len() == 1 {
            Wff::Atom(atoms[0])
        } else {
            let disjuncts: Vec<Wff> = (0..atoms.len())
                .map(|i| {
                    let mut parts = vec![Wff::Atom(atoms[i])];
                    for (j, &other) in atoms.iter().enumerate() {
                        if j != i {
                            parts.push(Wff::Atom(other).not());
                        }
                    }
                    Formula::And(parts)
                })
                .collect();
            Formula::Or(disjuncts)
        };
        Ok(Update::Insert { omega, phi })
    }
}

impl NullCatalog {
    /// Builds the `ASSERT` that *narrows* a previously inserted null: the
    /// tuple's value is not among `excluded`. Also shrinks the catalog's
    /// domain for `null_name`, so later inserts using the same null see the
    /// narrowed candidate set. `slot` is the argument position the null
    /// occupied; `fixed` are the tuple's arguments with the null position's
    /// entry ignored.
    ///
    /// Narrowing to a single candidate is the usual full resolution; that
    /// can equally be done with a plain `ASSERT tuple` (§3.2: "ASSERT is
    /// the usual method for removing incomplete information").
    pub fn narrow(
        &mut self,
        theory: &mut Theory,
        pred: &str,
        fixed: &[&str],
        slot: usize,
        null_name: &str,
        excluded: &[&str],
    ) -> Result<Update, DbError> {
        let domain = self
            .domains
            .get_mut(null_name)
            .ok_or_else(|| DbError::Query {
                message: format!("undeclared null `@{null_name}`"),
            })?;
        let remaining: Vec<String> = domain
            .iter()
            .filter(|c| !excluded.contains(&c.as_str()))
            .cloned()
            .collect();
        if remaining.is_empty() {
            return Err(DbError::EmptyNullDomain {
                name: null_name.to_owned(),
            });
        }
        *domain = remaining;

        let mut negations = Vec::with_capacity(excluded.len());
        for ex in excluded {
            let mut args: Vec<&str> = fixed.to_vec();
            if slot >= args.len() {
                return Err(DbError::Query {
                    message: format!("null slot {slot} out of range"),
                });
            }
            args[slot] = ex;
            let atom = theory.atom_by_name(pred, &args)?;
            negations.push(Wff::Atom(atom).not());
        }
        Ok(Update::assert(Formula::And(negations)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_gua::GuaEngine;
    use winslett_logic::ModelLimit;

    fn theory() -> Theory {
        let mut t = Theory::new();
        t.declare_relation("Orders", 3).unwrap();
        t
    }

    #[test]
    fn declare_and_lookup() {
        let mut cat = NullCatalog::new();
        cat.declare("q", &["1", "5", "9"]).unwrap();
        assert_eq!(cat.domain("q").unwrap().len(), 3);
        assert!(cat.domain("z").is_none());
        assert!(matches!(
            cat.declare("bad", &[]),
            Err(DbError::EmptyNullDomain { .. })
        ));
    }

    #[test]
    fn nullable_arg_parsing() {
        assert_eq!(NullableArg::parse("32"), NullableArg::Known("32".into()));
        assert_eq!(NullableArg::parse("@q"), NullableArg::Null("q".into()));
    }

    #[test]
    fn expand_single_null_to_disjunction() {
        let mut t = theory();
        let mut cat = NullCatalog::new();
        cat.declare("q", &["1", "5", "9"]).unwrap();
        let u = cat
            .expand_insert(
                &mut t,
                "Orders",
                &[
                    NullableArg::parse("700"),
                    NullableArg::parse("32"),
                    NullableArg::parse("@q"),
                ],
                Wff::t(),
            )
            .unwrap();
        match &u {
            Update::Insert { omega, .. } => match omega {
                Formula::Or(parts) => assert_eq!(parts.len(), 3),
                other => panic!("expected Or, got {other:?}"),
            },
            other => panic!("expected Insert, got {other:?}"),
        }
        // Applying it yields one world per candidate quantity.
        let mut engine = GuaEngine::with_defaults(t);
        engine.apply(&u).unwrap();
        let worlds = engine
            .theory
            .alternative_worlds(ModelLimit::default())
            .unwrap();
        assert_eq!(worlds.len(), 3);
    }

    #[test]
    fn expand_two_nulls_is_cross_product() {
        let mut t = theory();
        let mut cat = NullCatalog::new();
        cat.declare("p", &["32", "33"]).unwrap();
        cat.declare("q", &["1", "2"]).unwrap();
        let u = cat
            .expand_insert(
                &mut t,
                "Orders",
                &[
                    NullableArg::parse("700"),
                    NullableArg::parse("@p"),
                    NullableArg::parse("@q"),
                ],
                Wff::t(),
            )
            .unwrap();
        match &u {
            Update::Insert {
                omega: Formula::Or(parts),
                ..
            } => assert_eq!(parts.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        // Applying yields exactly one world per candidate pair.
        let mut engine = GuaEngine::with_defaults(t);
        engine.apply(&u).unwrap();
        let worlds = engine
            .theory
            .alternative_worlds(ModelLimit::default())
            .unwrap();
        assert_eq!(worlds.len(), 4);
    }

    #[test]
    fn no_nulls_yields_plain_insert() {
        let mut t = theory();
        let cat = NullCatalog::new();
        let u = cat
            .expand_insert(
                &mut t,
                "Orders",
                &[
                    NullableArg::parse("700"),
                    NullableArg::parse("32"),
                    NullableArg::parse("9"),
                ],
                Wff::t(),
            )
            .unwrap();
        assert!(matches!(
            u,
            Update::Insert {
                omega: Formula::Atom(_),
                ..
            }
        ));
    }

    #[test]
    fn undeclared_null_rejected() {
        let mut t = theory();
        let cat = NullCatalog::new();
        let r = cat.expand_insert(
            &mut t,
            "Orders",
            &[
                NullableArg::parse("@zzz"),
                NullableArg::parse("1"),
                NullableArg::parse("2"),
            ],
            Wff::t(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn narrow_excludes_candidates_and_shrinks_domain() {
        let mut t = theory();
        let mut cat = NullCatalog::new();
        cat.declare("q", &["1", "5", "9"]).unwrap();
        let insert = cat
            .expand_insert(
                &mut t,
                "Orders",
                &[
                    NullableArg::parse("700"),
                    NullableArg::parse("32"),
                    NullableArg::parse("@q"),
                ],
                Wff::t(),
            )
            .unwrap();
        let mut engine = GuaEngine::with_defaults(t);
        engine.apply(&insert).unwrap();
        assert_eq!(
            engine
                .theory
                .alternative_worlds(ModelLimit::default())
                .unwrap()
                .len(),
            3
        );
        // Evidence: the quantity was not 9.
        let narrow = cat
            .narrow(
                &mut engine.theory,
                "Orders",
                &["700", "32", ""],
                2,
                "q",
                &["9"],
            )
            .unwrap();
        engine.apply(&narrow).unwrap();
        assert_eq!(
            engine
                .theory
                .alternative_worlds(ModelLimit::default())
                .unwrap()
                .len(),
            2
        );
        // Catalog domain shrank for future inserts.
        assert_eq!(
            cat.domain("q").unwrap(),
            &["1".to_string(), "5".to_string()][..]
        );
        // Narrowing away everything is an error.
        assert!(matches!(
            cat.narrow(
                &mut engine.theory,
                "Orders",
                &["700", "32", ""],
                2,
                "q",
                &["1", "5"]
            ),
            Err(DbError::EmptyNullDomain { .. })
        ));
    }

    #[test]
    fn assert_resolves_null() {
        let mut t = theory();
        let mut cat = NullCatalog::new();
        cat.declare("q", &["1", "5"]).unwrap();
        let u = cat
            .expand_insert(
                &mut t,
                "Orders",
                &[
                    NullableArg::parse("700"),
                    NullableArg::parse("32"),
                    NullableArg::parse("@q"),
                ],
                Wff::t(),
            )
            .unwrap();
        let mut engine = GuaEngine::with_defaults(t);
        engine.apply(&u).unwrap();
        // More exact knowledge arrives: the quantity was 5.
        engine.execute("ASSERT Orders(700,32,5)").unwrap();
        let worlds = engine
            .theory
            .alternative_worlds(ModelLimit::default())
            .unwrap();
        assert_eq!(worlds.len(), 1);
    }
}
