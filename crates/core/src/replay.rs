//! The replay-log strawman of §4.
//!
//! "It is in large part the possibility of heuristic simplification that
//! makes the LDML algorithms more attractive than **simply keeping a record
//! of past updates and recomputing the state of the theory on each new
//! query**."
//!
//! [`ReplayDatabase`] is that alternative system, built to be compared
//! against `LogicalDatabase` in experiment E8: updates are O(1) appends to
//! a log; every query replays the whole log through GUA (no
//! simplification) onto a scratch copy of the initial theory and then
//! answers on the scratch theory. Query cost therefore grows with the log,
//! while the GUA+simplify system pays per update and keeps queries cheap.

use crate::error::DbError;
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_ldml::Update;
use winslett_logic::{AtomId, Wff};
use winslett_theory::{Theory, TheoryStats};

/// Replays `updates` in order through GUA (no simplification — the §4
/// strawman's configuration) onto a scratch copy of `initial`, returning
/// the resulting theory. This is the single replay path shared by
/// [`ReplayDatabase::materialize`] and the WAL recovery of
/// [`crate::wal`]: recovery *is* the strawman's recomputation, run once at
/// startup instead of per query.
pub fn replay_updates(initial: &Theory, updates: &[Update]) -> Result<Theory, DbError> {
    let mut engine = GuaEngine::new(
        initial.clone(),
        GuaOptions::simplify_always(SimplifyLevel::None),
    );
    for u in updates {
        engine.apply(u)?;
    }
    Ok(engine.theory)
}

/// Checks that every atom id an update mentions is interned in `theory`.
/// An id beyond the atom table is proof the update was built against a
/// different theory; ids *within* range but minted by a different lineage
/// cannot be detected — that is what [`ReplayDatabase::update_synced`]'s
/// append-only-lineage contract exists for.
fn first_foreign_atom(update: &Update, theory: &Theory) -> Option<AtomId> {
    let form = update.to_insert();
    let n = theory.num_atoms();
    for w in [&form.omega, &form.phi] {
        for a in w.atom_set() {
            if a.index() >= n {
                return Some(a);
            }
        }
    }
    None
}

/// A logical database that stores updates as a log and recomputes on query.
#[derive(Clone, Debug)]
pub struct ReplayDatabase {
    initial: Theory,
    log: Vec<Update>,
}

impl ReplayDatabase {
    /// Wraps an initial theory.
    pub fn new(initial: Theory) -> Self {
        ReplayDatabase {
            initial,
            log: Vec::new(),
        }
    }

    /// Records an update — O(1) theory work. The update's atom ids must be
    /// interned in this database's initial theory; an update parsed
    /// against a *different* (richer) theory is rejected with
    /// [`DbError::ForeignUpdate`] instead of being logged and silently
    /// replayed as the wrong atoms later (use
    /// [`ReplayDatabase::update_synced`] for that case).
    pub fn update(&mut self, update: Update) -> Result<(), DbError> {
        if let Some(a) = first_foreign_atom(&update, &self.initial) {
            return Err(DbError::ForeignUpdate {
                atom_id: a.0,
                num_atoms: self.initial.num_atoms(),
            });
        }
        self.log.push(update);
        Ok(())
    }

    /// Records an update whose atoms were interned against `language` (a
    /// theory sharing this database's lineage). The vocabulary and atom
    /// table are append-only, so adopting the richer copies keeps every
    /// previously logged id valid. An update whose ids exceed even
    /// `language`'s atom table is rejected with [`DbError::ForeignUpdate`].
    pub fn update_synced(&mut self, update: Update, language: &Theory) -> Result<(), DbError> {
        if let Some(a) = first_foreign_atom(&update, language) {
            return Err(DbError::ForeignUpdate {
                atom_id: a.0,
                num_atoms: language.num_atoms(),
            });
        }
        self.initial.vocab = language.vocab.clone();
        self.initial.atoms = language.atoms.clone();
        self.log.push(update);
        Ok(())
    }

    /// Number of logged updates.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Replays the log onto a scratch copy of the initial theory,
    /// returning the materialized current theory. This is the per-query
    /// cost the strawman pays.
    pub fn materialize(&self) -> Result<Theory, DbError> {
        replay_updates(&self.initial, &self.log)
    }

    /// Certain truth of a ground wff, by replay.
    pub fn is_certain(&self, wff: &Wff) -> Result<bool, DbError> {
        Ok(self.materialize()?.entails(wff))
    }

    /// Possible truth of a ground wff, by replay.
    pub fn is_possible(&self, wff: &Wff) -> Result<bool, DbError> {
        Ok(self.materialize()?.consistent_with(wff))
    }

    /// Stats of the materialized theory (useful to see unbounded growth).
    pub fn materialized_stats(&self) -> Result<TheoryStats, DbError> {
        Ok(self.materialize()?.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::AtomId;

    fn setup() -> (Theory, AtomId, AtomId) {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        t.assert_atom(a);
        t.assert_not_atom(b);
        (t, a, b)
    }

    #[test]
    fn replay_matches_eager_execution() {
        let (t, a, b) = setup();
        let updates = vec![
            Update::delete(a, Wff::t()),
            Update::insert(Wff::Atom(b), Wff::t()),
            Update::insert(
                winslett_logic::Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]),
                Wff::t(),
            ),
        ];
        // Eager path.
        let mut eager = GuaEngine::with_defaults(t.clone());
        for u in &updates {
            eager.apply(u).unwrap();
        }
        // Replay path.
        let mut replay = ReplayDatabase::new(t);
        for u in &updates {
            replay.update(u.clone()).unwrap();
        }
        for wff in [
            Wff::Atom(a),
            Wff::Atom(b),
            Wff::or2(Wff::Atom(a), Wff::Atom(b)),
        ] {
            assert_eq!(
                replay.is_certain(&wff).unwrap(),
                eager.theory.entails(&wff),
                "certainty mismatch on {wff:?}"
            );
            assert_eq!(
                replay.is_possible(&wff).unwrap(),
                eager.theory.consistent_with(&wff),
                "possibility mismatch on {wff:?}"
            );
        }
    }

    #[test]
    fn updates_are_constant_time_appends() {
        let (t, a, _) = setup();
        let mut replay = ReplayDatabase::new(t);
        for _ in 0..100 {
            replay.update(Update::delete(a, Wff::t())).unwrap();
        }
        assert_eq!(replay.log_len(), 100);
    }

    #[test]
    fn materialized_theory_grows_with_log() {
        let (t, a, b) = setup();
        let mut replay = ReplayDatabase::new(t);
        let mut sizes = Vec::new();
        for i in 0..5 {
            replay
                .update(Update::insert(
                    winslett_logic::Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]),
                    Wff::t(),
                ))
                .unwrap();
            let _ = i;
            sizes.push(replay.materialized_stats().unwrap().store_nodes);
        }
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sizes: {sizes:?}");
    }

    #[test]
    fn foreign_update_rejected_with_typed_error() {
        // Regression for the documented footgun: an update parsed against
        // a richer theory used to be logged silently and replayed as
        // whatever atoms happened to occupy those ids (or panic). It must
        // be refused up front.
        let (t, _, _) = setup();
        let mut richer = t.clone();
        let extra = {
            let r = richer.vocab.find_predicate("R").unwrap();
            let c = richer.constant("zzz");
            richer.atom(r, &[c])
        };
        let mut replay = ReplayDatabase::new(t);
        let err = replay
            .update(Update::insert(Wff::Atom(extra), Wff::t()))
            .unwrap_err();
        assert_eq!(
            err,
            DbError::ForeignUpdate {
                atom_id: extra.0,
                num_atoms: replay.initial.num_atoms(),
            }
        );
        assert_eq!(replay.log_len(), 0); // nothing was logged
                                         // The φ side is validated too.
        let (t2, a, _) = setup();
        let mut replay2 = ReplayDatabase::new(t2);
        assert!(replay2
            .update(Update::insert(Wff::Atom(a), Wff::Atom(extra)))
            .is_err());
        // update_synced with the matching richer language accepts it …
        replay
            .update_synced(Update::insert(Wff::Atom(extra), Wff::t()), &richer)
            .unwrap();
        assert_eq!(replay.log_len(), 1);
        assert!(replay.is_certain(&Wff::Atom(extra)).unwrap());
        // … but still rejects ids beyond even the synced language.
        let bogus = winslett_logic::AtomId(10_000);
        assert!(matches!(
            replay.update_synced(Update::delete(bogus, Wff::t()), &richer),
            Err(DbError::ForeignUpdate { .. })
        ));
    }
}
