//! The replay-log strawman of §4.
//!
//! "It is in large part the possibility of heuristic simplification that
//! makes the LDML algorithms more attractive than **simply keeping a record
//! of past updates and recomputing the state of the theory on each new
//! query**."
//!
//! [`ReplayDatabase`] is that alternative system, built to be compared
//! against `LogicalDatabase` in experiment E8: updates are O(1) appends to
//! a log; every query replays the whole log through GUA (no
//! simplification) onto a scratch copy of the initial theory and then
//! answers on the scratch theory. Query cost therefore grows with the log,
//! while the GUA+simplify system pays per update and keeps queries cheap.

use crate::error::DbError;
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
use winslett_ldml::Update;
use winslett_logic::Wff;
use winslett_theory::{Theory, TheoryStats};

/// A logical database that stores updates as a log and recomputes on query.
#[derive(Clone, Debug)]
pub struct ReplayDatabase {
    initial: Theory,
    log: Vec<Update>,
}

impl ReplayDatabase {
    /// Wraps an initial theory.
    pub fn new(initial: Theory) -> Self {
        ReplayDatabase {
            initial,
            log: Vec::new(),
        }
    }

    /// Records an update — O(1), no theory work at all. The update's atom
    /// ids must be interned in this database's initial theory; if the
    /// update was parsed against a *different* (richer) theory, use
    /// [`ReplayDatabase::update_synced`].
    pub fn update(&mut self, update: Update) {
        self.log.push(update);
    }

    /// Records an update whose atoms were interned against `language` (a
    /// theory sharing this database's lineage). The vocabulary and atom
    /// table are append-only, so adopting the richer copies keeps every
    /// previously logged id valid.
    pub fn update_synced(&mut self, update: Update, language: &Theory) {
        self.initial.vocab = language.vocab.clone();
        self.initial.atoms = language.atoms.clone();
        self.log.push(update);
    }

    /// Number of logged updates.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Replays the log onto a scratch copy of the initial theory,
    /// returning the materialized current theory. This is the per-query
    /// cost the strawman pays.
    pub fn materialize(&self) -> Result<Theory, DbError> {
        let mut engine = GuaEngine::new(
            self.initial.clone(),
            GuaOptions::simplify_always(SimplifyLevel::None),
        );
        for u in &self.log {
            engine.apply(u)?;
        }
        Ok(engine.theory)
    }

    /// Certain truth of a ground wff, by replay.
    pub fn is_certain(&self, wff: &Wff) -> Result<bool, DbError> {
        Ok(self.materialize()?.entails(wff))
    }

    /// Possible truth of a ground wff, by replay.
    pub fn is_possible(&self, wff: &Wff) -> Result<bool, DbError> {
        Ok(self.materialize()?.consistent_with(wff))
    }

    /// Stats of the materialized theory (useful to see unbounded growth).
    pub fn materialized_stats(&self) -> Result<TheoryStats, DbError> {
        Ok(self.materialize()?.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::AtomId;

    fn setup() -> (Theory, AtomId, AtomId) {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        t.assert_atom(a);
        t.assert_not_atom(b);
        (t, a, b)
    }

    #[test]
    fn replay_matches_eager_execution() {
        let (t, a, b) = setup();
        let updates = vec![
            Update::delete(a, Wff::t()),
            Update::insert(Wff::Atom(b), Wff::t()),
            Update::insert(
                winslett_logic::Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]),
                Wff::t(),
            ),
        ];
        // Eager path.
        let mut eager = GuaEngine::with_defaults(t.clone());
        for u in &updates {
            eager.apply(u).unwrap();
        }
        // Replay path.
        let mut replay = ReplayDatabase::new(t);
        for u in &updates {
            replay.update(u.clone());
        }
        for wff in [
            Wff::Atom(a),
            Wff::Atom(b),
            Wff::or2(Wff::Atom(a), Wff::Atom(b)),
        ] {
            assert_eq!(
                replay.is_certain(&wff).unwrap(),
                eager.theory.entails(&wff),
                "certainty mismatch on {wff:?}"
            );
            assert_eq!(
                replay.is_possible(&wff).unwrap(),
                eager.theory.consistent_with(&wff),
                "possibility mismatch on {wff:?}"
            );
        }
    }

    #[test]
    fn updates_are_constant_time_appends() {
        let (t, a, _) = setup();
        let mut replay = ReplayDatabase::new(t);
        for _ in 0..100 {
            replay.update(Update::delete(a, Wff::t()));
        }
        assert_eq!(replay.log_len(), 100);
    }

    #[test]
    fn materialized_theory_grows_with_log() {
        let (t, a, b) = setup();
        let mut replay = ReplayDatabase::new(t);
        let mut sizes = Vec::new();
        for i in 0..5 {
            replay.update(Update::insert(
                winslett_logic::Formula::Or(vec![Wff::Atom(a), Wff::Atom(b)]),
                Wff::t(),
            ));
            let _ = i;
            sizes.push(replay.materialized_stats().unwrap().store_nodes);
        }
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sizes: {sizes:?}");
    }
}
