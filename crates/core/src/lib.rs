//! # winslett-core
//!
//! The user-facing façade of the Winslett (PODS 1986) reproduction: a
//! logical database with incomplete information, updated by GUA and
//! queried by entailment.
//!
//! * [`LogicalDatabase`] — schema declaration, fact loading, textual LDML
//!   execution, certain/possible wff checks, conjunctive [`Query`]
//!   answering, world inspection, and the §3.5 type-axiom widening layer.
//! * [`NullCatalog`] — null values via finite-domain Skolem expansion.
//! * [`ReplayDatabase`] — the §4 strawman that logs updates and recomputes
//!   on query (the comparison system of experiment E8).
//! * [`Workload`] — deterministic workload generators for the experiment
//!   harness and benches.

pub mod db;
pub mod error;
pub mod explain;
pub mod nulls;
pub mod persist;
pub mod query;
pub mod relational;
pub mod replay;
pub mod snapshot;
pub mod txn;
pub mod vars;
pub mod wal;
pub mod workload;

pub use db::{DbOptions, LogicalDatabase};
pub use error::DbError;
pub use explain::{explain, Explanation, Verdict};
pub use nulls::{NullCatalog, NullableArg};
pub use persist::{
    dump_theory, load_theory, restore_theory, save_theory, TheoryDump, DUMP_VERSION,
};
pub use query::{Answers, Query, QueryAtom, QueryTerm, SupportedAnswer};
pub use relational::{certain_database, from_world, possible_database, RelationalDatabase};
pub use replay::{replay_updates, ReplayDatabase};
pub use snapshot::{SnapshotReader, TheorySnapshot};
pub use txn::{LockMode, LockRequest, LockTable, GLOBAL_KEY};
pub use vars::{PatternWff, VarAtom, VarStatement, VarTerm, VarUpdate};
pub use wal::{
    replay_record, Catchup, CompactionOutcome, DirStorage, DurableDatabase, FailpointStorage,
    MemStorage, RecoveryReport, Storage, SyncPolicy, WalEntry, WalOptions, WalRecord, WalSnapshot,
    WalStats, MAX_RECORD_LEN,
};
pub use workload::Workload;
