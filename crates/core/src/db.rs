//! The `LogicalDatabase` façade: an extended relational theory maintained
//! by GUA, queried by entailment.
//!
//! This is the API a downstream user adopts: declare a schema, load facts,
//! run LDML updates (textual or AST), ask certain/possible queries, and
//! inspect the alternative worlds. The §3.5 "additional layer … between
//! the user and algorithm GUA" that widens updates to satisfy type axioms
//! is available as [`DbOptions::widen_type_axioms`].

use crate::error::DbError;
use crate::query::{Answers, Query};
use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel, UpdateReport};
use winslett_ldml::Update;
use winslett_logic::{parse_wff, AtomId, BitSet, Formula, ModelLimit, ParseContext, PredId, Wff};
use winslett_theory::{Dependency, Theory, TheoryStats};

/// Configuration for a [`LogicalDatabase`].
#[derive(Clone, Copy, Debug)]
pub struct DbOptions {
    /// Simplification level applied after each update (§4).
    pub simplify: SimplifyLevel,
    /// When true, an INSERT whose ω contains a positively occurring tuple
    /// of a typed relation is widened with that tuple's attribute atoms —
    /// the paper's example: `INSERT R(a,b,c)` becomes
    /// `INSERT R(a,b,c) ∧ A₁(a) ∧ A₂(b) ∧ A₃(c)` (§3.5).
    pub widen_type_axioms: bool,
    /// Cap on alternative-world enumeration.
    pub world_limit: ModelLimit,
}

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            simplify: SimplifyLevel::Fast,
            widen_type_axioms: true,
            world_limit: ModelLimit::default(),
        }
    }
}

/// A logical database with incomplete information.
///
/// ```
/// use winslett_core::LogicalDatabase;
///
/// let mut db = LogicalDatabase::new();
/// db.declare_relation("Orders", 3)?;
/// db.load_fact("Orders", &["700", "32", "9"])?;
///
/// // A branching update records genuine uncertainty …
/// db.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")?;
/// assert_eq!(db.world_names()?.len(), 3);
/// assert!(db.is_possible("Orders(100,32,1)")?);
/// assert!(!db.is_certain("Orders(100,32,1)")?);
///
/// // … and ASSERT resolves it when exact knowledge arrives.
/// db.execute("ASSERT Orders(100,32,7) & !Orders(100,32,1)")?;
/// assert!(db.is_certain("Orders(100,32,7)")?);
///
/// let answers = db.query("Orders(?o, 32, ?q)")?;
/// assert_eq!(answers.certain.len(), 2);
/// # Ok::<(), winslett_core::DbError>(())
/// ```
#[derive(Clone, Debug)]
pub struct LogicalDatabase {
    pub(crate) engine: GuaEngine,
    options: DbOptions,
    /// The update log (for provenance and the replay baseline).
    pub(crate) log: Vec<Update>,
}

impl Default for LogicalDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl LogicalDatabase {
    /// Creates an empty database with default options.
    pub fn new() -> Self {
        Self::with_options(DbOptions::default())
    }

    /// Creates an empty database with explicit options.
    pub fn with_options(options: DbOptions) -> Self {
        LogicalDatabase {
            engine: GuaEngine::new(Theory::new(), GuaOptions::simplify_always(options.simplify)),
            options,
            log: Vec::new(),
        }
    }

    /// Wraps an existing theory.
    pub fn from_theory(theory: Theory, options: DbOptions) -> Self {
        LogicalDatabase {
            engine: GuaEngine::new(theory, GuaOptions::simplify_always(options.simplify)),
            options,
            log: Vec::new(),
        }
    }

    /// The underlying theory (read-only).
    pub fn theory(&self) -> &Theory {
        &self.engine.theory
    }

    /// The underlying theory (mutable — for initial loading).
    pub fn theory_mut(&mut self) -> &mut Theory {
        &mut self.engine.theory
    }

    /// The options in force.
    pub fn options(&self) -> DbOptions {
        self.options
    }

    /// The update log so far.
    pub fn log(&self) -> &[Update] {
        &self.log
    }

    // ----- schema -----------------------------------------------------------

    /// Declares a unary attribute predicate.
    pub fn declare_attribute(&mut self, name: &str) -> Result<PredId, DbError> {
        Ok(self.engine.theory.declare_attribute(name)?)
    }

    /// Declares an untyped relation.
    pub fn declare_relation(&mut self, name: &str, arity: usize) -> Result<PredId, DbError> {
        Ok(self.engine.theory.declare_relation(name, arity)?)
    }

    /// Declares a relation with a type axiom.
    pub fn declare_typed_relation(
        &mut self,
        name: &str,
        attrs: &[PredId],
    ) -> Result<PredId, DbError> {
        Ok(self.engine.theory.declare_typed_relation(name, attrs)?)
    }

    /// Adds a dependency axiom.
    pub fn add_dependency(&mut self, dep: Dependency) {
        self.engine.theory.add_dependency(dep);
    }

    // ----- initial loading ---------------------------------------------------

    /// Loads a ground fact `pred(args…)` as certainly true (initial state,
    /// bypassing GUA). Attribute atoms of typed relations are loaded too.
    pub fn load_fact(&mut self, pred: &str, args: &[&str]) -> Result<AtomId, DbError> {
        let atom = self.engine.theory.atom_by_name(pred, args)?;
        self.engine.theory.assert_atom(atom);
        // Keep the theory legal under type axioms.
        let ga = self.engine.theory.atoms.resolve(atom).clone();
        if let Some(attrs) = self.engine.theory.schema.type_axiom(ga.pred) {
            let attrs = attrs.to_vec();
            for (&attr, &c) in attrs.iter().zip(ga.args.iter()) {
                let aa = self
                    .engine
                    .theory
                    .atoms
                    .intern(winslett_logic::GroundAtom::new(attr, &[c]));
                if !self.engine.theory.entails(&Wff::Atom(aa)) {
                    self.engine.theory.assert_atom(aa);
                }
            }
        }
        Ok(atom)
    }

    /// Loads an arbitrary ground wff into the non-axiomatic section
    /// (initial state — e.g. disjunctive information), parsed permissively
    /// for constants but strictly for predicates.
    pub fn load_wff(&mut self, src: &str) -> Result<(), DbError> {
        let theory = &mut self.engine.theory;
        let before_preds = theory.vocab.num_predicates();
        let wff = {
            let mut ctx = ParseContext {
                vocab: &mut theory.vocab,
                atoms: &mut theory.atoms,
                declare: true,
                allow_predicate_constants: false,
            };
            parse_wff(src, &mut ctx)?
        };
        if theory.vocab.num_predicates() != before_preds {
            return Err(DbError::Query {
                message: format!("unknown predicate in wff `{src}`"),
            });
        }
        theory.assert_wff(&wff);
        Ok(())
    }

    // ----- updates -----------------------------------------------------------

    /// Parses and executes one LDML statement.
    pub fn execute(&mut self, src: &str) -> Result<UpdateReport, DbError> {
        let update = self.engine.parse(src)?;
        self.update(&update)
    }

    /// Executes an update AST.
    pub fn update(&mut self, update: &Update) -> Result<UpdateReport, DbError> {
        let effective =
            if self.options.widen_type_axioms && self.engine.theory.schema.has_type_axioms() {
                self.widen(update)
            } else {
                update.clone()
            };
        let report = self.engine.apply(&effective)?;
        self.log.push(effective);
        Ok(report)
    }

    /// Parses and executes an LDML statement **with variables** (§4): the
    /// statement is expanded against the registered atoms into a set of
    /// ground updates, which is applied *simultaneously*. Returns the
    /// number of ground instances together with the combined report.
    ///
    /// ```text
    /// DELETE Orders(?o, 32, ?q) WHERE T
    /// MODIFY Stored(?p, bin1) TO BE Stored(?p, bin2) WHERE T
    /// ```
    pub fn execute_variable(&mut self, src: &str) -> Result<(usize, UpdateReport), DbError> {
        let stmt = crate::vars::VarStatement::parse(src, &self.engine.theory)?;
        let ground = stmt.expand(&mut self.engine.theory)?;
        let effective: Vec<Update> =
            if self.options.widen_type_axioms && self.engine.theory.schema.has_type_axioms() {
                ground.iter().map(|u| self.widen(u)).collect()
            } else {
                ground
            };
        let report = self.engine.apply_simultaneous(&effective)?;
        let n = effective.len();
        self.log.extend(effective);
        Ok((n, report))
    }

    /// Executes one LDML statement **atomically with respect to
    /// consistency**: if the update would leave the database with no
    /// alternative worlds (e.g. an insert that violates a dependency axiom
    /// in every world — rule 3 weeds them all out), the database is rolled
    /// back to its prior state and an error is returned instead.
    ///
    /// This is the guard a production deployment wants around ad-hoc
    /// updates: the bare semantics happily records "no world is possible"
    /// (which is faithful to the paper), but an application usually
    /// prefers refusal over a wiped database.
    pub fn execute_atomic(&mut self, src: &str) -> Result<UpdateReport, DbError> {
        let snapshot = self.clone();
        match self.execute(src) {
            Ok(report) => {
                if self.is_consistent() {
                    Ok(report)
                } else {
                    *self = snapshot;
                    Err(DbError::Query {
                        message: format!(
                            "update `{src}` would leave no possible world; rolled back"
                        ),
                    })
                }
            }
            Err(e) => {
                *self = snapshot;
                Err(e)
            }
        }
    }

    /// Runs several statements as one all-or-nothing transaction: if any
    /// statement fails, or the final state is inconsistent, everything is
    /// rolled back. Returns the per-statement reports on success.
    pub fn transaction(&mut self, statements: &[&str]) -> Result<Vec<UpdateReport>, DbError> {
        let snapshot = self.clone();
        let mut reports = Vec::with_capacity(statements.len());
        for src in statements {
            match self.execute(src) {
                Ok(r) => reports.push(r),
                Err(e) => {
                    *self = snapshot;
                    return Err(e);
                }
            }
        }
        if !self.is_consistent() {
            *self = snapshot;
            return Err(DbError::Query {
                message: "transaction would leave no possible world; rolled back".into(),
            });
        }
        Ok(reports)
    }

    /// Runs an arbitrary closure against the database transactionally: on
    /// `Err` (or a final inconsistent state) the database is restored to
    /// its state at entry.
    pub fn with_transaction<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, DbError>,
    ) -> Result<T, DbError> {
        let snapshot = self.clone();
        match f(self) {
            Ok(v) if self.is_consistent() => Ok(v),
            Ok(_) => {
                *self = snapshot;
                Err(DbError::Query {
                    message: "transaction would leave no possible world; rolled back".into(),
                })
            }
            Err(e) => {
                *self = snapshot;
                Err(e)
            }
        }
    }

    /// Parses one LDML statement against this database's language without
    /// executing it (the WAL journals the parsed-and-widened form before
    /// GUA runs).
    pub fn parse_update(&mut self, src: &str) -> Result<Update, DbError> {
        Ok(self.engine.parse(src)?)
    }

    /// The §3.5-widened form of `update`, as [`LogicalDatabase::update`]
    /// would execute it. Identity when widening is off or no relation is
    /// typed.
    pub fn effective_update(&mut self, update: &Update) -> Update {
        if self.options.widen_type_axioms && self.engine.theory.schema.has_type_axioms() {
            self.widen(update)
        } else {
            update.clone()
        }
    }

    /// Applies an update that has **already** been widened (or needs no
    /// widening) — the WAL replay/execute path, which journals the
    /// effective update and must not widen twice.
    pub(crate) fn apply_effective(&mut self, effective: &Update) -> Result<UpdateReport, DbError> {
        let report = self.engine.apply(effective)?;
        self.log.push(effective.clone());
        Ok(report)
    }

    /// The §3.5 widening layer: conjoin attribute atoms for positively
    /// occurring typed tuples of ω.
    fn widen(&mut self, update: &Update) -> Update {
        let form = update.to_insert();
        let mut extra: Vec<Wff> = Vec::new();
        for f in form.omega.atom_set() {
            // Only widen atoms the insertion can make true.
            if form.omega.polarity_of(f) == Some(winslett_logic::Polarity::Negative) {
                continue;
            }
            let ga = self.engine.theory.atoms.resolve(f).clone();
            if let Some(attrs) = self.engine.theory.schema.type_axiom(ga.pred) {
                let attrs = attrs.to_vec();
                for (&attr, &c) in attrs.iter().zip(ga.args.iter()) {
                    let aa = self
                        .engine
                        .theory
                        .atoms
                        .intern(winslett_logic::GroundAtom::new(attr, &[c]));
                    // Unconditional conjunct, exactly as in the paper's
                    // example: INSERT R(a,b,c) ∧ A₁(a) ∧ A₂(b) ∧ A₃(c).
                    extra.push(Wff::Atom(aa));
                }
            }
        }
        if extra.is_empty() {
            return update.clone();
        }
        let mut omega_parts = vec![form.omega.clone()];
        omega_parts.extend(extra);
        Update::Insert {
            omega: Formula::And(omega_parts),
            phi: form.phi,
        }
    }

    // ----- queries ------------------------------------------------------------

    /// Parses a ground wff strictly (every symbol must exist, no predicate
    /// constants).
    pub fn parse_wff_strict(&mut self, src: &str) -> Result<Wff, DbError> {
        let theory = &mut self.engine.theory;
        let mut ctx = ParseContext::strict(&mut theory.vocab, &mut theory.atoms);
        Ok(parse_wff(src, &mut ctx)?)
    }

    /// Whether `wff` (textual) is true in every alternative world.
    pub fn is_certain(&mut self, src: &str) -> Result<bool, DbError> {
        let wff = self.parse_wff_strict(src)?;
        Ok(self.engine.theory.entails(&wff))
    }

    /// Whether `wff` (textual) is true in some alternative world.
    pub fn is_possible(&mut self, src: &str) -> Result<bool, DbError> {
        let wff = self.parse_wff_strict(src)?;
        Ok(self.engine.theory.consistent_with(&wff))
    }

    /// Runs a conjunctive query (textual form).
    pub fn query(&self, src: &str) -> Result<Answers, DbError> {
        let q = Query::parse(src, &self.engine.theory)?;
        q.evaluate(&self.engine.theory)
    }

    /// Runs a conjunctive query with per-answer *support counts*: for each
    /// possible answer, how many alternative worlds it holds in (support =
    /// world count ⇔ certain). Enumerates the worlds, so subject to the
    /// configured world limit.
    pub fn query_with_support(
        &self,
        src: &str,
    ) -> Result<(Vec<crate::query::SupportedAnswer>, usize), DbError> {
        let q = Query::parse(src, &self.engine.theory)?;
        q.evaluate_with_support(&self.engine.theory, self.options.world_limit)
    }

    /// Explains a ground wff: the three-valued verdict plus witness and
    /// counterexample worlds (one SAT call each; no world enumeration).
    pub fn explain(&mut self, src: &str) -> Result<crate::explain::Explanation, DbError> {
        let wff = self.parse_wff_strict(src)?;
        crate::explain::explain(&self.engine.theory, &wff)
    }

    /// Whether the database is consistent (has at least one world).
    pub fn is_consistent(&self) -> bool {
        self.engine.theory.is_consistent()
    }

    // ----- worlds and reporting ------------------------------------------------

    /// Materializes the alternative worlds as bitsets.
    pub fn worlds(&self) -> Result<Vec<BitSet>, DbError> {
        Ok(self
            .engine
            .theory
            .alternative_worlds(self.options.world_limit)?)
    }

    /// Materializes the alternative worlds as sorted atom-name lists.
    pub fn world_names(&self) -> Result<Vec<Vec<String>>, DbError> {
        let mut out: Vec<Vec<String>> = self
            .worlds()?
            .iter()
            .map(|w| self.engine.theory.format_world(w))
            .collect();
        out.sort();
        Ok(out)
    }

    /// The certain relational projection: tuples true in every world
    /// (backbone-driven; one incremental SAT session).
    pub fn certain_facts(&self) -> Result<crate::relational::RelationalDatabase, DbError> {
        crate::relational::certain_database(&self.engine.theory, self.options.world_limit)
    }

    /// The possible relational projection: tuples true in some world.
    pub fn possible_facts(&self) -> Result<crate::relational::RelationalDatabase, DbError> {
        crate::relational::possible_database(&self.engine.theory, self.options.world_limit)
    }

    /// Theory statistics.
    pub fn stats(&self) -> TheoryStats {
        self.engine.theory.stats()
    }

    /// Runs an explicit simplification pass.
    pub fn simplify(&mut self, level: SimplifyLevel) -> winslett_gua::SimplifyReport {
        self.engine.simplify(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §3.1 schema: Orders(OrderNo, PartNo, Quan) and
    /// InStock(PartNo, Quan).
    fn orders_db() -> LogicalDatabase {
        let mut db = LogicalDatabase::new();
        db.declare_relation("Orders", 3).unwrap();
        db.declare_relation("InStock", 2).unwrap();
        db.load_fact("Orders", &["700", "32", "9"]).unwrap();
        db.load_fact("InStock", &["32", "1"]).unwrap();
        db
    }

    #[test]
    fn paper_modify_example() {
        let mut db = orders_db();
        db.execute("MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)")
            .unwrap();
        assert!(db.is_certain("Orders(700,32,1)").unwrap());
        assert!(db.is_certain("!Orders(700,32,9)").unwrap());
    }

    #[test]
    fn paper_delete_example() {
        let mut db = orders_db();
        db.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        assert!(db.is_certain("!Orders(700,32,9)").unwrap());
    }

    #[test]
    fn paper_disjunctive_insert_and_assert() {
        let mut db = orders_db();
        db.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
            .unwrap();
        assert_eq!(db.world_names().unwrap().len(), 3);
        assert!(!db.is_certain("Orders(100,32,1)").unwrap());
        assert!(db.is_possible("Orders(100,32,1)").unwrap());
        assert!(db
            .is_certain("Orders(100,32,1) | Orders(100,32,7)")
            .unwrap());
        // More precise knowledge arrives.
        db.execute("ASSERT !Orders(100,32,7)").unwrap();
        assert!(db.is_certain("Orders(100,32,1)").unwrap());
        assert_eq!(db.world_names().unwrap().len(), 1);
    }

    #[test]
    fn insert_f_where_condition_enforces_constraint() {
        // Paper example: INSERT F WHERE ¬InStock(32,1) — kills worlds where
        // the part is out of stock.
        let mut db = orders_db();
        db.execute("INSERT F WHERE !InStock(32,1)").unwrap();
        assert!(db.is_consistent()); // InStock(32,1) was certain
        let mut db2 = orders_db();
        db2.execute("DELETE InStock(32,1) WHERE T").unwrap();
        db2.execute("INSERT F WHERE !InStock(32,1)").unwrap();
        assert!(!db2.is_consistent());
    }

    #[test]
    fn query_after_updates() {
        let mut db = orders_db();
        db.execute("INSERT Orders(800,32,1000) WHERE T").unwrap();
        let ans = db.query("Orders(?o, 32, ?q)").unwrap();
        assert_eq!(ans.certain.len(), 2);
    }

    #[test]
    fn widening_preserves_typed_inserts() {
        let mut db = LogicalDatabase::new();
        let part = db.declare_attribute("PartNo").unwrap();
        let quan = db.declare_attribute("Quan").unwrap();
        db.declare_typed_relation("InStock", &[part, quan]).unwrap();
        db.execute("INSERT InStock(32,5) WHERE T").unwrap();
        // With widening on (default), the tuple and its attributes arrive
        // together; without it, the type axiom would wipe the worlds.
        assert!(db.is_consistent());
        assert!(db.is_certain("InStock(32,5)").unwrap());
        assert!(db.is_certain("PartNo(32)").unwrap());
        assert!(db.is_certain("Quan(5)").unwrap());
    }

    #[test]
    fn no_widening_kills_untyped_inserts() {
        let mut db = LogicalDatabase::with_options(DbOptions {
            widen_type_axioms: false,
            ..DbOptions::default()
        });
        let part = db.declare_attribute("PartNo").unwrap();
        let quan = db.declare_attribute("Quan").unwrap();
        db.declare_typed_relation("InStock", &[part, quan]).unwrap();
        db.execute("INSERT InStock(32,5) WHERE T").unwrap();
        assert!(!db.is_consistent());
    }

    #[test]
    fn load_wff_disjunction() {
        let mut db = orders_db();
        db.load_wff("Orders(701,33,5) | Orders(701,34,5)").unwrap();
        // Inclusive disjunction: one world per satisfying valuation of the
        // two atoms (both, first-only, second-only).
        assert_eq!(db.world_names().unwrap().len(), 3);
        assert!(db
            .is_certain("Orders(701,33,5) | Orders(701,34,5)")
            .unwrap());
    }

    #[test]
    fn load_wff_rejects_unknown_predicate() {
        let mut db = orders_db();
        assert!(db.load_wff("Nope(1)").is_err());
    }

    #[test]
    fn update_log_recorded() {
        let mut db = orders_db();
        db.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        db.execute("INSERT InStock(33,2) WHERE T").unwrap();
        assert_eq!(db.log().len(), 2);
    }

    #[test]
    fn execute_atomic_rolls_back_world_wipes() {
        use winslett_theory::Dependency;
        let mut db = LogicalDatabase::new();
        let p = db.declare_relation("Price", 2).unwrap();
        db.add_dependency(Dependency::functional("fd", p, 2, &[0]).unwrap());
        db.load_fact("Price", &["widget", "10"]).unwrap();
        let before = db.world_names().unwrap();
        // A second price without vacating the first violates the FD in
        // every world: atomic execution refuses and restores.
        let r = db.execute_atomic("INSERT Price(widget,12) WHERE T");
        assert!(r.is_err());
        assert!(db.is_consistent());
        assert_eq!(db.world_names().unwrap(), before);
        assert_eq!(db.log().len(), 0); // the rejected update is not logged
                                       // The legal atomic replacement goes through.
        db.execute_atomic("INSERT Price(widget,12) & !Price(widget,10) WHERE T")
            .unwrap();
        assert!(db.is_certain("Price(widget,12)").unwrap());
    }

    #[test]
    fn transaction_all_or_nothing() {
        let mut db = orders_db();
        let before = db.world_names().unwrap();
        // Second statement fails (unknown predicate): everything rolls back.
        let r = db.transaction(&["DELETE Orders(700,32,9) WHERE T", "INSERT Nope(1) WHERE T"]);
        assert!(r.is_err());
        assert_eq!(db.world_names().unwrap(), before);
        assert_eq!(db.log().len(), 0);
        // A consistent pair commits.
        let reports = db
            .transaction(&[
                "DELETE Orders(700,32,9) WHERE T",
                "INSERT Orders(800,32,5) WHERE T",
            ])
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(db.log().len(), 2);
        assert!(db.is_certain("Orders(800,32,5)").unwrap());
    }

    #[test]
    fn with_transaction_closure_rollback() {
        let mut db = orders_db();
        let before = db.world_names().unwrap();
        let r: Result<(), DbError> = db.with_transaction(|db| {
            db.execute("DELETE Orders(700,32,9) WHERE T")?;
            db.execute("ASSERT F")?; // wipes all worlds
            Ok(())
        });
        assert!(r.is_err());
        assert_eq!(db.world_names().unwrap(), before);
        // Success path commits.
        db.with_transaction(|db| {
            db.execute("INSERT InStock(40,2) WHERE T")?;
            Ok(())
        })
        .unwrap();
        assert!(db.is_certain("InStock(40,2)").unwrap());
    }

    #[test]
    fn stats_track_growth() {
        let mut db = orders_db();
        let before = db.stats().store_nodes;
        db.execute("INSERT Orders(900,40,1) WHERE T").unwrap();
        assert!(db.stats().store_nodes > before);
    }
}
