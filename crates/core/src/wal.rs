//! Durable write-ahead logging and crash recovery for [`LogicalDatabase`].
//!
//! The paper's §4 observes that "simply keeping a record of past updates
//! and recomputing the state of the theory on each new query" is the
//! strawman alternative to GUA-plus-simplification. A *write-ahead log* is
//! that record put to honest work: every LDML update (and every schema
//! change) is journaled — length-prefixed, CRC32-checksummed, versioned —
//! **before** GUA applies it, so that after a crash the database state can
//! be reconstructed by loading the latest [`TheoryDump`] snapshot and
//! replaying the WAL suffix through the same replay path
//! [`ReplayDatabase`](crate::ReplayDatabase) uses
//! ([`replay_updates`]). Recovery truncates at the first torn or corrupt
//! record, which gives the atomicity guarantee the fault-injection tests
//! enforce: whatever byte a crash lands on, the recovered theory's
//! alternative-world set equals the world set after some *prefix* of the
//! acknowledged operations — never a third state.
//!
//! Layout on storage (two named files behind the [`Storage`] trait):
//!
//! ```text
//! snapshot.json   { version, lsn, theory: TheoryDump }      (atomic replace)
//! wal.log         "WWAL" ++ u32 version ++ record*          (append-only)
//! record        = u32 payload_len ++ u32 crc32(payload) ++ payload
//! payload       = JSON of { lsn, record: WalRecord }
//! ```
//!
//! Records carry monotonically increasing LSNs; the snapshot stores the
//! LSN up to which it is current, so a crash *between* writing a new
//! snapshot and resetting the WAL is harmless — recovery skips records
//! the snapshot already covers. Snapshot-triggered log compaction is
//! keyed off [`Theory::store_nodes`] growth (the §3.6 store-size
//! measure): when the live store has grown past a configurable factor of
//! its size at the last snapshot, a checkpoint folds the log into a new
//! snapshot.

use crate::db::{DbOptions, LogicalDatabase};
use crate::error::DbError;
use crate::persist::{self, DependencyDump, TheoryDump};
use crate::replay::replay_updates;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::HashSet;
use std::collections::VecDeque;
use winslett_gua::{SimplifyReport, UpdateReport};
use winslett_ldml::Update;
use winslett_logic::{display_wff, parse_wff, AtomId, Formula, ParseContext, PredId, Wff};
use winslett_theory::{Dependency, Theory};

/// WAL file name within a [`Storage`].
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name within a [`Storage`].
pub const SNAPSHOT_FILE: &str = "snapshot.json";
/// Magic bytes opening a WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"WWAL";
/// The newest WAL format version this build writes and reads.
pub const WAL_VERSION: u32 = 1;
/// The newest snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Upper bound on a single record's payload, enforced when the record is
/// minted (a typed [`DbError::RecordTooLarge`] refusal, before anything is
/// journaled) and used by [`parse_wal`] as the corruption bound (a larger
/// length prefix is treated as tail corruption, not an allocation
/// request). Deliberately held 1 KiB under the server's 4 MiB wire-frame
/// cap so any single record — JSON-wrapped into a replication batch —
/// always fits in one frame; without the headroom a near-cap record would
/// kill the subscription stream with a frame error instead of being
/// refused up front at write time.
pub const MAX_RECORD_LEN: u32 = (1 << 22) - 1024;

// ----- CRC32 (IEEE, table-driven; no external dependency) -------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3 polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ----- storage abstraction --------------------------------------------------

/// A tiny named-file layer under the WAL: enough surface for an
/// append-only log plus an atomically replaced snapshot, and small enough
/// to shim with a deterministic fault injector ([`FailpointStorage`]).
pub trait Storage {
    /// Full contents of `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DbError>;
    /// Appends `data` to `name`, creating it if missing.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), DbError>;
    /// Durably flushes `name` (fsync; no-op if it does not exist).
    fn sync(&mut self, name: &str) -> Result<(), DbError>;
    /// Atomically replaces the contents of `name` with `data`: after a
    /// crash either the old or the new contents are visible, never a mix.
    fn replace(&mut self, name: &str, data: &[u8]) -> Result<(), DbError>;
}

/// In-memory storage (tests, and the substrate of [`FailpointStorage`]).
#[derive(Clone, Debug, Default)]
pub struct MemStorage {
    files: HashMap<String, Vec<u8>>,
}

impl MemStorage {
    /// An empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct access to a file's bytes (test corruption helpers).
    pub fn get(&self, name: &str) -> Option<&Vec<u8>> {
        self.files.get(name)
    }

    /// Overwrites a file's bytes wholesale (test corruption helpers).
    pub fn put(&mut self, name: &str, data: Vec<u8>) {
        self.files.insert(name.to_string(), data);
    }

    /// Deletes a file (test helpers).
    pub fn remove(&mut self, name: &str) {
        self.files.remove(name);
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DbError> {
        Ok(self.files.get(name).cloned())
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), DbError> {
        self.files
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self, _name: &str) -> Result<(), DbError> {
        Ok(())
    }

    fn replace(&mut self, name: &str, data: &[u8]) -> Result<(), DbError> {
        self.files.insert(name.to_string(), data.to_vec());
        Ok(())
    }
}

/// Directory-backed storage: each name is a file under `dir`. Appends go
/// through `O_APPEND`; [`Storage::sync`] is a real fsync;
/// [`Storage::replace`] writes a temp file, fsyncs it, renames it into
/// place, and fsyncs the directory.
#[derive(Clone, Debug)]
pub struct DirStorage {
    dir: std::path::PathBuf,
}

impl DirStorage {
    /// Opens (creating if needed) the directory.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Result<Self, DbError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirStorage { dir })
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.dir.join(name)
    }
}

impl Storage for DirStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DbError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), DbError> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)?;
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), DbError> {
        match std::fs::File::open(self.path(name)) {
            Ok(f) => Ok(f.sync_all()?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn replace(&mut self, name: &str, data: &[u8]) -> Result<(), DbError> {
        let tmp = self.path(&format!("{name}.tmp"));
        std::fs::write(&tmp, data)?;
        std::fs::File::open(&tmp)?.sync_all()?;
        std::fs::rename(&tmp, self.path(name))?;
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

/// Deterministic fault injection: behaves like [`MemStorage`] until a
/// byte budget is exhausted, then tears the in-flight write at exactly
/// that byte and fails every subsequent operation — a crash at a chosen
/// kill point.
///
/// State is shared across clones (`Rc<RefCell<…>>`), so a test can keep a
/// sibling handle, hand the storage to a [`DurableDatabase`], and — even
/// if the crash fires inside `open` itself — read the surviving on-disk
/// image back out with [`FailpointStorage::survivor`].
///
/// `replace` is modeled as atomic (temp-file-plus-rename semantics): its
/// bytes are charged against the budget, but if the budget runs out the
/// old contents survive untouched rather than being half-overwritten.
#[derive(Clone, Debug)]
pub struct FailpointStorage {
    state: std::rc::Rc<std::cell::RefCell<FailState>>,
}

#[derive(Debug)]
struct FailState {
    inner: MemStorage,
    /// The durable image: what the platters hold. Appends land only in
    /// `inner` (the OS page cache); `sync` copies the named file down,
    /// and `replace` is durable by construction (temp file + fsync +
    /// rename + directory fsync).
    durable: MemStorage,
    budget: u64,
    bytes_written: u64,
    dead: bool,
}

impl FailState {
    fn injected(&self) -> DbError {
        DbError::Storage {
            message: format!("injected crash after {} bytes", self.bytes_written),
        }
    }
}

impl FailpointStorage {
    /// Storage that crashes once `kill_after_bytes` bytes have been
    /// written (appends tear mid-record; replaces fail atomically).
    pub fn new(kill_after_bytes: u64) -> Self {
        FailpointStorage {
            state: std::rc::Rc::new(std::cell::RefCell::new(FailState {
                inner: MemStorage::new(),
                durable: MemStorage::new(),
                budget: kill_after_bytes,
                bytes_written: 0,
                dead: false,
            })),
        }
    }

    /// Storage that never crashes (the probe run that measures how many
    /// bytes a script writes in total).
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// Total bytes accepted so far (torn prefixes included).
    pub fn bytes_written(&self) -> u64 {
        self.state.borrow().bytes_written
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.borrow().dead
    }

    /// A copy of the surviving on-disk state, as recovery would see it
    /// after a **process** crash (the OS lived on, so buffered appends
    /// reached the files even if never fsynced).
    pub fn survivor(&self) -> MemStorage {
        self.state.borrow().inner.clone()
    }

    /// A copy of the surviving on-disk state after a **power loss**: only
    /// what a [`Storage::sync`] or an atomic [`Storage::replace`] made
    /// durable. Appends that were never synced are gone.
    pub fn power_loss_survivor(&self) -> MemStorage {
        self.state.borrow().durable.clone()
    }
}

impl Storage for FailpointStorage {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DbError> {
        let st = self.state.borrow();
        if st.dead {
            return Err(st.injected());
        }
        st.inner.read(name)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<(), DbError> {
        let mut st = self.state.borrow_mut();
        if st.dead {
            return Err(st.injected());
        }
        if (data.len() as u64) <= st.budget {
            st.budget -= data.len() as u64;
            st.bytes_written += data.len() as u64;
            st.inner.append(name, data)
        } else {
            let keep = st.budget as usize;
            st.inner.append(name, &data[..keep])?;
            st.bytes_written += keep as u64;
            st.budget = 0;
            st.dead = true;
            Err(st.injected())
        }
    }

    fn sync(&mut self, name: &str) -> Result<(), DbError> {
        let mut st = self.state.borrow_mut();
        if st.dead {
            return Err(st.injected());
        }
        // fsync: the cached file becomes the durable file.
        match st.inner.get(name).cloned() {
            Some(bytes) => st.durable.put(name, bytes),
            None => st.durable.remove(name),
        }
        Ok(())
    }

    fn replace(&mut self, name: &str, data: &[u8]) -> Result<(), DbError> {
        let mut st = self.state.borrow_mut();
        if st.dead {
            return Err(st.injected());
        }
        if (data.len() as u64) <= st.budget {
            st.budget -= data.len() as u64;
            st.bytes_written += data.len() as u64;
            st.inner.replace(name, data)?;
            // temp file + fsync + rename + dir fsync: durable on return.
            st.durable.replace(name, data)
        } else {
            // The rename never happens: old contents survive.
            st.bytes_written += st.budget;
            st.budget = 0;
            st.dead = true;
            Err(st.injected())
        }
    }
}

// ----- record format --------------------------------------------------------

/// A journaled update, rendered in the portable name-based concrete
/// syntax of [`winslett_logic::parse_wff`] (the same convention as
/// [`TheoryDump`]), so records survive re-interning.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum UpdateDump {
    /// `INSERT ω WHERE φ` as `(ω, φ)`.
    Insert(String, String),
    /// `DELETE t WHERE φ ∧ t` as `(t, φ)`.
    Delete(String, String),
    /// `MODIFY t TO BE ω WHERE φ ∧ t` as `(t, ω, φ)`.
    Modify(String, String, String),
    /// `ASSERT φ` as `(φ)`.
    Assert(String),
}

/// One journaled operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// `declare_attribute(name)`.
    DeclareAttribute(String),
    /// `declare_relation(name, arity)`.
    DeclareRelation(String, usize),
    /// `declare_typed_relation(name, attribute names)`.
    DeclareTypedRelation(String, Vec<String>),
    /// `add_dependency`, in the portable form of [`DependencyDump`].
    AddDependency(DependencyDump),
    /// `load_fact(pred, args)`.
    LoadFact(String, Vec<String>),
    /// `load_wff(src)`.
    LoadWff(String),
    /// One LDML update in its **effective** (§3.5-widened) form — exactly
    /// what GUA applied, so recovery replays without re-widening.
    Apply(UpdateDump),
    /// Annuls the record at the given LSN: the live database journaled
    /// the intent but GUA refused the operation, so recovery must skip
    /// it instead of replaying a state the live system never reached.
    Abort(u64),
    /// Opens a transaction. The id is the LSN of this record, so ids are
    /// unique across the log's lifetime without extra bookkeeping.
    TxnBegin(u64),
    /// Commits a transaction: every intact [`WalRecord::TxnOp`] carrying
    /// this id becomes effective. The commit marker's durability *is* the
    /// transaction's durability — a WAL whose tail lacks it rolls the
    /// transaction back on recovery.
    TxnCommit(u64),
    /// Aborts a transaction: every [`WalRecord::TxnOp`] carrying this id
    /// is annulled. Written by explicit rollback, by a failed commit
    /// re-application, and by recovery itself as the compensation record
    /// for a transaction left unfinished by a crash.
    TxnAbort(u64),
    /// One operation journaled inside an open transaction, as
    /// `(owning txn id, operation)` — an intent that recovery and
    /// followers must buffer until the transaction's commit marker
    /// arrives. Replaying a committed transaction's ops at their journal
    /// positions (rather than at the commit point) is correct because
    /// the lock table guarantees everything interleaved between them is
    /// footprint-disjoint, hence commutative with them (Theorems 3/4).
    /// The inner record is never itself a txn record.
    TxnOp(u64, Box<WalRecord>),
}

/// A WAL entry: an operation stamped with its log sequence number.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalEntry {
    /// Position in the logical log (monotonic across compactions).
    pub lsn: u64,
    /// The journaled operation.
    pub record: WalRecord,
}

/// The snapshot file: a theory dump plus the LSN it is current through.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalSnapshot {
    /// Snapshot format version.
    pub version: u32,
    /// Records with `lsn < self.lsn` are already folded into the dump.
    pub lsn: u64,
    /// The folded theory.
    pub theory: TheoryDump,
}

/// What a replication follower needs to catch up from a given LSN cursor
/// ([`DurableDatabase::catchup_from`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Catchup {
    /// The cursor is at or past the checkpoint: replaying the effective
    /// log suffix (aborted pairs already removed) is enough.
    Suffix(Vec<WalEntry>),
    /// The cursor predates the checkpoint, so the intervening records are
    /// gone from the log: bootstrap from the snapshot, then replay the
    /// effective suffix from the snapshot's LSN onward.
    Snapshot(Box<WalSnapshot>, Vec<WalEntry>),
}

/// Drops abort records and the records they annul: what remains is the
/// *effective* log — exactly the records recovery would replay. Shipping
/// only effective records means a follower never applies a state the
/// primary refused; the resulting LSN holes are harmless because they
/// correspond to operations with no effect.
fn effective_entries(entries: Vec<WalEntry>) -> Vec<WalEntry> {
    let aborted: HashSet<u64> = entries
        .iter()
        .filter_map(|e| match e.record {
            WalRecord::Abort(lsn) => Some(lsn),
            _ => None,
        })
        .collect();
    entries
        .into_iter()
        .filter(|e| !aborted.contains(&e.lsn) && !matches!(e.record, WalRecord::Abort(_)))
        .collect()
}

/// Reads and validates the snapshot file, without restoring the theory.
fn read_snapshot<S: Storage>(storage: &S) -> Result<Option<WalSnapshot>, DbError> {
    let Some(bytes) = storage.read(SNAPSHOT_FILE)? else {
        return Ok(None);
    };
    let text = String::from_utf8(bytes).map_err(|e| DbError::Corrupt {
        message: format!("snapshot is not UTF-8: {e}"),
    })?;
    let snap: WalSnapshot = serde_json::from_str(&text).map_err(|e| DbError::Corrupt {
        message: format!("snapshot does not parse: {e}"),
    })?;
    if snap.version == 0 || snap.version > SNAPSHOT_VERSION {
        return Err(DbError::UnsupportedVersion {
            what: "wal snapshot",
            found: snap.version,
            supported: SNAPSHOT_VERSION,
        });
    }
    Ok(Some(snap))
}

fn wal_header() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&WAL_MAGIC);
    h[4..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

fn encode_entry(entry: &WalEntry) -> Result<Vec<u8>, DbError> {
    let payload = serde_json::to_string(entry)
        .map_err(|e| DbError::Query {
            message: format!("wal record serialization failed: {e}"),
        })?
        .into_bytes();
    if payload.len() > MAX_RECORD_LEN as usize {
        return Err(DbError::RecordTooLarge {
            len: payload.len(),
            max: MAX_RECORD_LEN as usize,
        });
    }
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

struct ParsedWal {
    entries: Vec<WalEntry>,
    /// `Some(reason)` if the tail was torn or corrupt and records were
    /// dropped there.
    truncated: Option<String>,
}

/// Decodes a WAL image, truncating at the first torn or corrupt record.
/// Structural damage *before* any record can be read (bad magic, future
/// version) is an error, not a truncation.
fn parse_wal(bytes: &[u8]) -> Result<ParsedWal, DbError> {
    let header = wal_header();
    if bytes.len() < 8 {
        return if header.starts_with(bytes) {
            Ok(ParsedWal {
                entries: Vec::new(),
                truncated: Some(format!("wal header torn at byte {}", bytes.len())),
            })
        } else {
            Err(DbError::Corrupt {
                message: "wal header does not carry the WWAL magic".into(),
            })
        };
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(DbError::Corrupt {
            message: "wal header does not carry the WWAL magic".into(),
        });
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version == 0 || version > WAL_VERSION {
        return Err(DbError::UnsupportedVersion {
            what: "wal",
            found: version,
            supported: WAL_VERSION,
        });
    }
    let mut entries = Vec::new();
    let mut truncated = None;
    let mut offset = 8usize;
    let mut prev_lsn: Option<u64> = None;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            truncated = Some(format!("record header torn at offset {offset}"));
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN {
            truncated = Some(format!(
                "implausible record length {len} at offset {offset}"
            ));
            break;
        }
        let len = len as usize;
        if rest.len() - 8 < len {
            truncated = Some(format!("record payload torn at offset {offset}"));
            break;
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            truncated = Some(format!("checksum mismatch at offset {offset}"));
            break;
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_) => {
                truncated = Some(format!("non-UTF-8 payload at offset {offset}"));
                break;
            }
        };
        let entry: WalEntry = match serde_json::from_str(text) {
            Ok(e) => e,
            Err(e) => {
                truncated = Some(format!("undecodable payload at offset {offset}: {e}"));
                break;
            }
        };
        if let Some(p) = prev_lsn {
            if entry.lsn != p + 1 {
                truncated = Some(format!(
                    "lsn discontinuity at offset {offset}: {} after {p}",
                    entry.lsn
                ));
                break;
            }
        }
        prev_lsn = Some(entry.lsn);
        entries.push(entry);
        offset += 8 + len;
    }
    Ok(ParsedWal { entries, truncated })
}

// ----- update rendering -----------------------------------------------------

fn dump_update(u: &Update, t: &Theory) -> UpdateDump {
    let wff = |w: &Wff| display_wff(w, &t.vocab, &t.atoms).to_string();
    let atom = |a: AtomId| t.atoms.resolve(a).display(&t.vocab).to_string();
    match u {
        Update::Insert { omega, phi } => UpdateDump::Insert(wff(omega), wff(phi)),
        Update::Delete { t: tt, phi } => UpdateDump::Delete(atom(*tt), wff(phi)),
        Update::Modify { t: tt, omega, phi } => UpdateDump::Modify(atom(*tt), wff(omega), wff(phi)),
        Update::Assert { phi } => UpdateDump::Assert(wff(phi)),
    }
}

fn parse_wal_wff(src: &str, theory: &mut Theory) -> Result<Wff, DbError> {
    let mut ctx = ParseContext {
        vocab: &mut theory.vocab,
        atoms: &mut theory.atoms,
        declare: true, // constants may be new to the snapshot
        allow_predicate_constants: true,
    };
    Ok(parse_wff(src, &mut ctx)?)
}

fn parse_wal_atom(src: &str, theory: &mut Theory) -> Result<AtomId, DbError> {
    match parse_wal_wff(src, theory)? {
        Formula::Atom(id) => Ok(id),
        other => Err(DbError::Corrupt {
            message: format!("journaled target `{src}` is not an atom: {other:?}"),
        }),
    }
}

fn restore_update(d: &UpdateDump, theory: &mut Theory) -> Result<Update, DbError> {
    Ok(match d {
        UpdateDump::Insert(omega, phi) => Update::Insert {
            omega: parse_wal_wff(omega, theory)?,
            phi: parse_wal_wff(phi, theory)?,
        },
        UpdateDump::Delete(t, phi) => Update::Delete {
            t: parse_wal_atom(t, theory)?,
            phi: parse_wal_wff(phi, theory)?,
        },
        UpdateDump::Modify(t, omega, phi) => Update::Modify {
            t: parse_wal_atom(t, theory)?,
            omega: parse_wal_wff(omega, theory)?,
            phi: parse_wal_wff(phi, theory)?,
        },
        UpdateDump::Assert(phi) => Update::Assert {
            phi: parse_wal_wff(phi, theory)?,
        },
    })
}

// ----- options, stats, reports ----------------------------------------------

/// When WAL appends are made durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record: smallest loss window, highest latency.
    EveryRecord,
    /// fsync once per `n` records (group commit), and at every explicit
    /// [`DurableDatabase::sync`] or checkpoint.
    GroupCommit(usize),
    /// fsync only on explicit [`DurableDatabase::sync`] and checkpoints.
    Manual,
}

/// WAL tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Commit durability policy.
    pub policy: SyncPolicy,
    /// Auto-checkpoint when the live store's node count exceeds this
    /// factor of its count at the last snapshot; `None` disables
    /// compaction.
    pub compact_growth_factor: Option<f64>,
    /// Node floor below which auto-compaction never triggers.
    pub compact_min_nodes: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            policy: SyncPolicy::EveryRecord,
            compact_growth_factor: Some(4.0),
            compact_min_nodes: 256,
        }
    }
}

/// Counters kept by a [`DurableDatabase`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (aborts included).
    pub records: u64,
    /// fsync calls issued.
    pub syncs: u64,
    /// Checkpoints taken (explicit and auto-compaction).
    pub checkpoints: u64,
    /// Bytes appended to the log.
    pub bytes_appended: u64,
    /// Background-compaction swaps installed.
    pub compactions: u64,
}

/// What [`DurableDatabase::open`] found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN the snapshot was current through (0 if no snapshot).
    pub snapshot_lsn: u64,
    /// Intact records decoded from the WAL.
    pub records_seen: usize,
    /// Records replayed into the recovered state.
    pub replayed: usize,
    /// Records skipped: already covered by the snapshot, annulled by an
    /// abort record, or the abort records themselves.
    pub skipped: usize,
    /// `Some(reason)` if a torn/corrupt tail was dropped.
    pub truncated: Option<String>,
    /// `Some(error)` if replay stopped early at a failing record; the
    /// recovered state is the longest replayable prefix.
    pub replay_error: Option<String>,
    /// Whether `open` took a repair checkpoint (truncation or replay
    /// error observed) to make the on-storage files consistent again.
    pub repaired: bool,
    /// Transactions found unfinished at the end of the log (begun, never
    /// committed or aborted) and rolled back by `open`, which appends a
    /// compensating [`WalRecord::TxnAbort`] for each.
    pub rolled_back: usize,
    /// What the post-replay simplification pass accomplished. Replay runs
    /// unsimplified (the §4 configuration), so recovery folds the store
    /// back down afterwards; this is that pass's report — all zeros when
    /// `open` initialized fresh storage and never replayed.
    pub simplify: SimplifyReport,
}

impl RecoveryReport {
    /// Store nodes reclaimed by the post-replay simplification pass.
    pub fn nodes_reclaimed(&self) -> usize {
        self.simplify
            .nodes_before
            .saturating_sub(self.simplify.nodes_after)
    }
}

/// What one background-compaction swap accomplished
/// ([`DurableDatabase::install_compacted`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// First LSN that was *not* reflected in the captured theory; the
    /// swap replayed every retained record at or past it.
    pub from_lsn: u64,
    /// Records replayed onto the compacted copy during the swap.
    pub replayed: usize,
    /// Live store nodes at swap time (§3.6 measure).
    pub nodes_before: usize,
    /// Store nodes after the swap.
    pub nodes_after: usize,
    /// Live theory generation the swap retired.
    pub generation_before: u64,
    /// Generation of the installed theory — strictly greater than
    /// `generation_before`, always.
    pub generation_after: u64,
    /// Whether the swap also took a checkpoint, so the on-storage
    /// snapshot shrank with the theory.
    pub checkpointed: bool,
}

impl CompactionOutcome {
    /// Net store nodes reclaimed by the swap (zero if the suffix replay
    /// out-grew the simplification savings).
    pub fn nodes_reclaimed(&self) -> usize {
        self.nodes_before.saturating_sub(self.nodes_after)
    }
}

// ----- the durable database -------------------------------------------------

/// A [`LogicalDatabase`] whose every state transition is journaled to a
/// [`Storage`] before GUA applies it, with snapshot-based log compaction
/// and crash recovery.
#[derive(Clone, Debug)]
pub struct DurableDatabase<S: Storage> {
    db: LogicalDatabase,
    /// `None` only after [`DurableDatabase::close`] /
    /// [`DurableDatabase::into_storage`] moved the storage out (which is
    /// what lets those methods coexist with the flush-on-[`Drop`] impl).
    storage: Option<S>,
    wal_options: WalOptions,
    next_lsn: u64,
    snapshot_lsn: u64,
    unsynced: usize,
    nodes_at_snapshot: usize,
    /// `Some` while a background-compaction capture is outstanding: every
    /// appended record is also retained here so
    /// [`DurableDatabase::install_compacted`] can replay the delta at
    /// swap time without re-reading (and re-parsing) the whole on-storage
    /// log under the writer lock. Bounded by the capture→install window.
    compaction_tail: Option<Vec<WalEntry>>,
    /// `Some` once [`DurableDatabase::enable_shipping`] armed WAL
    /// shipping: every appended record is also retained here until the
    /// next [`DurableDatabase::drain_shipping`], which hands the batch to
    /// the replication fan-out. Bounded by the append→drain window (one
    /// write batch on the server).
    shipping_tail: Option<Vec<WalEntry>>,
    /// Open transactions, keyed by id (= the begin record's LSN). Each
    /// holds a read-your-writes workspace and the redo list its commit
    /// re-applies to the live database.
    txns: HashMap<u64, OpenTxn>,
    /// Bumped whenever the *live* database mutates (plain journaled
    /// writes, transaction commits, compaction swaps) — the staleness
    /// stamp transaction workspaces are rebuilt against.
    applied_version: u64,
    /// The records behind the most recent `applied_version` bumps,
    /// tagged with the version each one produced — the delta a stale
    /// transaction workspace catches up on without cloning the live
    /// database (everything here is footprint-disjoint from any open
    /// transaction's held atoms, hence commutative with its ops —
    /// Theorems 3/4). Bounded by [`RECENT_CAP`]; compaction swaps clear
    /// it (the delta cannot express a re-encoding).
    recent: VecDeque<(u64, WalRecord)>,
    /// Highest version evicted from (or never covered by) `recent`: the
    /// deque covers exactly `(recent_floor, applied_version]`. A
    /// workspace whose basis fell below the floor takes the full
    /// clone-and-redo rebuild instead.
    recent_floor: u64,
    stats: WalStats,
}

/// How many live-mutation records [`DurableDatabase::recent`] retains
/// for delta workspace refreshes before falling back to full rebuilds.
const RECENT_CAP: usize = 256;

/// One open transaction's private state.
#[derive(Clone, Debug)]
struct OpenTxn {
    /// The live database as of `basis_version`, plus this transaction's
    /// own ops — what its statements parse and apply against, giving
    /// read-your-writes without touching the shared state.
    workspace: LogicalDatabase,
    /// [`DurableDatabase::applied_version`] the workspace was built at;
    /// when the live database has advanced past it, the workspace is
    /// rebuilt (fresh clone + redo replay) before the next statement.
    basis_version: u64,
    /// Journaled intents in order — the redo list commit re-applies to
    /// the live database.
    ops: Vec<WalRecord>,
}

/// How a journaled transactional statement failed.
enum TxnJournalErr {
    /// The statement was refused; the workspace was restored and the
    /// transaction stays open.
    Refused(DbError),
    /// The workspace could not be restored after a refused apply; the
    /// transaction must self-abort.
    Broken(DbError),
}

impl<S: Storage> DurableDatabase<S> {
    /// Opens a durable database on `storage`: recovers if a snapshot or
    /// WAL is present, otherwise initializes a fresh one. When recovery
    /// observes a torn tail or a replay error, `open` takes a repair
    /// checkpoint so the storage is consistent with the recovered state.
    pub fn open(
        mut storage: S,
        db_options: DbOptions,
        wal_options: WalOptions,
    ) -> Result<(Self, RecoveryReport), DbError> {
        let have_snapshot = storage.read(SNAPSHOT_FILE)?.is_some();
        let wal_missing = storage.read(WAL_FILE)?.is_none();
        if !have_snapshot && wal_missing {
            storage.append(WAL_FILE, &wal_header())?;
            let db = LogicalDatabase::with_options(db_options);
            let nodes = db.theory().store_nodes();
            let me = DurableDatabase {
                db,
                storage: Some(storage),
                wal_options,
                next_lsn: 0,
                snapshot_lsn: 0,
                unsynced: 0,
                nodes_at_snapshot: nodes,
                compaction_tail: None,
                shipping_tail: None,
                txns: HashMap::new(),
                applied_version: 0,
                recent: VecDeque::new(),
                recent_floor: 0,
                stats: WalStats::default(),
            };
            return Ok((me, RecoveryReport::default()));
        }
        let (db, next_lsn, snapshot_lsn, mut report, unfinished) =
            Self::recover(&storage, db_options)?;
        if wal_missing {
            // Snapshot-only storage (e.g. the WAL was lost with the
            // snapshot intact): start a fresh log.
            storage.append(WAL_FILE, &wal_header())?;
        }
        let mut me = DurableDatabase {
            db,
            storage: Some(storage),
            wal_options,
            next_lsn,
            snapshot_lsn,
            unsynced: 0,
            nodes_at_snapshot: 0,
            compaction_tail: None,
            shipping_tail: None,
            txns: HashMap::new(),
            applied_version: 0,
            recent: VecDeque::new(),
            recent_floor: 0,
            stats: WalStats::default(),
        };
        me.nodes_at_snapshot = me.db.theory().store_nodes();
        // Roll back transactions the crash left in flight: append the
        // compensating abort marker so the *next* recovery skips their
        // intents without rescanning for an unfinished tail.
        for txn in &unfinished {
            me.append_entry(WalRecord::TxnAbort(*txn))?;
        }
        if !unfinished.is_empty() {
            me.sync()?;
            report.rolled_back = unfinished.len();
        }
        if report.truncated.is_some() || report.replay_error.is_some() {
            me.checkpoint()?;
            report.repaired = true;
        }
        Ok((me, report))
    }

    /// Loads the snapshot (if any) and replays the WAL suffix through the
    /// §4 replay path, stopping at the first failing record.
    #[allow(clippy::type_complexity)]
    fn recover(
        storage: &S,
        db_options: DbOptions,
    ) -> Result<(LogicalDatabase, u64, u64, RecoveryReport, Vec<u64>), DbError> {
        let (mut db, snapshot_lsn) = match read_snapshot(storage)? {
            Some(snap) => {
                let theory = persist::restore_theory(&snap.theory)?;
                (LogicalDatabase::from_theory(theory, db_options), snap.lsn)
            }
            None => (LogicalDatabase::with_options(db_options), 0),
        };
        let parsed = match storage.read(WAL_FILE)? {
            Some(bytes) => parse_wal(&bytes)?,
            None => ParsedWal {
                entries: Vec::new(),
                truncated: None,
            },
        };
        // The boundary contract: the suffix must *meet* the checkpoint.
        // `parse_wal` enforces LSN contiguity only within the file, so a
        // log whose first surviving record skips past the snapshot's LSN
        // (a spliced or mis-rotated log) would otherwise replay a
        // wrong-state suffix silently. A first LSN at or below the
        // snapshot's is fine — that is the normal old-WAL-beside-new-
        // snapshot window, and covered records are skipped below.
        if let Some(first) = parsed.entries.first() {
            if first.lsn > snapshot_lsn {
                return Err(DbError::LsnGap {
                    expected: snapshot_lsn,
                    found: first.lsn,
                });
            }
        }
        let mut report = RecoveryReport {
            snapshot_lsn,
            records_seen: parsed.entries.len(),
            truncated: parsed.truncated,
            ..RecoveryReport::default()
        };
        let next_lsn = parsed
            .entries
            .last()
            .map(|e| e.lsn + 1)
            .unwrap_or(0)
            .max(snapshot_lsn);
        let aborted: HashSet<u64> = parsed
            .entries
            .iter()
            .filter_map(|e| match e.record {
                WalRecord::Abort(lsn) => Some(lsn),
                _ => None,
            })
            .collect();
        // Transaction outcomes: a TxnOp is effective only if its commit
        // marker made it into the intact log. Anything begun but neither
        // committed nor aborted is an in-flight transaction the crash
        // interrupted — its intents are skipped here and `open` appends
        // the compensating abort marker.
        let mut txn_seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut txn_committed: HashSet<u64> = HashSet::new();
        let mut txn_aborted: HashSet<u64> = HashSet::new();
        for entry in &parsed.entries {
            match &entry.record {
                WalRecord::TxnBegin(t) => {
                    txn_seen.insert(*t);
                }
                WalRecord::TxnOp(txn, _) => {
                    txn_seen.insert(*txn);
                }
                WalRecord::TxnCommit(t) => {
                    txn_committed.insert(*t);
                }
                WalRecord::TxnAbort(t) => {
                    txn_aborted.insert(*t);
                }
                _ => {}
            }
        }
        let unfinished: Vec<u64> = txn_seen
            .iter()
            .copied()
            .filter(|t| !txn_committed.contains(t) && !txn_aborted.contains(t))
            .collect();
        for entry in &parsed.entries {
            if entry.lsn < snapshot_lsn
                || aborted.contains(&entry.lsn)
                || matches!(entry.record, WalRecord::Abort(_))
            {
                report.skipped += 1;
                continue;
            }
            // Committed transactions replay their intents at journal
            // position: the lock table made everything interleaved with
            // them footprint-disjoint, so this equals replaying them at
            // the commit point (Theorems 3/4). Uncommitted intents and
            // the markers themselves replay nothing.
            let effective: Option<&WalRecord> = match &entry.record {
                WalRecord::TxnOp(txn, op) if txn_committed.contains(txn) => Some(op),
                WalRecord::TxnOp(..)
                | WalRecord::TxnBegin(_)
                | WalRecord::TxnCommit(_)
                | WalRecord::TxnAbort(_) => None,
                other => Some(other),
            };
            let Some(record) = effective else {
                report.skipped += 1;
                continue;
            };
            match Self::replay_entry(&mut db, record) {
                Ok(()) => report.replayed += 1,
                Err(e) => {
                    report.replay_error = Some(e.to_string());
                    break;
                }
            }
        }
        // Replay ran unsimplified (the §4 configuration); fold the store
        // back down to what the live database would carry. `simplify` is
        // infallible (it returns a report, not a Result), so the only
        // thing to lose here is the report itself — surface it.
        report.simplify = db.simplify(db_options.simplify);
        Ok((db, next_lsn, snapshot_lsn, report, unfinished))
    }

    fn replay_entry(db: &mut LogicalDatabase, record: &WalRecord) -> Result<(), DbError> {
        replay_record(db, record)
    }
}

/// Applies one journaled operation to `db` through the §4 replay path —
/// the exact function crash recovery uses, exported so a replication
/// follower replays shipped WAL records with the same semantics. `Apply`
/// records go through [`replay_updates`] (unsimplified GUA); callers that
/// replay long suffixes should fold the store down afterwards with
/// [`LogicalDatabase::simplify`], as recovery does.
pub fn replay_record(db: &mut LogicalDatabase, record: &WalRecord) -> Result<(), DbError> {
    match record {
        WalRecord::DeclareAttribute(name) => {
            db.declare_attribute(name)?;
        }
        WalRecord::DeclareRelation(name, arity) => {
            db.declare_relation(name, *arity)?;
        }
        WalRecord::DeclareTypedRelation(name, attrs) => {
            let ids: Result<Vec<PredId>, DbError> = attrs
                .iter()
                .map(|a| {
                    db.theory()
                        .vocab
                        .find_predicate(a)
                        .ok_or_else(|| DbError::Corrupt {
                            message: format!(
                                "journaled type axiom references unknown attribute `{a}`"
                            ),
                        })
                })
                .collect();
            db.declare_typed_relation(name, &ids?)?;
        }
        WalRecord::AddDependency(dd) => {
            let dep = persist::restore_dependency(dd, db.theory_mut())?;
            db.add_dependency(dep);
        }
        WalRecord::LoadFact(pred, args) => {
            let refs: Vec<&str> = args.iter().map(String::as_str).collect();
            db.load_fact(pred, &refs)?;
        }
        WalRecord::LoadWff(src) => {
            db.load_wff(src)?;
        }
        WalRecord::Apply(ud) => {
            let u = restore_update(ud, db.theory_mut())?;
            let theory = replay_updates(db.theory(), std::slice::from_ref(&u))?;
            let options = db.options();
            let mut log = std::mem::take(&mut db.log);
            log.push(u);
            *db = LogicalDatabase::from_theory(theory, options);
            db.log = log;
        }
        WalRecord::Abort(_) => {}
        // Transaction markers carry no state transition of their own. A
        // `TxnOp` applies its inner operation — callers (recovery, the
        // replica's tailer) gate on the commit marker *before* handing
        // the op here, buffering or dropping uncommitted intents.
        WalRecord::TxnBegin(_) | WalRecord::TxnCommit(_) | WalRecord::TxnAbort(_) => {}
        WalRecord::TxnOp(_, op) => replay_record(db, op)?,
    }
    Ok(())
}

impl<S: Storage> DurableDatabase<S> {
    // ----- journaling core --------------------------------------------------

    /// The storage, mutable. Panics only if called after `close`/
    /// `into_storage` moved it out — impossible from safe client code,
    /// since both consume `self`.
    fn storage_mut(&mut self) -> &mut S {
        self.storage.as_mut().expect("storage moved out")
    }

    fn append_entry(&mut self, record: WalRecord) -> Result<u64, DbError> {
        let lsn = self.next_lsn;
        let entry = WalEntry { lsn, record };
        let bytes = encode_entry(&entry)?;
        self.storage_mut().append(WAL_FILE, &bytes)?;
        if let Some(tail) = self.compaction_tail.as_mut() {
            tail.push(entry.clone());
        }
        if let Some(tail) = self.shipping_tail.as_mut() {
            tail.push(entry);
        }
        self.next_lsn += 1;
        self.unsynced += 1;
        self.stats.records += 1;
        self.stats.bytes_appended += bytes.len() as u64;
        match self.wal_options.policy {
            SyncPolicy::EveryRecord => self.sync()?,
            SyncPolicy::GroupCommit(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::Manual => {}
        }
        Ok(lsn)
    }

    /// Journal `record`, then run `apply` on the inner database. If GUA
    /// refuses the operation, a compensating [`WalRecord::Abort`] is
    /// appended (best-effort) so recovery will not replay a state the
    /// live database never reached; if that append is itself lost in a
    /// crash, the refused record is the WAL tail and recovery's replay
    /// stops at the same deterministic error.
    fn journaled<T>(
        &mut self,
        record: WalRecord,
        apply: impl FnOnce(&mut LogicalDatabase) -> Result<T, DbError>,
    ) -> Result<T, DbError> {
        let copy = record.clone();
        let lsn = self.append_entry(record)?;
        let before = self.db.clone();
        match apply(&mut self.db) {
            Ok(v) => {
                self.applied_version += 1;
                self.push_recent(self.applied_version, copy);
                Ok(v)
            }
            Err(e) => {
                // GUA's apply is not atomic in memory (a store-capacity
                // error can strike mid-step), so restore the pre-intent
                // state: live and recovered views must agree.
                self.db = before;
                if self.append_entry(WalRecord::Abort(lsn)).is_ok() {
                    let _ = self.sync();
                }
                Err(e)
            }
        }
    }

    fn maybe_compact(&mut self) -> Result<(), DbError> {
        // A checkpoint taken mid-transaction would strand a later commit's
        // early intents below the snapshot boundary; wait for quiescence.
        if !self.txns.is_empty() {
            return Ok(());
        }
        let Some(factor) = self.wal_options.compact_growth_factor else {
            return Ok(());
        };
        let nodes = self.db.theory().store_nodes();
        if nodes >= self.wal_options.compact_min_nodes
            && nodes as f64 >= factor * self.nodes_at_snapshot.max(1) as f64
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    // ----- public API -------------------------------------------------------

    /// Declares a unary attribute predicate (journaled).
    pub fn declare_attribute(&mut self, name: &str) -> Result<PredId, DbError> {
        self.journaled(WalRecord::DeclareAttribute(name.to_string()), |db| {
            db.declare_attribute(name)
        })
    }

    /// Declares an untyped relation (journaled).
    pub fn declare_relation(&mut self, name: &str, arity: usize) -> Result<PredId, DbError> {
        self.journaled(WalRecord::DeclareRelation(name.to_string(), arity), |db| {
            db.declare_relation(name, arity)
        })
    }

    /// Declares a relation with a type axiom (journaled).
    pub fn declare_typed_relation(
        &mut self,
        name: &str,
        attrs: &[PredId],
    ) -> Result<PredId, DbError> {
        let attr_names: Vec<String> = attrs
            .iter()
            .map(|a| self.db.theory().vocab.predicate(*a).name.clone())
            .collect();
        self.journaled(
            WalRecord::DeclareTypedRelation(name.to_string(), attr_names),
            |db| db.declare_typed_relation(name, attrs),
        )
    }

    /// Adds a dependency axiom (journaled).
    pub fn add_dependency(&mut self, dep: Dependency) -> Result<(), DbError> {
        let dump = persist::dump_dependency(&dep, self.db.theory());
        self.journaled(WalRecord::AddDependency(dump), move |db| {
            db.add_dependency(dep);
            Ok(())
        })
    }

    /// Loads a ground fact as certainly true (journaled).
    pub fn load_fact(&mut self, pred: &str, args: &[&str]) -> Result<AtomId, DbError> {
        let record = WalRecord::LoadFact(
            pred.to_string(),
            args.iter().map(|s| s.to_string()).collect(),
        );
        self.journaled(record, |db| db.load_fact(pred, args))
    }

    /// Loads an arbitrary ground wff into the initial state (journaled).
    pub fn load_wff(&mut self, src: &str) -> Result<(), DbError> {
        self.journaled(WalRecord::LoadWff(src.to_string()), |db| db.load_wff(src))
    }

    /// Parses and executes one LDML statement, journaling its effective
    /// (widened) form before GUA applies it.
    pub fn execute(&mut self, src: &str) -> Result<UpdateReport, DbError> {
        let parsed = self.db.parse_update(src)?;
        self.update(&parsed)
    }

    /// Executes an update AST, journaling its effective (widened) form
    /// before GUA applies it.
    pub fn update(&mut self, update: &Update) -> Result<UpdateReport, DbError> {
        let effective = self.db.effective_update(update);
        {
            let t = self.db.theory();
            effective.validate(&t.vocab, &t.atoms)?;
        }
        let dump = dump_update(&effective, self.db.theory());
        let report = self.journaled(WalRecord::Apply(dump), move |db| {
            db.apply_effective(&effective)
        })?;
        self.maybe_compact()?;
        Ok(report)
    }

    // ----- multi-statement transactions -------------------------------------
    //
    // A transaction is a private workspace (clone of the live database)
    // plus a redo list of journaled `TxnOp` intents. Statements parse and
    // apply against the workspace — read-your-writes, with no effect on
    // the live state — and commit re-applies the redo list to the live
    // database under the caller's writer lock, then appends the commit
    // marker whose durability *is* the transaction's durability.
    //
    // Correctness of deferred re-application rests on the server's lock
    // discipline: every statement's footprint atoms are locked (strict
    // 2PL) before its intent is journaled, and every non-transactional
    // write checks the lock table under the same writer lock before it
    // applies. Everything that commits between a statement's workspace
    // application and its transaction's commit is therefore
    // footprint-disjoint from it, hence commutative with it (Theorems
    // 3/4) — so replaying the redo list at commit lands the same state
    // the workspace computed.

    /// Opens a transaction, returning its id (the begin record's LSN).
    pub fn txn_begin(&mut self) -> Result<u64, DbError> {
        let id = self.next_lsn;
        self.append_entry(WalRecord::TxnBegin(id))?;
        self.txns.insert(
            id,
            OpenTxn {
                workspace: self.db.clone(),
                basis_version: self.applied_version,
                ops: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Number of open transactions.
    pub fn txn_active(&self) -> usize {
        self.txns.len()
    }

    /// Whether `txn` is open.
    pub fn txn_open(&self, txn: u64) -> bool {
        self.txns.contains_key(&txn)
    }

    /// Ids of every open transaction (the drain path aborts them all).
    pub fn txn_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.txns.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The transaction's read-your-writes view, if it is open. The
    /// workspace may lag the live database by concurrently committed
    /// footprint-disjoint writes until the next statement rebuilds it.
    pub fn txn_view(&self, txn: u64) -> Option<&LogicalDatabase> {
        self.txns.get(&txn).map(|s| &s.workspace)
    }

    /// Re-applies one journaled op to `db` the way the live writer would
    /// (inline simplify), rather than through the unsimplified §4 replay.
    fn reapply(db: &mut LogicalDatabase, op: &WalRecord) -> Result<(), DbError> {
        if let WalRecord::Apply(ud) = op {
            let u = restore_update(ud, db.theory_mut())?;
            db.apply_effective(&u)?;
            Ok(())
        } else {
            replay_record(db, op)
        }
    }

    /// Retains one live-mutation record for delta refreshes, evicting
    /// whole version groups (a transaction commit lands several records
    /// under one version; covering a version partially is useless) and
    /// advancing the floor past what was evicted.
    fn push_recent(&mut self, version: u64, record: WalRecord) {
        self.recent.push_back((version, record));
        while self.recent.len() > RECENT_CAP {
            let Some(&(v, _)) = self.recent.front() else {
                break;
            };
            while self.recent.front().is_some_and(|(f, _)| *f == v) {
                self.recent.pop_front();
            }
            self.recent_floor = v;
        }
    }

    /// Brings the workspace current when the live database has advanced
    /// under it. Fast path: replay just the foreign delta from
    /// [`DurableDatabase::recent`] onto the workspace in place — sound
    /// because everything committed while this transaction is open is
    /// footprint-disjoint from every atom it holds (the server's lock
    /// discipline), hence commutative with its ops (Theorems 3/4).
    /// Fallback when the delta was evicted (or a delta op refuses):
    /// fresh clone plus redo replay. Either way the refreshed view
    /// agrees with the old one on every atom the transaction touches.
    fn refresh_workspace(&mut self, state: &mut OpenTxn) -> Result<(), DbError> {
        if state.basis_version == self.applied_version {
            return Ok(());
        }
        let delta_len = if state.basis_version >= self.recent_floor {
            self.recent
                .iter()
                .filter(|(v, _)| *v > state.basis_version)
                .count()
        } else {
            usize::MAX
        };
        // Both paths cost one replayed op per record; take the shorter
        // list (the rebuild's clone is worth about one op).
        if delta_len <= state.ops.len() + 1 {
            let mut ok = true;
            for (v, r) in &self.recent {
                if *v <= state.basis_version {
                    continue;
                }
                if Self::reapply(&mut state.workspace, r).is_err() {
                    ok = false;
                    break;
                }
            }
            if ok {
                state.basis_version = self.applied_version;
                return Ok(());
            }
            // A refused delta op leaves the workspace partially caught
            // up; the full rebuild below replaces it wholesale.
        }
        let mut ws = self.db.clone();
        for op in &state.ops {
            Self::reapply(&mut ws, op)?;
        }
        state.workspace = ws;
        state.basis_version = self.applied_version;
        Ok(())
    }

    /// Journals one intent for `txn` and applies it to the workspace,
    /// with the same intent/compensation pairing as the plain
    /// [`DurableDatabase::journaled`] path: a refused op appends
    /// [`WalRecord::Abort`] for its own LSN, so recovery and followers
    /// drop it even when the transaction later commits.
    ///
    /// Unlike the plain path, no defensive pre-apply clone is paid per
    /// statement: a refused apply (which can strike mid-step) is undone
    /// by rebuilding the workspace from the live database plus the redo
    /// list — the rare failure pays the clone instead of every success.
    /// If that rebuild itself fails, the workspace is unrecoverable and
    /// the error is [`TxnJournalErr::Broken`]: the caller must not keep
    /// the transaction open (see [`DurableDatabase::txn_settle`]).
    fn txn_journal<T>(
        &mut self,
        state: &mut OpenTxn,
        txn: u64,
        inner: WalRecord,
        apply: impl FnOnce(&mut LogicalDatabase) -> Result<T, DbError>,
    ) -> Result<T, TxnJournalErr> {
        let lsn = self
            .append_entry(WalRecord::TxnOp(txn, Box::new(inner.clone())))
            .map_err(TxnJournalErr::Refused)?;
        match apply(&mut state.workspace) {
            Ok(v) => {
                state.ops.push(inner);
                Ok(v)
            }
            Err(e) => {
                if self.append_entry(WalRecord::Abort(lsn)).is_ok() {
                    let _ = self.sync();
                }
                let mut ws = self.db.clone();
                for op in &state.ops {
                    if let Err(re) = Self::reapply(&mut ws, op) {
                        return Err(TxnJournalErr::Broken(re));
                    }
                }
                state.workspace = ws;
                state.basis_version = self.applied_version;
                Err(TxnJournalErr::Refused(e))
            }
        }
    }

    /// Puts a transaction back in the open map after a statement —
    /// unless its workspace could not be restored, in which case the
    /// transaction self-aborts (compensating marker journaled) exactly
    /// like a failed re-application at commit.
    fn txn_settle<T>(
        &mut self,
        txn: u64,
        state: OpenTxn,
        result: Result<T, TxnJournalErr>,
    ) -> Result<T, DbError> {
        match result {
            Ok(v) => {
                self.txns.insert(txn, state);
                Ok(v)
            }
            Err(TxnJournalErr::Refused(e)) => {
                self.txns.insert(txn, state);
                Err(e)
            }
            Err(TxnJournalErr::Broken(e)) => {
                if self.append_entry(WalRecord::TxnAbort(txn)).is_ok() {
                    let _ = self.sync();
                }
                Err(e)
            }
        }
    }

    /// Takes the open transaction out of the map (so `self` can journal
    /// while the state is borrowed) with a typed error when it is not
    /// open, refreshing its workspace on the way out.
    fn txn_take(&mut self, txn: u64) -> Result<OpenTxn, DbError> {
        self.txn_take_with(txn, true)
    }

    /// [`Self::txn_take`] with the workspace refresh made optional.
    /// Skipping is sound only when the caller can prove the statement
    /// about to run cannot observe anything committed since the last
    /// refresh — see [`Self::txn_execute_covered`].
    fn txn_take_with(&mut self, txn: u64, refresh: bool) -> Result<OpenTxn, DbError> {
        let mut state = self.txns.remove(&txn).ok_or(DbError::TxnUnknown { txn })?;
        if refresh {
            if let Err(e) = self.refresh_workspace(&mut state) {
                self.txns.insert(txn, state);
                return Err(e);
            }
        }
        Ok(state)
    }

    /// Executes one LDML statement inside `txn`: parsed, widened, and
    /// validated against the transaction's workspace, journaled as a
    /// [`WalRecord::TxnOp`] intent, applied to the workspace only.
    pub fn txn_execute(&mut self, txn: u64, src: &str) -> Result<UpdateReport, DbError> {
        self.txn_execute_inner(txn, src, true)
    }

    /// [`Self::txn_execute`] for a statement whose entire lock
    /// footprint is already held by `txn` (see
    /// [`crate::txn::LockTable::holds_all`]). Held atoms cannot have
    /// been changed by another writer since they were first locked —
    /// and the statement that first locked each atom ran through the
    /// refreshing path — so the workspace is current on every atom this
    /// statement reads or writes and the clone-and-redo rebuild can be
    /// skipped even when other transactions committed in between.
    pub fn txn_execute_covered(&mut self, txn: u64, src: &str) -> Result<UpdateReport, DbError> {
        self.txn_execute_inner(txn, src, false)
    }

    fn txn_execute_inner(
        &mut self,
        txn: u64,
        src: &str,
        refresh: bool,
    ) -> Result<UpdateReport, DbError> {
        let mut state = self.txn_take_with(txn, refresh)?;
        let result = (|| {
            let parsed = state
                .workspace
                .parse_update(src)
                .map_err(TxnJournalErr::Refused)?;
            let effective = state.workspace.effective_update(&parsed);
            {
                let t = state.workspace.theory();
                effective
                    .validate(&t.vocab, &t.atoms)
                    .map_err(|e| TxnJournalErr::Refused(e.into()))?;
            }
            let dump = dump_update(&effective, state.workspace.theory());
            self.txn_journal(&mut state, txn, WalRecord::Apply(dump), move |db| {
                db.apply_effective(&effective)
            })
        })();
        self.txn_settle(txn, state, result)
    }

    /// Declares an untyped relation inside `txn` (journaled intent).
    pub fn txn_declare_relation(
        &mut self,
        txn: u64,
        name: &str,
        arity: usize,
    ) -> Result<(), DbError> {
        let mut state = self.txn_take(txn)?;
        let result = self.txn_journal(
            &mut state,
            txn,
            WalRecord::DeclareRelation(name.to_string(), arity),
            |db| db.declare_relation(name, arity).map(|_| ()),
        );
        self.txn_settle(txn, state, result)
    }

    /// Declares a unary attribute predicate inside `txn` (journaled
    /// intent).
    pub fn txn_declare_attribute(&mut self, txn: u64, name: &str) -> Result<(), DbError> {
        let mut state = self.txn_take(txn)?;
        let result = self.txn_journal(
            &mut state,
            txn,
            WalRecord::DeclareAttribute(name.to_string()),
            |db| db.declare_attribute(name).map(|_| ()),
        );
        self.txn_settle(txn, state, result)
    }

    /// Loads a ground fact inside `txn` (journaled intent).
    pub fn txn_load_fact(&mut self, txn: u64, pred: &str, args: &[&str]) -> Result<(), DbError> {
        let mut state = self.txn_take(txn)?;
        let record = WalRecord::LoadFact(
            pred.to_string(),
            args.iter().map(|s| s.to_string()).collect(),
        );
        let result = self.txn_journal(&mut state, txn, record, |db| {
            db.load_fact(pred, args).map(|_| ())
        });
        self.txn_settle(txn, state, result)
    }

    /// Loads a ground wff inside `txn` (journaled intent).
    pub fn txn_load_wff(&mut self, txn: u64, src: &str) -> Result<(), DbError> {
        let mut state = self.txn_take(txn)?;
        let result = self.txn_journal(&mut state, txn, WalRecord::LoadWff(src.to_string()), |db| {
            db.load_wff(src)
        });
        self.txn_settle(txn, state, result)
    }

    /// Commits `txn`: brings the workspace current (a no-op unless a
    /// foreign commit landed since its last rebuild — then it is one
    /// clone-and-redo refresh), installs it as the live database, appends
    /// the commit marker, and makes it durable (the transaction's single
    /// fsync point). The install is sound because every live mutation
    /// bumps `applied_version`, so a current-basis workspace *is* the
    /// live database plus this transaction's redo list — the same state
    /// the old re-apply-at-commit loop computed, without cloning the
    /// live theory on the happy path. Returns the commit LSN and the
    /// number of ops made effective. A redo re-application failure
    /// during the refresh (possible only if the lock discipline was
    /// bypassed, or on a store-capacity class error) leaves the live
    /// state untouched and aborts the transaction instead.
    pub fn txn_commit(&mut self, txn: u64) -> Result<(u64, usize), DbError> {
        let mut state = self.txns.remove(&txn).ok_or(DbError::TxnUnknown { txn })?;
        if let Err(e) = self.refresh_workspace(&mut state) {
            if self.append_entry(WalRecord::TxnAbort(txn)).is_ok() {
                let _ = self.sync();
            }
            return Err(e);
        }
        let ops = state.ops.len();
        // A workspace cloned this version shares the retired theory's
        // generation counters; force the installed generation strictly
        // past it so snapshot readers keyed on the old generation can
        // never mistake one encoding for the other (same discipline as
        // the compaction swap).
        let generation_before = self.db.theory().generation();
        state
            .workspace
            .theory_mut()
            .advance_generation_past(generation_before);
        let before = std::mem::replace(&mut self.db, state.workspace);
        let lsn = match self.append_entry(WalRecord::TxnCommit(txn)) {
            Ok(lsn) => lsn,
            Err(e) => {
                // Unacknowledged and unmarked: recovery rolls it back, so
                // the live view must match.
                self.db = before;
                return Err(e);
            }
        };
        self.sync()?;
        self.applied_version += 1;
        // The redo list is the delta other open workspaces need to catch
        // up on this commit — one version group.
        for op in state.ops {
            self.push_recent(self.applied_version, op);
        }
        self.maybe_compact()?;
        Ok((lsn, ops))
    }

    /// Rolls `txn` back: the workspace is dropped, the abort marker is
    /// journaled, and the live database is untouched (nothing to undo —
    /// intents never applied to it).
    pub fn txn_rollback(&mut self, txn: u64) -> Result<(), DbError> {
        let state = self.txns.remove(&txn).ok_or(DbError::TxnUnknown { txn })?;
        drop(state);
        self.append_entry(WalRecord::TxnAbort(txn))?;
        self.sync()
    }

    /// Durably flushes all appended records (a group-commit sync point).
    pub fn sync(&mut self) -> Result<(), DbError> {
        if self.unsynced > 0 {
            self.storage_mut().sync(WAL_FILE)?;
            self.stats.syncs += 1;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Takes a snapshot of the current theory and resets the log: the
    /// compaction step. Crash-safe in every window — the snapshot is
    /// replaced atomically and carries the LSN through which it is
    /// current, so an old WAL alongside a new snapshot merely replays
    /// zero records.
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        // Refused while transactions are open: the snapshot would fold in
        // only the *live* state, and resetting the log would drop the
        // journaled intents a still-open transaction needs to commit.
        if !self.txns.is_empty() {
            return Err(DbError::TxnOpen {
                active: self.txns.len(),
            });
        }
        self.sync()?;
        let snap = WalSnapshot {
            version: SNAPSHOT_VERSION,
            lsn: self.next_lsn,
            theory: persist::dump_theory(self.db.theory()),
        };
        let json = serde_json::to_string(&snap).map_err(|e| DbError::Query {
            message: format!("snapshot serialization failed: {e}"),
        })?;
        self.storage_mut().replace(SNAPSHOT_FILE, json.as_bytes())?;
        self.storage_mut().replace(WAL_FILE, &wal_header())?;
        self.snapshot_lsn = self.next_lsn;
        self.unsynced = 0;
        self.nodes_at_snapshot = self.db.theory().store_nodes();
        self.stats.checkpoints += 1;
        Ok(())
    }

    // ----- wal shipping (replication) ---------------------------------------

    /// Arms WAL shipping: from now on every appended record is also
    /// retained in memory until the next
    /// [`DurableDatabase::drain_shipping`]. Idempotent; an already-armed
    /// tail is left in place (retained but undrained records are not
    /// dropped).
    pub fn enable_shipping(&mut self) {
        if self.shipping_tail.is_none() {
            self.shipping_tail = Some(Vec::new());
        }
    }

    /// Takes the records retained since the last drain, reduced to the
    /// *effective* log (abort records and the records they annul are
    /// removed — a refused operation completes its journal pair before
    /// the owning write returns, so pairs never straddle a drain). The
    /// caller fans these out to subscribed followers. Empty when shipping
    /// is not armed or nothing was appended.
    pub fn drain_shipping(&mut self) -> Vec<WalEntry> {
        match self.shipping_tail.as_mut() {
            Some(tail) if !tail.is_empty() => effective_entries(std::mem::take(tail)),
            _ => Vec::new(),
        }
    }

    /// Computes what a follower whose next-expected LSN is `from_lsn`
    /// needs in order to catch up: the effective log suffix alone if the
    /// cursor is at or past the on-storage checkpoint, or the checkpoint
    /// snapshot plus the suffix when the log no longer reaches back that
    /// far. Enforces the same boundary contract as recovery — a log whose
    /// first surviving record skips past the checkpoint's LSN is a typed
    /// [`DbError::LsnGap`], never a silently wrong suffix — and refuses a
    /// cursor from the future (a follower of some other primary) the same
    /// way.
    pub fn catchup_from(&self, from_lsn: u64) -> Result<Catchup, DbError> {
        if from_lsn > self.next_lsn {
            return Err(DbError::LsnGap {
                expected: self.next_lsn,
                found: from_lsn,
            });
        }
        let parsed = match self.storage().read(WAL_FILE)? {
            Some(bytes) => parse_wal(&bytes)?,
            None => ParsedWal {
                entries: Vec::new(),
                truncated: None,
            },
        };
        if let Some(reason) = parsed.truncated {
            // A live, recovered primary has no torn tail; finding one
            // mid-flight means the storage under us is damaged.
            return Err(DbError::Corrupt {
                message: format!("wal tail unreadable during catch-up: {reason}"),
            });
        }
        if let Some(first) = parsed.entries.first() {
            if first.lsn > self.snapshot_lsn {
                return Err(DbError::LsnGap {
                    expected: self.snapshot_lsn,
                    found: first.lsn,
                });
            }
        }
        let entries = effective_entries(parsed.entries);
        if from_lsn >= self.snapshot_lsn {
            Ok(Catchup::Suffix(
                entries.into_iter().filter(|e| e.lsn >= from_lsn).collect(),
            ))
        } else {
            let snap = read_snapshot(self.storage())?.ok_or_else(|| DbError::Corrupt {
                message: format!(
                    "catch-up from lsn {from_lsn} needs the checkpoint snapshot \
                     (current through lsn {}), but no snapshot file exists",
                    self.snapshot_lsn
                ),
            })?;
            let suffix = entries.into_iter().filter(|e| e.lsn >= snap.lsn).collect();
            Ok(Catchup::Snapshot(Box::new(snap), suffix))
        }
    }

    // ----- background compaction --------------------------------------------
    //
    // The LSM-style three-phase protocol. Phase 1 (`begin_compaction`,
    // under the writer lock) captures a deep copy of the live theory and
    // starts retaining every subsequently journaled record in memory.
    // Phase 2 (off-lock, owned by the caller) runs full `gua::simplify`
    // on the copy while the writer keeps committing. Phase 3
    // (`install_compacted`, under the writer lock again) replays the
    // retained LSN delta onto the compacted copy and swaps it in — so the
    // swap pause is proportional to the capture→install write volume,
    // never to the theory or log size.

    /// Phase 1: captures a deep copy of the live theory plus the first
    /// LSN not reflected in it, and starts retaining appended records so
    /// [`DurableDatabase::install_compacted`] can replay the delta. The
    /// copy costs the same as one snapshot publication. A previously
    /// outstanding capture is silently superseded.
    pub fn begin_compaction(&mut self) -> (Theory, u64) {
        self.compaction_tail = Some(Vec::new());
        (self.db.theory().clone(), self.next_lsn)
    }

    /// Abandons an outstanding capture, releasing the retained tail.
    /// Harmless when none is outstanding.
    pub fn abort_compaction(&mut self) {
        self.compaction_tail = None;
    }

    /// Whether a [`DurableDatabase::begin_compaction`] capture is
    /// outstanding (and records are being retained for it).
    pub fn compaction_pending(&self) -> bool {
        self.compaction_tail.is_some()
    }

    /// Phase 3: atomically swaps `compacted` (the
    /// [`DurableDatabase::begin_compaction`] copy after the caller's
    /// simplification pass) in for the live theory, first replaying the
    /// records journaled since the capture onto it. On any replay error
    /// the live database is untouched and the round is simply abandoned.
    ///
    /// The installed theory's [`Theory::generation`] is forced strictly
    /// past the retired theory's, so cached entailment sessions and
    /// per-snapshot readers keyed on the old generation can never mistake
    /// the swapped encoding for the one they saw. With `checkpoint` set,
    /// the on-storage snapshot is rewritten from the compacted theory in
    /// the same critical section — checkpoints shrink with the theory.
    pub fn install_compacted(
        &mut self,
        compacted: Theory,
        from_lsn: u64,
        checkpoint: bool,
    ) -> Result<CompactionOutcome, DbError> {
        let tail = self
            .compaction_tail
            .take()
            .ok_or_else(|| DbError::Compaction {
                message: "install_compacted without an outstanding begin_compaction capture".into(),
            })?;
        if tail.first().map(|e| e.lsn > from_lsn).unwrap_or(false) {
            return Err(DbError::Compaction {
                message: format!(
                    "retained tail starts at lsn {} but the capture was taken at lsn {from_lsn}",
                    tail[0].lsn
                ),
            });
        }
        let generation_before = self.db.theory().generation();
        let nodes_before = self.db.theory().store_nodes();
        // Records annulled by a compensating abort never reached the live
        // theory; skip them exactly as recovery does.
        let aborted: HashSet<u64> = tail
            .iter()
            .filter_map(|e| match e.record {
                WalRecord::Abort(lsn) => Some(lsn),
                _ => None,
            })
            .collect();
        // Transactions begun during the capture→install window: only ops
        // whose commit marker is in the tail reached the live theory (the
        // server never captures while transactions are open, so no
        // transaction straddles the capture point).
        let committed: HashSet<u64> = tail
            .iter()
            .filter_map(|e| match e.record {
                WalRecord::TxnCommit(t) => Some(t),
                _ => None,
            })
            .collect();
        let mut scratch = LogicalDatabase::from_theory(compacted, self.db.options());
        let mut replayed = 0usize;
        for entry in &tail {
            if entry.lsn < from_lsn
                || aborted.contains(&entry.lsn)
                || matches!(entry.record, WalRecord::Abort(_))
            {
                continue;
            }
            let record = match &entry.record {
                WalRecord::TxnOp(txn, op) if committed.contains(txn) => op.as_ref(),
                WalRecord::TxnOp(..)
                | WalRecord::TxnBegin(_)
                | WalRecord::TxnCommit(_)
                | WalRecord::TxnAbort(_) => continue,
                other => other,
            };
            // Unlike crash recovery (which replays through the §4
            // unsimplified path and folds once at the end), replay the
            // suffix exactly as the live writer applied it — inline
            // simplify at the configured level — so the installed theory
            // is never bulkier than the one it replaces.
            if let WalRecord::Apply(ud) = record {
                let u = restore_update(ud, scratch.theory_mut())?;
                scratch.apply_effective(&u)?;
            } else {
                Self::replay_entry(&mut scratch, record)?;
            }
            replayed += 1;
        }
        // The live log already contains the suffix ops (they were applied
        // live); carry it over whole for provenance rather than keeping
        // only the replayed tail.
        scratch.log = std::mem::take(&mut self.db.log);
        scratch
            .theory_mut()
            .advance_generation_past(generation_before);
        self.db = scratch;
        self.applied_version += 1;
        // A compaction swap re-encodes the whole theory; no record delta
        // can express it, so stale workspaces must take the full rebuild.
        self.recent.clear();
        self.recent_floor = self.applied_version;
        let nodes_after = self.db.theory().store_nodes();
        let generation_after = self.db.theory().generation();
        debug_assert!(generation_after > generation_before);
        // A transaction may have begun after the capture; checkpointing
        // now would hit the open-transaction refusal, so skip it and let
        // the next quiescent round (or auto-compaction) fold the log.
        let checkpoint = checkpoint && self.txns.is_empty();
        if checkpoint {
            self.checkpoint()?;
        }
        self.stats.compactions += 1;
        Ok(CompactionOutcome {
            from_lsn,
            replayed,
            nodes_before,
            nodes_after,
            generation_before,
            generation_after,
            checkpointed: checkpoint,
        })
    }

    /// The inner database, read-only.
    pub fn db(&self) -> &LogicalDatabase {
        &self.db
    }

    /// The inner database, mutable — **for queries only** (textual query
    /// paths intern atoms and need `&mut`). Mutating state through this
    /// handle bypasses the journal and will not survive recovery.
    pub fn db_mut(&mut self) -> &mut LogicalDatabase {
        &mut self.db
    }

    /// WAL counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The LSN the next record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The LSN the on-storage snapshot is current through.
    pub fn snapshot_lsn(&self) -> u64 {
        self.snapshot_lsn
    }

    /// The storage, read-only.
    pub fn storage(&self) -> &S {
        self.storage.as_ref().expect("storage moved out")
    }

    /// Consumes the database, returning the storage (fault-injection
    /// tests recover from the survivor of a crashed instance). Unlike
    /// [`DurableDatabase::close`] this deliberately does **not** flush —
    /// it models pulling the plug on a live instance.
    pub fn into_storage(mut self) -> S {
        self.storage.take().expect("storage moved out")
    }

    /// Graceful shutdown: durably flushes any group-commit buffered
    /// records, then returns the storage. Under
    /// [`SyncPolicy::GroupCommit`] records appended since the last sync
    /// point are only in the OS cache; a process that exits without this
    /// call leans on the best-effort [`Drop`] flush, which cannot report
    /// failure. Call `close` on every orderly shutdown path.
    pub fn close(mut self) -> Result<S, DbError> {
        self.sync()?;
        Ok(self.storage.take().expect("storage moved out"))
    }
}

impl<S: Storage> Drop for DurableDatabase<S> {
    /// Best-effort flush of buffered records. Errors are swallowed (there
    /// is no one to report them to in `drop`); shutdown paths that need
    /// the sync to be *confirmed* must call [`DurableDatabase::close`].
    fn drop(&mut self) {
        if self.unsynced > 0 {
            if let Some(storage) = self.storage.as_mut() {
                let _ = storage.sync(WAL_FILE);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use winslett_gua::SimplifyLevel;

    fn opts_nocompact() -> WalOptions {
        WalOptions {
            policy: SyncPolicy::EveryRecord,
            compact_growth_factor: None,
            compact_min_nodes: 0,
        }
    }

    fn world_set(db: &LogicalDatabase) -> BTreeSet<Vec<String>> {
        db.world_names().unwrap().into_iter().collect()
    }

    /// Opens a fresh MemStorage database with the paper's Orders/InStock
    /// schema journaled, plus two facts.
    fn seeded(wal_options: WalOptions) -> DurableDatabase<MemStorage> {
        let (mut ddb, report) =
            DurableDatabase::open(MemStorage::new(), DbOptions::default(), wal_options).unwrap();
        assert_eq!(report, RecoveryReport::default());
        ddb.declare_relation("Orders", 3).unwrap();
        ddb.declare_relation("InStock", 2).unwrap();
        ddb.load_fact("Orders", &["700", "32", "9"]).unwrap();
        ddb.load_fact("InStock", &["32", "1"]).unwrap();
        ddb
    }

    fn reopen(storage: MemStorage) -> (DurableDatabase<MemStorage>, RecoveryReport) {
        DurableDatabase::open(storage, DbOptions::default(), opts_nocompact()).unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn entry_roundtrip_through_wire_format() {
        let entry = WalEntry {
            lsn: 7,
            record: WalRecord::Apply(UpdateDump::Modify(
                "Orders(700,32,9)".into(),
                "Orders(700,32,1)".into(),
                "InStock(32,1)".into(),
            )),
        };
        let mut bytes = wal_header().to_vec();
        bytes.extend_from_slice(&encode_entry(&entry).unwrap());
        let parsed = parse_wal(&bytes).unwrap();
        assert!(parsed.truncated.is_none());
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].lsn, 7);
        match &parsed.entries[0].record {
            WalRecord::Apply(UpdateDump::Modify(t, o, p)) => {
                assert_eq!(t, "Orders(700,32,9)");
                assert_eq!(o, "Orders(700,32,1)");
                assert_eq!(p, "InStock(32,1)");
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn reopen_recovers_schema_facts_and_updates() {
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("MODIFY Orders(700,32,9) TO BE Orders(700,32,1) WHERE InStock(32,1)")
            .unwrap();
        ddb.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
            .unwrap();
        let live = world_set(ddb.db());
        assert!(live.len() > 1); // the disjunctive insert branched
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(world_set(recovered.db()), live);
        assert_eq!(report.replayed, 6); // 2 declares + 2 facts + 2 updates
        assert_eq!(report.truncated, None);
        assert_eq!(report.replay_error, None);
        assert!(!report.repaired);
    }

    #[test]
    fn appends_after_reopen_continue_the_log() {
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        let (mut ddb2, _) = reopen(ddb.into_storage());
        ddb2.execute("INSERT InStock(33,5) WHERE T").unwrap();
        let live = world_set(ddb2.db());
        let (recovered, report) = reopen(ddb2.into_storage());
        assert_eq!(world_set(recovered.db()), live);
        assert_eq!(report.records_seen, 6);
        assert_eq!(report.replayed, 6);
    }

    #[test]
    fn checkpoint_folds_log_into_snapshot() {
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        ddb.checkpoint().unwrap();
        ddb.execute("INSERT Orders(800,32,5) WHERE T").unwrap();
        let live = world_set(ddb.db());
        assert_eq!(ddb.stats().checkpoints, 1);
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(world_set(recovered.db()), live);
        assert_eq!(report.snapshot_lsn, 5);
        assert_eq!(report.records_seen, 1); // only the post-checkpoint update
        assert_eq!(report.replayed, 1);
    }

    #[test]
    fn old_wal_alongside_new_snapshot_is_skipped() {
        // Simulates a crash between snapshot replace and WAL reset: the
        // snapshot is current but the log still holds folded records.
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        let wal_before = ddb.storage().get(WAL_FILE).unwrap().clone();
        ddb.checkpoint().unwrap();
        let live = world_set(ddb.db());
        let mut storage = ddb.into_storage();
        storage.put(WAL_FILE, wal_before); // undo the WAL reset only
        let (recovered, report) = reopen(storage);
        assert_eq!(world_set(recovered.db()), live);
        assert_eq!(report.records_seen, 5);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.skipped, 5);
    }

    #[test]
    fn empty_wal_recovers_to_empty_database() {
        let (ddb, _) =
            DurableDatabase::open(MemStorage::new(), DbOptions::default(), opts_nocompact())
                .unwrap();
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(report.records_seen, 0);
        assert_eq!(report.replayed, 0);
        assert!(!report.repaired);
        assert_eq!(world_set(recovered.db()).len(), 1); // the one empty world
    }

    #[test]
    fn snapshot_only_storage_recovers() {
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        ddb.checkpoint().unwrap();
        let live = world_set(ddb.db());
        let mut storage = ddb.into_storage();
        storage.remove(WAL_FILE); // the log is lost; the snapshot survives
        let (recovered, report) = reopen(storage);
        assert_eq!(world_set(recovered.db()), live);
        assert_eq!(report.records_seen, 0);
        assert!(!report.repaired);
        // And the reopened database can keep journaling.
        let mut recovered = recovered;
        recovered.execute("INSERT InStock(40,1) WHERE T").unwrap();
        let live2 = world_set(recovered.db());
        let (again, _) = reopen(recovered.into_storage());
        assert_eq!(world_set(again.db()), live2);
    }

    #[test]
    fn torn_trailing_record_is_truncated_and_repaired() {
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        let before = world_set(ddb.db());
        ddb.execute("INSERT Orders(900,40,1) WHERE T").unwrap();
        let mut storage = ddb.into_storage();
        // Tear the final record: drop its last 3 bytes.
        let mut wal = storage.get(WAL_FILE).unwrap().clone();
        let n = wal.len();
        wal.truncate(n - 3);
        storage.put(WAL_FILE, wal);
        let (recovered, report) = reopen(storage);
        assert_eq!(world_set(recovered.db()), before); // last update dropped
        assert!(report.truncated.is_some(), "{report:?}");
        assert!(report.repaired);
        // The repair checkpoint made storage clean: reopening is quiet.
        let (again, report2) = reopen(recovered.into_storage());
        assert_eq!(report2.truncated, None);
        assert!(!report2.repaired);
        assert_eq!(world_set(again.db()), before);
    }

    #[test]
    fn mid_file_checksum_damage_truncates_the_suffix() {
        let mut ddb = seeded(opts_nocompact());
        let after_schema = world_set(ddb.db());
        let wal_schema_only = ddb.storage().get(WAL_FILE).unwrap().clone();
        ddb.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        let mut storage = ddb.into_storage();
        let mut wal = storage.get(WAL_FILE).unwrap().clone();
        // Flip one payload byte in the first post-schema record.
        wal[wal_schema_only.len() + 10] ^= 0x01;
        storage.put(WAL_FILE, wal);
        let (recovered, report) = reopen(storage);
        assert!(report
            .truncated
            .as_deref()
            .unwrap()
            .contains("checksum mismatch"));
        assert_eq!(world_set(recovered.db()), after_schema);
    }

    #[test]
    fn replay_error_mid_suffix_keeps_the_prefix() {
        // Hand-build a WAL whose third update is refused by GUA (it
        // mentions a predicate constant, which §3.1 excludes from L′):
        // recovery must keep the two-record prefix and report the error.
        let mut storage = MemStorage::new();
        storage.append(WAL_FILE, &wal_header()).unwrap();
        let records = [
            WalRecord::DeclareRelation("R".into(), 1),
            WalRecord::Apply(UpdateDump::Insert("R(a)".into(), "T".into())),
            WalRecord::Apply(UpdateDump::Insert("__pc_bad".into(), "T".into())),
            WalRecord::Apply(UpdateDump::Insert("R(b)".into(), "T".into())),
        ];
        for (lsn, record) in records.into_iter().enumerate() {
            let entry = WalEntry {
                lsn: lsn as u64,
                record,
            };
            storage
                .append(WAL_FILE, &encode_entry(&entry).unwrap())
                .unwrap();
        }
        let (recovered, report) = reopen(storage);
        assert!(report.replay_error.is_some(), "{report:?}");
        assert_eq!(report.replayed, 2);
        assert!(report.repaired);
        let mut db = recovered;
        assert!(db.db_mut().is_certain("R(a)").unwrap());
        // The constant `b` never arrived: the suffix was not replayed.
        assert!(db.db_mut().is_possible("R(b)").is_err());
    }

    #[test]
    fn refused_update_is_annulled_by_an_abort_record() {
        let mut ddb = seeded(opts_nocompact());
        // Choke the formula store so GUA fails *after* the intent was
        // journaled — the compensation path.
        let len = ddb.db().theory().store.len() as u32;
        ddb.db_mut().theory_mut().store.set_capacity(u32::MAX, len);
        let err = ddb.execute("INSERT Orders(800,32,5) WHERE T");
        assert!(err.is_err());
        let live = world_set(ddb.db());
        // Lift the cap and keep going; the aborted record must not be
        // replayed on recovery.
        ddb.db_mut()
            .theory_mut()
            .store
            .set_capacity(u32::MAX, u32::MAX);
        ddb.execute("DELETE Orders(700,32,9) WHERE T").unwrap();
        let live2 = world_set(ddb.db());
        assert_ne!(live, live2);
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(world_set(recovered.db()), live2);
        assert_eq!(report.replay_error, None);
        assert!(report.skipped >= 2); // the refused record and its abort
    }

    #[test]
    fn auto_compaction_triggers_on_store_growth() {
        let wal_options = WalOptions {
            policy: SyncPolicy::GroupCommit(4),
            compact_growth_factor: Some(1.1),
            compact_min_nodes: 1,
        };
        let mut ddb = seeded(wal_options);
        for i in 0..6 {
            ddb.execute(&format!("INSERT InStock({}, {}) WHERE T", 50 + i, i))
                .unwrap();
        }
        assert!(ddb.stats().checkpoints >= 1, "{:?}", ddb.stats());
        let live = world_set(ddb.db());
        let (recovered, _) = reopen(ddb.into_storage());
        assert_eq!(world_set(recovered.db()), live);
    }

    #[test]
    fn group_commit_syncs_less_often() {
        let every = seeded(opts_nocompact());
        let grouped = seeded(WalOptions {
            policy: SyncPolicy::GroupCommit(8),
            compact_growth_factor: None,
            compact_min_nodes: 0,
        });
        assert_eq!(every.stats().records, grouped.stats().records);
        assert!(every.stats().syncs > grouped.stats().syncs);
        let mut grouped = grouped;
        grouped.sync().unwrap(); // the explicit sync point flushes
        assert_eq!(grouped.stats().syncs, 1);
    }

    #[test]
    fn bad_magic_is_corrupt_not_truncated() {
        let mut storage = MemStorage::new();
        storage.put(WAL_FILE, b"NOPE0000".to_vec());
        let err =
            DurableDatabase::open(storage, DbOptions::default(), opts_nocompact()).unwrap_err();
        assert!(matches!(err, DbError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn future_wal_version_rejected() {
        let mut storage = MemStorage::new();
        let mut header = wal_header().to_vec();
        header[4..].copy_from_slice(&99u32.to_le_bytes());
        storage.put(WAL_FILE, header);
        let err =
            DurableDatabase::open(storage, DbOptions::default(), opts_nocompact()).unwrap_err();
        assert_eq!(
            err,
            DbError::UnsupportedVersion {
                what: "wal",
                found: 99,
                supported: WAL_VERSION,
            }
        );
    }

    #[test]
    fn future_snapshot_version_rejected() {
        let mut ddb = seeded(opts_nocompact());
        ddb.checkpoint().unwrap();
        let mut storage = ddb.into_storage();
        let snap = String::from_utf8(storage.get(SNAPSHOT_FILE).unwrap().clone()).unwrap();
        let snap = snap.replacen("\"version\":1", "\"version\":42", 1);
        storage.put(SNAPSHOT_FILE, snap.into_bytes());
        let err =
            DurableDatabase::open(storage, DbOptions::default(), opts_nocompact()).unwrap_err();
        assert_eq!(
            err,
            DbError::UnsupportedVersion {
                what: "wal snapshot",
                found: 42,
                supported: SNAPSHOT_VERSION,
            }
        );
    }

    #[test]
    fn widening_is_journaled_not_reapplied() {
        // The journaled form is the §3.5-widened update; recovery must
        // reach the same worlds without widening twice.
        let (mut ddb, _) =
            DurableDatabase::open(MemStorage::new(), DbOptions::default(), opts_nocompact())
                .unwrap();
        let part = ddb.declare_attribute("PartNo").unwrap();
        let quan = ddb.declare_attribute("Quan").unwrap();
        ddb.declare_typed_relation("InStock", &[part, quan])
            .unwrap();
        ddb.execute("INSERT InStock(32,5) WHERE T").unwrap();
        assert!(ddb.db().is_consistent());
        let live = world_set(ddb.db());
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(report.replay_error, None);
        assert_eq!(world_set(recovered.db()), live);
        let mut recovered = recovered;
        assert!(recovered.db_mut().is_certain("PartNo(32)").unwrap());
    }

    #[test]
    fn dependencies_and_wffs_are_journaled() {
        let (mut ddb, _) =
            DurableDatabase::open(MemStorage::new(), DbOptions::default(), opts_nocompact())
                .unwrap();
        let p = ddb.declare_relation("Price", 2).unwrap();
        ddb.add_dependency(Dependency::functional("price-fd", p, 2, &[0]).unwrap())
            .unwrap();
        ddb.load_wff("Price(widget,10) | Price(widget,12)").unwrap();
        let live = world_set(ddb.db());
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(report.replay_error, None);
        assert_eq!(world_set(recovered.db()), live);
        assert_eq!(recovered.db().theory().deps.len(), 1);
        // The restored FD still bites: a second price for the same part
        // violates it in every world (rule 3 weeds them all out).
        let mut recovered = recovered;
        recovered
            .execute("INSERT Price(widget,11) WHERE T")
            .unwrap();
        assert!(!recovered.db().is_consistent());
    }

    #[test]
    fn dir_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("winslett-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let storage = DirStorage::new(&dir).unwrap();
        let (mut ddb, _) =
            DurableDatabase::open(storage, DbOptions::default(), opts_nocompact()).unwrap();
        ddb.declare_relation("R", 1).unwrap();
        ddb.execute("INSERT R(a) | R(b) WHERE T").unwrap();
        ddb.checkpoint().unwrap();
        ddb.execute("ASSERT R(a)").unwrap();
        let live = world_set(ddb.db());
        drop(ddb);
        let storage = DirStorage::new(&dir).unwrap();
        let (recovered, report) =
            DurableDatabase::open(storage, DbOptions::default(), opts_nocompact()).unwrap();
        assert_eq!(report.replay_error, None);
        assert_eq!(world_set(recovered.db()), live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_simplifies_to_live_size_class() {
        let mut ddb = seeded(WalOptions {
            policy: SyncPolicy::Manual,
            compact_growth_factor: None,
            compact_min_nodes: 0,
        });
        for i in 0..4 {
            ddb.execute(&format!("DELETE Orders(700,32,9) WHERE InStock(32,{i})"))
                .unwrap();
        }
        ddb.sync().unwrap();
        let live_nodes = ddb.db().theory().store_nodes();
        let (recovered, _) = DurableDatabase::open(
            ddb.into_storage(),
            DbOptions {
                simplify: SimplifyLevel::Fast,
                ..DbOptions::default()
            },
            opts_nocompact(),
        )
        .unwrap();
        // Replay runs unsimplified; the post-recovery pass folds the
        // store back to the same order of magnitude as the live run.
        assert!(
            recovered.db().theory().store_nodes() <= live_nodes.max(1) * 4,
            "recovered {} vs live {}",
            recovered.db().theory().store_nodes(),
            live_nodes
        );
    }

    fn group_commit_opts() -> WalOptions {
        WalOptions {
            policy: SyncPolicy::GroupCommit(1024),
            compact_growth_factor: None,
            compact_min_nodes: 0,
        }
    }

    fn fp_seeded(fp: &FailpointStorage) -> DurableDatabase<FailpointStorage> {
        let (mut ddb, _) =
            DurableDatabase::open(fp.clone(), DbOptions::default(), group_commit_opts()).unwrap();
        ddb.declare_relation("Orders", 3).unwrap();
        ddb.load_fact("Orders", &["700", "32", "9"]).unwrap();
        ddb.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
            .unwrap();
        ddb
    }

    #[test]
    fn group_commit_buffer_lost_to_power_loss_kept_by_close() {
        let fp = FailpointStorage::unlimited();
        let ddb = fp_seeded(&fp);
        let live = world_set(ddb.db());

        // Power loss before any sync point: the whole buffered tail —
        // every record since open — never reached the platters.
        let (cold, _) = reopen(fp.power_loss_survivor());
        assert_ne!(world_set(cold.db()), live);

        // Graceful shutdown flushes the group-commit buffer; the same
        // power-loss image now recovers the full state.
        ddb.close().unwrap();
        let (recovered, report) = reopen(fp.power_loss_survivor());
        assert_eq!(world_set(recovered.db()), live);
        assert_eq!(report.truncated, None);
    }

    #[test]
    fn drop_flushes_group_commit_buffer_best_effort() {
        let fp = FailpointStorage::unlimited();
        let ddb = fp_seeded(&fp);
        let live = world_set(ddb.db());
        drop(ddb); // no close(): the Drop impl must still flush
        let (recovered, _) = reopen(fp.power_loss_survivor());
        assert_eq!(world_set(recovered.db()), live);
    }

    #[test]
    fn into_storage_still_models_pulling_the_plug() {
        let fp = FailpointStorage::unlimited();
        let ddb = fp_seeded(&fp);
        let live = world_set(ddb.db());
        let _ = ddb.into_storage(); // crash simulation: must NOT flush
        let (cold, _) = reopen(fp.power_loss_survivor());
        assert_ne!(world_set(cold.db()), live);
        // ...but the process-crash survivor (OS cache intact) has it all.
        let (warm, _) = reopen(fp.survivor());
        assert_eq!(world_set(warm.db()), live);
    }

    // ----- background compaction -------------------------------------------

    #[test]
    fn recovery_report_surfaces_simplification() {
        let mut ddb = seeded(opts_nocompact());
        for i in 0..4 {
            ddb.execute(&format!("DELETE Orders(700,32,9) WHERE InStock(32,{i})"))
                .unwrap();
        }
        let (_, report) = reopen(ddb.into_storage());
        // The replay produced an unsimplified store; the post-replay pass
        // must have seen it and its report must be visible, not discarded.
        assert!(report.simplify.nodes_before > 0, "{report:?}");
        assert!(report.simplify.nodes_after <= report.simplify.nodes_before);
        assert_eq!(
            report.nodes_reclaimed(),
            report.simplify.nodes_before - report.simplify.nodes_after
        );
    }

    #[test]
    fn compaction_swap_preserves_worlds_and_replays_racing_writes() {
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
            .unwrap();
        let (mut copy, from_lsn) = ddb.begin_compaction();
        assert!(ddb.compaction_pending());
        // Writes racing the off-lock simplification...
        ddb.execute("INSERT InStock(40,2) WHERE T").unwrap();
        ddb.execute("DELETE Orders(100,32,7) WHERE InStock(40,2)")
            .unwrap();
        let live = world_set(ddb.db());
        let nodes_live = ddb.db().theory().store_nodes();
        // ...while the copy gets the full pass.
        winslett_gua::simplify(&mut copy, SimplifyLevel::Full);
        let outcome = ddb.install_compacted(copy, from_lsn, false).unwrap();
        assert!(!ddb.compaction_pending());
        assert_eq!(outcome.replayed, 2);
        assert_eq!(outcome.nodes_before, nodes_live);
        assert!(outcome.nodes_after <= outcome.nodes_before);
        assert_eq!(world_set(ddb.db()), live);
        assert_eq!(ddb.stats().compactions, 1);
        // The swapped theory must still recover identically.
        ddb.sync().unwrap();
        let (recovered, _) = reopen(ddb.into_storage());
        assert_eq!(world_set(recovered.db()), live);
    }

    #[test]
    fn compaction_generation_strictly_advances_across_swap() {
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("INSERT Orders(100,32,1) | Orders(100,32,7) WHERE T")
            .unwrap();
        // No racing writes at all: the compacted clone's component
        // counters tie the live theory's, the worst case for stale-session
        // detection — only the epoch can break the tie.
        let (copy, from_lsn) = ddb.begin_compaction();
        let before = ddb.db().theory().generation();
        let outcome = ddb.install_compacted(copy, from_lsn, false).unwrap();
        assert_eq!(outcome.generation_before, before);
        assert!(outcome.generation_after > outcome.generation_before);
        assert_eq!(ddb.db().theory().generation(), outcome.generation_after);
    }

    #[test]
    fn compaction_checkpoint_shrinks_snapshot() {
        let mut ddb = seeded(opts_nocompact());
        for i in 0..6 {
            ddb.execute(&format!("DELETE Orders(700,32,9) WHERE InStock(32,{i})"))
                .unwrap();
        }
        ddb.checkpoint().unwrap();
        let fat = ddb.storage().get(SNAPSHOT_FILE).unwrap().len();
        let (mut copy, from_lsn) = ddb.begin_compaction();
        winslett_gua::simplify(&mut copy, SimplifyLevel::Full);
        let live = world_set(ddb.db());
        let outcome = ddb.install_compacted(copy, from_lsn, true).unwrap();
        assert!(outcome.checkpointed);
        let slim = ddb.storage().get(SNAPSHOT_FILE).unwrap().len();
        assert!(
            slim <= fat,
            "checkpoint grew across compaction: {fat} -> {slim}"
        );
        // The compacted snapshot alone (log was just reset) recovers the
        // same worlds.
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(report.replayed, 0);
        assert_eq!(world_set(recovered.db()), live);
    }

    #[test]
    fn compaction_swap_skips_aborted_suffix_records() {
        let mut ddb = seeded(opts_nocompact());
        let (copy, from_lsn) = ddb.begin_compaction();
        // A refused update journals an intent then a compensating abort;
        // neither may replay onto the compacted copy. Choke the store so
        // GUA fails after the intent was journaled.
        let len = ddb.db().theory().store.len() as u32;
        ddb.db_mut().theory_mut().store.set_capacity(u32::MAX, len);
        assert!(ddb.execute("INSERT Orders(800,32,5) WHERE T").is_err());
        ddb.db_mut()
            .theory_mut()
            .store
            .set_capacity(u32::MAX, u32::MAX);
        ddb.execute("INSERT InStock(50,5) WHERE T").unwrap();
        let live = world_set(ddb.db());
        let outcome = ddb.install_compacted(copy, from_lsn, false).unwrap();
        assert_eq!(outcome.replayed, 1); // only the surviving insert
        assert_eq!(world_set(ddb.db()), live);
    }

    #[test]
    fn install_without_capture_is_a_typed_error() {
        let mut ddb = seeded(opts_nocompact());
        let copy = ddb.db().theory().clone();
        let err = ddb.install_compacted(copy, 0, false).unwrap_err();
        assert!(matches!(err, DbError::Compaction { .. }), "{err:?}");
        // abort_compaction on an idle database is harmless.
        ddb.abort_compaction();
        assert!(!ddb.compaction_pending());
    }

    // ----- recovery-boundary and replication tests --------------------------

    /// Splits a WAL image into (header, record byte ranges).
    fn record_spans(bytes: &[u8]) -> Vec<std::ops::Range<usize>> {
        let mut spans = Vec::new();
        let mut off = 8usize;
        while off < bytes.len() {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            spans.push(off..off + 8 + len);
            off += 8 + len;
        }
        spans
    }

    #[test]
    fn spliced_suffix_past_the_checkpoint_is_a_typed_lsn_gap() {
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("INSERT InStock(33,1) WHERE T").unwrap();
        ddb.checkpoint().unwrap();
        let boundary = ddb.snapshot_lsn();
        ddb.execute("INSERT InStock(34,1) WHERE T").unwrap();
        ddb.execute("INSERT InStock(35,1) WHERE T").unwrap();
        let mut storage = ddb.close().unwrap();
        // Splice out the first post-checkpoint record: the survivor now
        // starts one LSN past what the snapshot is current through —
        // within-file contiguity holds, so only the boundary check can
        // catch it.
        let bytes = storage.get(WAL_FILE).unwrap().clone();
        let spans = record_spans(&bytes);
        assert_eq!(spans.len(), 2);
        let mut spliced = bytes[..8].to_vec();
        spliced.extend_from_slice(&bytes[spans[1].clone()]);
        storage.put(WAL_FILE, spliced);
        let err = match DurableDatabase::open(storage, DbOptions::default(), opts_nocompact()) {
            Err(e) => e,
            Ok(_) => panic!("gap must be rejected"),
        };
        assert_eq!(
            err,
            DbError::LsnGap {
                expected: boundary,
                found: boundary + 1,
            }
        );
    }

    #[test]
    fn spliced_log_without_a_snapshot_is_also_rejected() {
        let ddb = seeded(opts_nocompact());
        let mut storage = ddb.close().unwrap();
        let bytes = storage.get(WAL_FILE).unwrap().clone();
        let spans = record_spans(&bytes);
        // Drop the first record (lsn 0): the survivor starts at lsn 1 but
        // no snapshot covers lsn 0.
        let mut spliced = bytes[..8].to_vec();
        for span in &spans[1..] {
            spliced.extend_from_slice(&bytes[span.clone()]);
        }
        storage.put(WAL_FILE, spliced);
        let err = match DurableDatabase::open(storage, DbOptions::default(), opts_nocompact()) {
            Err(e) => e,
            Ok(_) => panic!("gap must be rejected"),
        };
        assert_eq!(
            err,
            DbError::LsnGap {
                expected: 0,
                found: 1
            }
        );
    }

    #[test]
    fn old_wal_with_kill_byte_tails_still_recovers_after_checkpoint() {
        // A torn tail (kill-byte damage) is *truncation*, not a gap: the
        // surviving prefix still meets the checkpoint, so recovery must
        // keep accepting it.
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("INSERT InStock(33,1) WHERE T").unwrap();
        let mut storage = ddb.close().unwrap();
        let mut bytes = storage.get(WAL_FILE).unwrap().clone();
        bytes.truncate(bytes.len() - 3); // tear the last record
        storage.put(WAL_FILE, bytes);
        let (recovered, report) = reopen(storage);
        assert!(report.truncated.is_some());
        assert!(report.repaired);
        drop(recovered);
    }

    #[test]
    fn record_cap_is_exact_at_the_mint_boundary() {
        let overhead = {
            let probe = WalEntry {
                lsn: 0,
                record: WalRecord::LoadWff(String::new()),
            };
            serde_json::to_string(&probe).unwrap().len()
        };
        let entry = |n: usize| WalEntry {
            lsn: 0,
            record: WalRecord::LoadWff("x".repeat(n)),
        };
        let fits = MAX_RECORD_LEN as usize - overhead;
        assert!(encode_entry(&entry(fits)).is_ok());
        match encode_entry(&entry(fits + 1)) {
            Err(DbError::RecordTooLarge { len, max }) => {
                assert_eq!(len, MAX_RECORD_LEN as usize + 1);
                assert_eq!(max, MAX_RECORD_LEN as usize);
            }
            other => panic!("expected RecordTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_record_is_refused_before_anything_is_journaled() {
        let mut ddb = seeded(opts_nocompact());
        let before = ddb.next_lsn();
        let wal_len = ddb.storage().get(WAL_FILE).unwrap().len();
        let huge = format!("InStock({},1)", "9".repeat(MAX_RECORD_LEN as usize));
        let err = ddb.load_wff(&huge).unwrap_err();
        assert!(matches!(err, DbError::RecordTooLarge { .. }), "{err:?}");
        // Nothing was appended, no LSN burned, and the database stays
        // fully usable.
        assert_eq!(ddb.next_lsn(), before);
        assert_eq!(ddb.storage().get(WAL_FILE).unwrap().len(), wal_len);
        ddb.execute("INSERT InStock(36,1) WHERE T").unwrap();
    }

    #[test]
    fn drain_shipping_carries_only_effective_records() {
        let mut ddb = seeded(opts_nocompact());
        ddb.enable_shipping();
        // Records journaled before arming were not retained; the first
        // drain starts empty.
        assert!(ddb.drain_shipping().is_empty());
        ddb.execute("INSERT InStock(40,1) WHERE T").unwrap();
        // Choke the store so GUA refuses after journaling the intent: the
        // Apply/Abort pair must be filtered out of the shipped batch.
        let len = ddb.db().theory().store.len() as u32;
        ddb.db_mut().theory_mut().store.set_capacity(u32::MAX, len);
        assert!(ddb.execute("INSERT Orders(800,32,5) WHERE T").is_err());
        ddb.db_mut()
            .theory_mut()
            .store
            .set_capacity(u32::MAX, u32::MAX);
        ddb.execute("INSERT InStock(41,1) WHERE T").unwrap();
        let batch = ddb.drain_shipping();
        assert_eq!(batch.len(), 2, "{batch:?}");
        assert!(batch
            .iter()
            .all(|e| matches!(e.record, WalRecord::Apply(_))));
        // Drained means gone.
        assert!(ddb.drain_shipping().is_empty());
        // A follower replaying the batch (plus the pre-arm prefix via
        // catch-up) reaches the primary's exact world set.
        let mut follower = LogicalDatabase::with_options(DbOptions::default());
        match ddb.catchup_from(0).unwrap() {
            Catchup::Suffix(entries) => {
                for e in entries {
                    replay_record(&mut follower, &e.record).unwrap();
                }
            }
            other => panic!("no checkpoint yet, expected Suffix: {other:?}"),
        }
        follower.simplify(DbOptions::default().simplify);
        assert_eq!(world_set(&follower), world_set(ddb.db()));
    }

    #[test]
    fn catchup_serves_suffix_or_snapshot_depending_on_cursor() {
        let mut ddb = seeded(opts_nocompact());
        ddb.execute("INSERT InStock(42,1) WHERE T").unwrap();
        ddb.checkpoint().unwrap();
        let boundary = ddb.snapshot_lsn();
        ddb.execute("INSERT InStock(43,1) WHERE T").unwrap();
        let live = world_set(ddb.db());

        // A cursor at/past the checkpoint gets the bare suffix.
        match ddb.catchup_from(boundary).unwrap() {
            Catchup::Suffix(entries) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].lsn, boundary);
            }
            other => panic!("expected Suffix: {other:?}"),
        }
        // A cursor from before the checkpoint needs the snapshot, and the
        // rebuilt follower matches the live world set exactly.
        match ddb.catchup_from(0).unwrap() {
            Catchup::Snapshot(snap, entries) => {
                assert_eq!(snap.lsn, boundary);
                let theory = persist::restore_theory(&snap.theory).unwrap();
                let mut follower = LogicalDatabase::from_theory(theory, DbOptions::default());
                for e in entries {
                    assert!(e.lsn >= boundary);
                    replay_record(&mut follower, &e.record).unwrap();
                }
                follower.simplify(DbOptions::default().simplify);
                assert_eq!(world_set(&follower), live);
            }
            other => panic!("expected Snapshot: {other:?}"),
        }
        // A cursor from the future is a typed gap (wrong primary).
        let next = ddb.next_lsn();
        assert_eq!(
            ddb.catchup_from(next + 5).unwrap_err(),
            DbError::LsnGap {
                expected: next,
                found: next + 5,
            }
        );
        // Catch-up at exactly next_lsn is an empty suffix, not an error.
        assert_eq!(ddb.catchup_from(next).unwrap(), Catchup::Suffix(vec![]));
    }

    // ----- transactions -----------------------------------------------------

    #[test]
    fn txn_commit_applies_and_rollback_discards() {
        let mut ddb = seeded(opts_nocompact());
        let before = world_set(ddb.db());

        // A rolled-back transaction leaves no trace on the live state.
        let t1 = ddb.txn_begin().unwrap();
        ddb.txn_execute(t1, "INSERT Orders(1,1,1) WHERE T").unwrap();
        assert_eq!(world_set(ddb.db()), before, "intents stay in the workspace");
        ddb.txn_rollback(t1).unwrap();
        assert_eq!(world_set(ddb.db()), before);
        assert_eq!(ddb.txn_active(), 0);

        // A committed transaction lands atomically, and its workspace gave
        // read-your-writes along the way.
        let t2 = ddb.txn_begin().unwrap();
        ddb.txn_execute(t2, "INSERT Orders(2,2,2) WHERE T").unwrap();
        ddb.txn_execute(t2, "DELETE Orders(2,2,2) WHERE T").unwrap();
        ddb.txn_execute(t2, "INSERT Orders(3,3,3) WHERE T").unwrap();
        let view = ddb.txn_view(t2).unwrap();
        assert_ne!(world_set(view), before, "workspace sees own writes");
        let (lsn, ops) = ddb.txn_commit(t2).unwrap();
        assert_eq!(ops, 3);
        assert!(lsn > t2);
        let committed = world_set(ddb.db());
        assert_ne!(committed, before);

        // Recovery reconstructs exactly the committed state.
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(world_set(recovered.db()), committed);
        assert_eq!(report.rolled_back, 0);
    }

    #[test]
    fn txn_interleaves_with_plain_writes_on_disjoint_atoms() {
        let mut ddb = seeded(opts_nocompact());
        let txn = ddb.txn_begin().unwrap();
        ddb.txn_execute(txn, "INSERT Orders(5,5,5) WHERE T")
            .unwrap();
        // A disjoint plain write commits mid-transaction; the next
        // statement rebuilds the workspace over it.
        ddb.execute("INSERT InStock(9,9) WHERE T").unwrap();
        ddb.txn_execute(txn, "INSERT Orders(6,6,6) WHERE InStock(9,9)")
            .unwrap();
        ddb.txn_commit(txn).unwrap();
        let live = world_set(ddb.db());
        let (recovered, _) = reopen(ddb.into_storage());
        assert_eq!(world_set(recovered.db()), live);
        let mut probe = recovered;
        for wff in ["Orders(5,5,5)", "Orders(6,6,6)", "InStock(9,9)"] {
            assert!(
                probe.db_mut().is_certain(wff).unwrap(),
                "{wff} must be certain after commit"
            );
        }
    }

    #[test]
    fn recovery_rolls_back_unfinished_transaction() {
        let mut ddb = seeded(opts_nocompact());
        let base = world_set(ddb.db());
        let txn = ddb.txn_begin().unwrap();
        ddb.txn_execute(txn, "INSERT Orders(7,7,7) WHERE T")
            .unwrap();
        ddb.txn_execute(txn, "DELETE Orders(700,32,9) WHERE T")
            .unwrap();
        // Crash before commit: the storage holds begin + two intents and
        // no marker.
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(report.rolled_back, 1, "one in-flight txn rolled back");
        assert_eq!(world_set(recovered.db()), base);
        // The compensation marker is durable: a second recovery sees a
        // finished (aborted) transaction, not another rollback.
        let (again, report2) = reopen(recovered.into_storage());
        assert_eq!(report2.rolled_back, 0);
        assert_eq!(world_set(again.db()), base);
    }

    #[test]
    fn txn_statement_refusal_journals_compensation_inside_txn() {
        let mut ddb = seeded(opts_nocompact());
        let txn = ddb.txn_begin().unwrap();
        ddb.txn_execute(txn, "INSERT Orders(8,8,8) WHERE T")
            .unwrap();
        // An unparseable statement refuses without killing the txn.
        assert!(ddb.txn_execute(txn, "INSERT nonsense((").is_err());
        assert!(ddb.txn_open(txn));
        ddb.txn_commit(txn).unwrap();
        let live = world_set(ddb.db());
        let (recovered, _) = reopen(ddb.into_storage());
        assert_eq!(world_set(recovered.db()), live);
    }

    #[test]
    fn checkpoint_refused_while_txn_open_then_allowed() {
        let mut ddb = seeded(opts_nocompact());
        let txn = ddb.txn_begin().unwrap();
        ddb.txn_execute(txn, "INSERT Orders(9,9,9) WHERE T")
            .unwrap();
        assert!(matches!(
            ddb.checkpoint(),
            Err(DbError::TxnOpen { active: 1 })
        ));
        ddb.txn_commit(txn).unwrap();
        ddb.checkpoint().unwrap();
        let live = world_set(ddb.db());
        let (recovered, report) = reopen(ddb.into_storage());
        assert_eq!(report.replayed, 0, "checkpoint folded everything");
        assert_eq!(world_set(recovered.db()), live);
    }

    #[test]
    fn txn_unknown_ids_are_typed_errors() {
        let mut ddb = seeded(opts_nocompact());
        assert!(matches!(
            ddb.txn_commit(999),
            Err(DbError::TxnUnknown { txn: 999 })
        ));
        assert!(matches!(
            ddb.txn_rollback(999),
            Err(DbError::TxnUnknown { txn: 999 })
        ));
        assert!(matches!(
            ddb.txn_execute(999, "INSERT Orders(1,1,1) WHERE T"),
            Err(DbError::TxnUnknown { txn: 999 })
        ));
        // Double-commit: the first consumes the txn.
        let txn = ddb.txn_begin().unwrap();
        ddb.txn_commit(txn).unwrap();
        assert!(matches!(
            ddb.txn_commit(txn),
            Err(DbError::TxnUnknown { .. })
        ));
    }

    #[test]
    fn concurrent_txns_with_disjoint_footprints_both_commit() {
        let mut ddb = seeded(opts_nocompact());
        let t1 = ddb.txn_begin().unwrap();
        let t2 = ddb.txn_begin().unwrap();
        ddb.txn_execute(t1, "INSERT Orders(10,1,1) WHERE T")
            .unwrap();
        ddb.txn_execute(t2, "INSERT InStock(20,2) WHERE T").unwrap();
        ddb.txn_execute(t1, "INSERT Orders(11,1,1) WHERE T")
            .unwrap();
        ddb.txn_commit(t2).unwrap();
        ddb.txn_commit(t1).unwrap();
        let live = world_set(ddb.db());
        let (mut recovered, report) = reopen(ddb.into_storage());
        assert_eq!(report.rolled_back, 0);
        assert_eq!(world_set(recovered.db()), live);
        for wff in ["Orders(10,1,1)", "Orders(11,1,1)", "InStock(20,2)"] {
            assert!(recovered.db_mut().is_certain(wff).unwrap(), "{wff}");
        }
    }
}
