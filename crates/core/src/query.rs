//! Conjunctive queries with certain/possible answer semantics.
//!
//! Reiter's framework (which the paper builds on) defines query answers
//! over a logical database by entailment: an answer tuple is *certain* when
//! the instantiated query is true in every alternative world, and
//! *possible* when it is true in at least one. This module provides a small
//! conjunctive query language over the registered atoms:
//!
//! ```text
//! ?- Orders(?o, 32, ?q) & !InStock(32, ?q)
//! ```
//!
//! Terms starting with `?` are variables; everything else is a constant.
//! Negated atoms are allowed (safe negation: every variable must occur in a
//! positive atom). Predicate constants are rejected, per §3.3: "they may
//! not appear in any query posed to the database".

use crate::error::DbError;
use rustc_hash::FxHashSet;
use winslett_logic::{AtomId, ConstId, GroundAtom, PredicateKind, Wff};
use winslett_theory::Theory;

/// A term in a query atom.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryTerm {
    /// A variable, by index.
    Var(u16),
    /// A constant.
    Cst(ConstId),
    /// A constant name the database has never interned. Atoms mentioning
    /// it are outside every completion axiom and therefore false in every
    /// world — the query still evaluates, it just can't match anything
    /// positively.
    Foreign,
}

/// One (possibly negated) query atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryAtom {
    /// The predicate.
    pub pred: winslett_logic::PredId,
    /// Argument terms.
    pub args: Vec<QueryTerm>,
    /// Whether the atom is negated.
    pub negated: bool,
}

/// A conjunctive query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// Number of distinct variables.
    pub num_vars: u16,
    /// Variable names, by index (for rendering answers).
    pub var_names: Vec<String>,
    /// The atoms, positives first is not required.
    pub atoms: Vec<QueryAtom>,
}

/// Answers to a query.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Answers {
    /// Substitutions (one constant name per variable) true in **every**
    /// alternative world.
    pub certain: Vec<Vec<String>>,
    /// Substitutions true in **some** alternative world (a superset of
    /// `certain`).
    pub possible: Vec<Vec<String>>,
}

/// A possible answer together with its *support*: how many alternative
/// worlds it holds in. Support equal to the world count means certainty —
/// a graded middle ground between the certain/possible dichotomy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SupportedAnswer {
    /// The substitution (one constant name per variable).
    pub row: Vec<String>,
    /// Number of worlds in which the instantiated query is true.
    pub support: usize,
}

impl Query {
    /// Parses the textual query syntax against a theory's vocabulary.
    /// Unknown predicates are errors; unknown constants are accepted as
    /// [`QueryTerm::Foreign`] (their atoms are false in every world).
    pub fn parse(src: &str, theory: &Theory) -> Result<Query, DbError> {
        let src = src.trim();
        let src = src.strip_prefix("?-").unwrap_or(src).trim();
        if src.is_empty() {
            return Err(DbError::Query {
                message: "empty query".into(),
            });
        }
        let mut atoms = Vec::new();
        let mut var_names: Vec<String> = Vec::new();
        for part in src.split('&') {
            let mut part = part.trim();
            let mut negated = false;
            while let Some(rest) = part.strip_prefix('!') {
                negated = !negated;
                part = rest.trim();
            }
            let open = part.find('(').ok_or_else(|| DbError::Query {
                message: format!("atom `{part}` missing argument list"),
            })?;
            if !part.ends_with(')') {
                return Err(DbError::Query {
                    message: format!("atom `{part}` missing ')'"),
                });
            }
            let pred_name = part[..open].trim();
            let pred = theory
                .vocab
                .find_predicate(pred_name)
                .ok_or_else(|| DbError::Query {
                    message: format!("unknown predicate `{pred_name}`"),
                })?;
            let decl = theory.vocab.predicate(pred);
            if decl.kind == PredicateKind::PredicateConstant {
                return Err(DbError::Query {
                    message: format!("predicate constant `{pred_name}` may not appear in queries"),
                });
            }
            let body = &part[open + 1..part.len() - 1];
            let mut args = Vec::new();
            for raw in body.split(',') {
                let raw = raw.trim();
                if let Some(name) = raw.strip_prefix('?') {
                    let idx = match var_names.iter().position(|v| v == name) {
                        Some(i) => i,
                        None => {
                            var_names.push(name.to_owned());
                            var_names.len() - 1
                        }
                    };
                    args.push(QueryTerm::Var(idx as u16));
                } else {
                    match theory.vocab.find_constant(raw) {
                        Some(c) => args.push(QueryTerm::Cst(c)),
                        None => args.push(QueryTerm::Foreign),
                    }
                }
            }
            if args.len() != decl.arity {
                return Err(DbError::Query {
                    message: format!(
                        "predicate `{pred_name}` has arity {} but was given {} arguments",
                        decl.arity,
                        args.len()
                    ),
                });
            }
            atoms.push(QueryAtom {
                pred,
                args,
                negated,
            });
        }
        let q = Query {
            num_vars: var_names.len() as u16,
            var_names,
            atoms,
        };
        q.check_safety()?;
        Ok(q)
    }

    /// Safe-negation check: every variable occurs in a positive atom.
    fn check_safety(&self) -> Result<(), DbError> {
        let mut positive_vars = FxHashSet::default();
        for a in self.atoms.iter().filter(|a| !a.negated) {
            for t in &a.args {
                if let QueryTerm::Var(v) = t {
                    positive_vars.insert(*v);
                }
            }
        }
        for v in 0..self.num_vars {
            if !positive_vars.contains(&v) {
                return Err(DbError::Query {
                    message: format!(
                        "variable ?{} occurs only in negated atoms (unsafe)",
                        self.var_names[v as usize]
                    ),
                });
            }
        }
        Ok(())
    }

    /// Evaluates the query against `theory`, returning certain and possible
    /// answers. Candidate bindings are generated from the registered atoms
    /// (anything outside the completion axioms is false everywhere), then
    /// each fully instantiated query is decided by two assumption-solves
    /// against the theory's shared entailment session — no per-binding
    /// solver construction. When many candidates exist and the host has
    /// spare cores, independent bindings fan out across scoped workers with
    /// per-worker session clones (the worlds-engine pattern).
    pub fn evaluate(&self, theory: &Theory) -> Result<Answers, DbError> {
        let candidates = self.candidate_instances(theory)?;
        let verdicts = decide_candidates(theory, &candidates);
        let mut answers = Answers::default();
        for ((row, _), (possible, certain)) in candidates.into_iter().zip(verdicts) {
            if possible {
                if certain {
                    answers.certain.push(row.clone());
                }
                answers.possible.push(row);
            }
        }
        answers.certain.sort();
        answers.certain.dedup();
        answers.possible.sort();
        answers.possible.dedup();
        Ok(answers)
    }

    /// Evaluates the query deciding every candidate against a
    /// caller-provided [`EntailmentSession`](winslett_logic::EntailmentSession)
    /// instead of the theory's shared cached one. This is the snapshot-read
    /// path: a server connection pinning an `Arc<Theory>` snapshot keeps its
    /// **own** session (encoded once per snapshot) and evaluates every query
    /// against it, so concurrent readers never contend on the theory's
    /// internal session mutex. The session must have been built over this
    /// theory's model constraints (e.g. via
    /// [`Theory::fresh_entailment_session`]); answers are then identical to
    /// [`Query::evaluate`].
    pub fn evaluate_with_session(
        &self,
        theory: &Theory,
        session: &mut winslett_logic::EntailmentSession,
    ) -> Result<Answers, DbError> {
        let candidates = self.candidate_instances(theory)?;
        let mut answers = Answers::default();
        for (row, wff) in candidates {
            let (possible, certain) = decide_one(session, &wff);
            if possible {
                if certain {
                    answers.certain.push(row.clone());
                }
                answers.possible.push(row);
            }
        }
        answers.certain.sort();
        answers.certain.dedup();
        answers.possible.sort();
        answers.possible.dedup();
        Ok(answers)
    }

    /// Enumerates the distinct complete bindings of the query together with
    /// their fully instantiated ground wffs — the SAT-free half of
    /// [`Query::evaluate`]. Exposed so benchmarks can compare decision
    /// strategies over identical candidate sets.
    pub fn candidate_instances(&self, theory: &Theory) -> Result<Vec<(Vec<String>, Wff)>, DbError> {
        let positives: Vec<&QueryAtom> = self.atoms.iter().filter(|a| !a.negated).collect();
        // Candidate tables are built once per evaluation, not once per
        // recursion level: `search` re-visits each positive atom once per
        // partial binding above it.
        let tables: Vec<Vec<AtomId>> = positives
            .iter()
            .map(|a| theory.registry.atoms_of(a.pred).collect())
            .collect();
        let mut env: Vec<Option<ConstId>> = vec![None; self.num_vars as usize];
        let mut seen: FxHashSet<Vec<ConstId>> = FxHashSet::default();
        let mut out = Vec::new();
        self.search(
            theory, &positives, &tables, 0, &mut env, &mut seen, &mut out,
        )?;
        Ok(out)
    }

    /// Evaluates the query with per-answer support counts: for each
    /// possible answer, the number of alternative worlds it holds in.
    /// Returns `(answers, total_worlds)`; an answer with
    /// `support == total_worlds` is certain. Costs a full world
    /// enumeration, so it is bounded by `limit`.
    pub fn evaluate_with_support(
        &self,
        theory: &Theory,
        limit: winslett_logic::ModelLimit,
    ) -> Result<(Vec<SupportedAnswer>, usize), DbError> {
        let worlds = theory.alternative_worlds(limit)?;
        let base = self.evaluate(theory)?;
        let mut out = Vec::with_capacity(base.possible.len());
        // Recover each row's binding by re-instantiating from names. The
        // instantiation checks inside `evaluate` already ran against one
        // shared session, so this loop performs no further SAT work.
        for row in &base.possible {
            let env: Vec<Option<ConstId>> = row
                .iter()
                .map(|name| theory.vocab.find_constant(name))
                .collect();
            if let Some(bad) = env.iter().position(Option::is_none) {
                // Every row came from interned constants moments ago; a
                // failed re-resolution means the vocabulary was mutated
                // out from under us (or an internal invariant broke).
                // Silently dropping the answer would corrupt the result
                // set, so fail loudly instead.
                debug_assert!(false, "constant `{}` failed to re-resolve", row[bad]);
                return Err(DbError::Query {
                    message: format!(
                        "internal error: answer constant `{}` in row {row:?} \
                         no longer resolves in the vocabulary",
                        row[bad]
                    ),
                });
            }
            let wff = self.instantiate(theory, &env)?;
            let support = worlds
                .iter()
                .filter(|w| wff.eval(&mut |a: &AtomId| w.get(a.index())))
                .count();
            out.push(SupportedAnswer {
                row: row.clone(),
                support,
            });
        }
        out.sort_by(|a, b| b.support.cmp(&a.support).then(a.row.cmp(&b.row)));
        Ok((out, worlds.len()))
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        theory: &Theory,
        positives: &[&QueryAtom],
        tables: &[Vec<AtomId>],
        pos: usize,
        env: &mut Vec<Option<ConstId>>,
        seen: &mut FxHashSet<Vec<ConstId>>,
        out: &mut Vec<(Vec<String>, Wff)>,
    ) -> Result<(), DbError> {
        if pos == positives.len() {
            let binding: Vec<ConstId> = env
                .iter()
                .map(|o| o.expect("all vars bound by safety"))
                .collect();
            if !seen.insert(binding.clone()) {
                return Ok(());
            }
            let wff = self.instantiate(theory, env)?;
            let row: Vec<String> = binding
                .iter()
                .map(|c| theory.vocab.constant_name(*c).to_owned())
                .collect();
            out.push((row, wff));
            return Ok(());
        }
        let atom = positives[pos];
        for &cand in &tables[pos] {
            let ground = theory.atoms.resolve(cand).clone();
            let mut trail = Vec::new();
            if unify_query(atom, &ground, env, &mut trail) {
                self.search(theory, positives, tables, pos + 1, env, seen, out)?;
            }
            for v in trail {
                env[v as usize] = None;
            }
        }
        Ok(())
    }

    /// Builds the ground wff for a complete binding. Negated atoms over
    /// never-interned ground atoms are certainly true (completion) and fold
    /// away; positive ones would be certainly false (cannot happen here —
    /// positives come from the registry).
    fn instantiate(&self, theory: &Theory, env: &[Option<ConstId>]) -> Result<Wff, DbError> {
        let mut conjuncts = Vec::with_capacity(self.atoms.len());
        for a in &self.atoms {
            let mut args: Vec<ConstId> = Vec::with_capacity(a.args.len());
            let mut foreign = false;
            for t in &a.args {
                match t {
                    QueryTerm::Cst(c) => args.push(*c),
                    QueryTerm::Var(v) => args.push(env[*v as usize].expect("bound")),
                    QueryTerm::Foreign => foreign = true,
                }
            }
            if foreign {
                // An atom over a never-seen constant is false everywhere.
                if !a.negated {
                    conjuncts.push(Wff::f());
                }
                continue;
            }
            let ground = GroundAtom::new(a.pred, &args);
            match theory.atoms.get(&ground) {
                Some(id) if theory.registry.is_registered(id) => {
                    let lit = Wff::Atom(id);
                    conjuncts.push(if a.negated { lit.not() } else { lit });
                }
                _ => {
                    // Unregistered: false in every world.
                    if !a.negated {
                        conjuncts.push(Wff::f());
                    }
                    // Negated unregistered atom is certainly true: drop.
                }
            }
        }
        Ok(Wff::and(conjuncts))
    }
}

/// Candidate count below which parallel decision is not worth the
/// per-worker session rebuild.
const PARALLEL_DECIDE_THRESHOLD: usize = 32;

/// Decides one instantiated candidate against a session:
/// `(possible, certain)`. Certainty is only probed when the candidate is
/// possible — over an inconsistent theory nothing is possible, matching
/// the legacy fresh-solver answers.
fn decide_one(session: &mut winslett_logic::EntailmentSession, wff: &Wff) -> (bool, bool) {
    session.decide(wff)
}

/// Decides every candidate, sequentially through the theory's cached
/// session or fanned across scoped workers with per-worker fresh sessions
/// when the batch is large and cores are available. Results are indexed,
/// so the outcome is identical for every thread count.
fn decide_candidates(theory: &Theory, candidates: &[(Vec<String>, Wff)]) -> Vec<(bool, bool)> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if candidates.len() >= PARALLEL_DECIDE_THRESHOLD && threads > 1 {
        let workers = threads.min(candidates.len());
        let chunk = candidates.len().div_ceil(workers);
        let mut verdicts = vec![(false, false); candidates.len()];
        std::thread::scope(|scope| {
            for (cand_chunk, out_chunk) in candidates.chunks(chunk).zip(verdicts.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    let mut session = theory.fresh_entailment_session();
                    for ((_, wff), slot) in cand_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = decide_one(&mut session, wff);
                    }
                });
            }
        });
        verdicts
    } else {
        theory.with_entailment_session(|s| {
            candidates
                .iter()
                .map(|(_, wff)| decide_one(s, wff))
                .collect()
        })
    }
}

fn unify_query(
    pattern: &QueryAtom,
    ground: &GroundAtom,
    env: &mut [Option<ConstId>],
    trail: &mut Vec<u16>,
) -> bool {
    if pattern.pred != ground.pred || pattern.args.len() != ground.args.len() {
        return false;
    }
    for (t, &c) in pattern.args.iter().zip(ground.args.iter()) {
        match t {
            QueryTerm::Foreign => return false,
            QueryTerm::Cst(k) => {
                if *k != c {
                    return false;
                }
            }
            QueryTerm::Var(v) => match env[*v as usize] {
                Some(bound) => {
                    if bound != c {
                        return false;
                    }
                }
                None => {
                    env[*v as usize] = Some(c);
                    trail.push(*v);
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Orders(700,32,9) certain; Orders(701,33,5) ∨ Orders(701,34,5)
    /// disjunctive.
    fn orders_db() -> Theory {
        let mut t = Theory::new();
        let orders = t.declare_relation("Orders", 3).unwrap();
        let mk = |t: &mut Theory, a: &str, b: &str, c: &str| {
            let ca = t.constant(a);
            let cb = t.constant(b);
            let cc = t.constant(c);
            t.atom(orders, &[ca, cb, cc])
        };
        let t1 = mk(&mut t, "700", "32", "9");
        let t2 = mk(&mut t, "701", "33", "5");
        let t3 = mk(&mut t, "701", "34", "5");
        t.assert_atom(t1);
        t.assert_wff(&winslett_logic::Formula::Or(vec![
            Wff::Atom(t2),
            Wff::Atom(t3),
        ]));
        t
    }

    #[test]
    fn certain_and_possible_answers() {
        let t = orders_db();
        let q = Query::parse("?- Orders(?o, ?p, ?q)", &t).unwrap();
        let ans = q.evaluate(&t).unwrap();
        assert_eq!(ans.certain, vec![vec!["700", "32", "9"]]);
        assert_eq!(ans.possible.len(), 3);
    }

    #[test]
    fn constants_filter() {
        let t = orders_db();
        let q = Query::parse("Orders(701, ?p, 5)", &t).unwrap();
        let ans = q.evaluate(&t).unwrap();
        assert!(ans.certain.is_empty());
        assert_eq!(ans.possible.len(), 2);
    }

    #[test]
    fn join_via_shared_variable() {
        let t = orders_db();
        // Orders with the same part in two orders — none here.
        let q = Query::parse("Orders(700, ?p, ?q) & Orders(701, ?p, ?r)", &t).unwrap();
        let ans = q.evaluate(&t).unwrap();
        assert!(ans.possible.is_empty());
    }

    #[test]
    fn negation_over_unregistered_atom_is_certain() {
        let t = orders_db();
        let q = Query::parse("Orders(700, ?p, ?q) & !Orders(999, ?p, ?q)", &t).unwrap();
        let ans = q.evaluate(&t).unwrap();
        assert_eq!(ans.certain.len(), 1);
    }

    #[test]
    fn negation_over_disjunctive_atom() {
        let t = orders_db();
        // ¬Orders(701,33,5): possible (the disjunct may be the other one)
        // but not certain.
        let q = Query::parse("Orders(700, 32, 9) & !Orders(701, 33, 5)", &t).unwrap();
        let ans = q.evaluate(&t).unwrap();
        assert!(ans.certain.is_empty());
        assert_eq!(ans.possible.len(), 1);
    }

    #[test]
    fn unsafe_query_rejected() {
        let t = orders_db();
        assert!(matches!(
            Query::parse("!Orders(?o, ?p, ?q)", &t),
            Err(DbError::Query { .. })
        ));
    }

    #[test]
    fn unknown_symbols_rejected() {
        let t = orders_db();
        assert!(Query::parse("Nope(?x)", &t).is_err());
        assert!(Query::parse("Orders(?x, ?y)", &t).is_err()); // arity
        assert!(Query::parse("", &t).is_err());
        assert!(Query::parse("Orders(?x, ?y, ?z", &t).is_err());
    }

    #[test]
    fn predicate_constant_rejected_in_query() {
        let mut t = orders_db();
        let pc = t.vocab.fresh_predicate_constant();
        let name = t.vocab.predicate(pc).name.clone();
        assert!(Query::parse(&format!("{name}()"), &t).is_err());
    }

    #[test]
    fn support_counts_grade_answers() {
        let t = orders_db();
        // Worlds: {t1,t2}, {t1,t3}, {t1,t2,t3} (inclusive disjunction).
        let q = Query::parse("Orders(?o, ?p, ?q)", &t).unwrap();
        let (supported, total) = q
            .evaluate_with_support(&t, winslett_logic::ModelLimit::default())
            .unwrap();
        assert_eq!(total, 3);
        // t1 = Orders(700,32,9) holds everywhere; the disjuncts in 2 of 3.
        let find = |o: &str| {
            supported
                .iter()
                .find(|s| s.row[0] == o)
                .map(|s| s.support)
                .unwrap()
        };
        assert_eq!(find("700"), 3);
        assert_eq!(find("701"), 2);
        // Sorted by support, certain rows first.
        assert!(supported[0].support >= supported.last().unwrap().support);
    }

    #[test]
    fn boolean_query_no_vars() {
        let t = orders_db();
        let q = Query::parse("Orders(700, 32, 9)", &t).unwrap();
        let ans = q.evaluate(&t).unwrap();
        // One empty row: "yes".
        assert_eq!(ans.certain, vec![Vec::<String>::new()]);
    }
}
