//! Bridging ordinary relational databases and extended relational theories.
//!
//! "Given a relational database, Reiter constructs a relational theory
//! whose model corresponds to the world represented by the database" (§1).
//! This module is that bridge in both directions:
//!
//! * [`RelationalDatabase`] — a plain complete-information database: named
//!   relations holding tuples of strings;
//! * [`RelationalDatabase::to_theory`] — the Reiter construction: a theory
//!   with one certain fact per tuple whose single alternative world is the
//!   database;
//! * [`from_world`] — the inverse: render one alternative world of any
//!   theory as a relational database;
//! * [`certain_database`] / [`possible_database`] — the certain (tuples in
//!   every world) and possible (tuples in some world) projections of an
//!   incomplete database, the standard lower/upper readings.

use crate::error::DbError;
use std::collections::BTreeMap;
use winslett_logic::{AtomId, BitSet, ModelLimit, PredicateKind};
use winslett_theory::Theory;

/// A complete-information relational database: relation name → set of
/// tuples (each a vector of constant names).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RelationalDatabase {
    /// Relations, ordered by name for deterministic display.
    pub relations: BTreeMap<String, Vec<Vec<String>>>,
}

impl RelationalDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a tuple to `relation`.
    pub fn insert(&mut self, relation: &str, tuple: &[&str]) {
        self.relations
            .entry(relation.to_owned())
            .or_default()
            .push(tuple.iter().map(|s| s.to_string()).collect());
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.relations.values().map(Vec::len).sum()
    }

    /// Whether there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The Reiter construction: an extended relational theory whose single
    /// alternative world is exactly this database. Relations are declared
    /// untyped with arities inferred from the first tuple; ragged arities
    /// are an error.
    pub fn to_theory(&self) -> Result<Theory, DbError> {
        let mut t = Theory::new();
        for (name, tuples) in &self.relations {
            let Some(first) = tuples.first() else {
                continue;
            };
            let pred = t.declare_relation(name, first.len())?;
            for tuple in tuples {
                if tuple.len() != first.len() {
                    return Err(DbError::Query {
                        message: format!(
                            "relation `{name}` has ragged tuples ({} vs {})",
                            tuple.len(),
                            first.len()
                        ),
                    });
                }
                let args: Vec<_> = tuple.iter().map(|c| t.constant(c)).collect();
                let atom = t.atom(pred, &args);
                t.assert_atom(atom);
            }
        }
        Ok(t)
    }

    /// Sorts tuples for canonical comparison.
    pub fn canonicalize(&mut self) {
        for tuples in self.relations.values_mut() {
            tuples.sort();
            tuples.dedup();
        }
    }
}

/// Renders one alternative world of `theory` as a relational database.
pub fn from_world(theory: &Theory, world: &BitSet) -> RelationalDatabase {
    let mut db = RelationalDatabase::new();
    for i in world.ones() {
        if i >= theory.atoms.len() {
            continue;
        }
        let ga = theory.atoms.resolve(AtomId(i as u32));
        let pred = theory.vocab.predicate(ga.pred);
        if pred.kind == PredicateKind::PredicateConstant {
            continue;
        }
        let tuple: Vec<String> = ga
            .args
            .iter()
            .map(|c| theory.vocab.constant_name(*c).to_owned())
            .collect();
        db.relations
            .entry(pred.name.clone())
            .or_default()
            .push(tuple);
    }
    db.canonicalize();
    db
}

/// The **certain** database: tuples true in every alternative world — the
/// sure lower bound of the incomplete database. Computed from the theory's
/// truth backbone in one incremental SAT session.
pub fn certain_database(theory: &Theory, limit: ModelLimit) -> Result<RelationalDatabase, DbError> {
    let _ = limit;
    let Some(bb) = theory.atom_backbone()? else {
        // Inconsistent theory: by convention the certain database is empty
        // (there is no world to be certain about).
        return Ok(RelationalDatabase::new());
    };
    let mut db = RelationalDatabase::new();
    for (_, atom) in theory.registry.iter() {
        if bb.get(atom.index()).copied().flatten() == Some(true) {
            push_atom(theory, atom, &mut db);
        }
    }
    db.canonicalize();
    Ok(db)
}

/// The **possible** database: tuples true in at least one alternative
/// world — the upper bound. Also backbone-driven: possible means "not
/// certainly false".
pub fn possible_database(
    theory: &Theory,
    limit: ModelLimit,
) -> Result<RelationalDatabase, DbError> {
    let _ = limit;
    let Some(bb) = theory.atom_backbone()? else {
        return Ok(RelationalDatabase::new());
    };
    let mut db = RelationalDatabase::new();
    for (_, atom) in theory.registry.iter() {
        if bb.get(atom.index()).copied().flatten() != Some(false) {
            push_atom(theory, atom, &mut db);
        }
    }
    db.canonicalize();
    Ok(db)
}

fn push_atom(theory: &Theory, atom: AtomId, db: &mut RelationalDatabase) {
    let ga = theory.atoms.resolve(atom);
    let pred = theory.vocab.predicate(ga.pred);
    let tuple: Vec<String> = ga
        .args
        .iter()
        .map(|c| theory.vocab.constant_name(*c).to_owned())
        .collect();
    db.relations
        .entry(pred.name.clone())
        .or_default()
        .push(tuple);
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::Wff;

    fn sample_db() -> RelationalDatabase {
        let mut db = RelationalDatabase::new();
        db.insert("Orders", &["700", "32", "9"]);
        db.insert("Orders", &["701", "33", "5"]);
        db.insert("InStock", &["32", "1"]);
        db
    }

    #[test]
    fn reiter_construction_single_world() {
        let db = sample_db();
        let theory = db.to_theory().unwrap();
        let worlds = theory.alternative_worlds(ModelLimit::default()).unwrap();
        assert_eq!(worlds.len(), 1);
        let mut back = from_world(&theory, &worlds[0]);
        back.canonicalize();
        let mut original = db.clone();
        original.canonicalize();
        assert_eq!(back, original);
    }

    #[test]
    fn ragged_relation_rejected() {
        let mut db = RelationalDatabase::new();
        db.insert("R", &["a", "b"]);
        db.insert("R", &["c"]);
        assert!(db.to_theory().is_err());
    }

    #[test]
    fn certain_and_possible_projections() {
        // Start complete, then inject disjunctive information.
        let db = sample_db();
        let mut theory = db.to_theory().unwrap();
        let orders = theory.vocab.find_predicate("Orders").unwrap();
        let a = {
            let c1 = theory.constant("800");
            let c2 = theory.constant("40");
            let c3 = theory.constant("1");
            theory.atom(orders, &[c1, c2, c3])
        };
        let b = {
            let c1 = theory.constant("800");
            let c2 = theory.constant("41");
            let c3 = theory.constant("1");
            theory.atom(orders, &[c1, c2, c3])
        };
        theory.assert_wff(&winslett_logic::Formula::Or(vec![
            Wff::Atom(a),
            Wff::Atom(b),
        ]));
        let certain = certain_database(&theory, ModelLimit::default()).unwrap();
        let possible = possible_database(&theory, ModelLimit::default()).unwrap();
        // The two disjunctive tuples are possible but not certain.
        assert_eq!(certain.relations["Orders"].len(), 2);
        assert_eq!(possible.relations["Orders"].len(), 4);
        assert_eq!(certain.relations["InStock"].len(), 1);
    }

    #[test]
    fn backbone_projections_match_naive_entailment() {
        // Cross-check the backbone-driven projections against per-atom
        // entailment/consistency queries.
        let db = sample_db();
        let mut theory = db.to_theory().unwrap();
        let orders = theory.vocab.find_predicate("Orders").unwrap();
        let mk = |t: &mut Theory, x: &str, y: &str, z: &str| {
            let c1 = t.constant(x);
            let c2 = t.constant(y);
            let c3 = t.constant(z);
            t.atom(orders, &[c1, c2, c3])
        };
        let a = mk(&mut theory, "900", "50", "1");
        let b = mk(&mut theory, "900", "51", "1");
        theory.assert_wff(&winslett_logic::Formula::Or(vec![
            Wff::Atom(a),
            Wff::Atom(b),
        ]));
        let certain = certain_database(&theory, ModelLimit::default()).unwrap();
        let possible = possible_database(&theory, ModelLimit::default()).unwrap();
        for (_, atom) in theory.registry.iter() {
            let ga = theory.atoms.resolve(atom).clone();
            let name = theory.vocab.predicate(ga.pred).name.clone();
            let tuple: Vec<String> = ga
                .args
                .iter()
                .map(|c| theory.vocab.constant_name(*c).to_owned())
                .collect();
            let in_certain = certain
                .relations
                .get(&name)
                .is_some_and(|ts| ts.contains(&tuple));
            let in_possible = possible
                .relations
                .get(&name)
                .is_some_and(|ts| ts.contains(&tuple));
            assert_eq!(
                in_certain,
                theory.entails(&Wff::Atom(atom)),
                "{name}{tuple:?}"
            );
            assert_eq!(
                in_possible,
                theory.consistent_with(&Wff::Atom(atom)),
                "{name}{tuple:?}"
            );
        }
    }

    #[test]
    fn inconsistent_theory_yields_empty_projections() {
        let db = sample_db();
        let mut theory = db.to_theory().unwrap();
        theory.assert_wff(&Wff::f());
        assert!(certain_database(&theory, ModelLimit::default())
            .unwrap()
            .is_empty());
        assert!(possible_database(&theory, ModelLimit::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn empty_database_roundtrip() {
        let db = RelationalDatabase::new();
        assert!(db.is_empty());
        let theory = db.to_theory().unwrap();
        let worlds = theory.alternative_worlds(ModelLimit::default()).unwrap();
        assert_eq!(worlds.len(), 1);
        assert!(from_world(&theory, &worlds[0]).is_empty());
    }

    #[test]
    fn world_rendering_skips_predicate_constants() {
        let db = sample_db();
        let mut theory = db.to_theory().unwrap();
        let pc = theory.vocab.fresh_predicate_constant();
        let pca = theory.atoms.intern(winslett_logic::GroundAtom::nullary(pc));
        theory.assert_wff(&Wff::Atom(pca)); // pc true in the world
        let worlds = theory.alternative_worlds(ModelLimit::default()).unwrap();
        // Predicate constants are projected out of worlds already, but
        // from_world double-checks by kind.
        let back = from_world(&theory, &worlds[0]);
        assert!(!back.relations.keys().any(|k| k.starts_with("__p")));
    }
}
