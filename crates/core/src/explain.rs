//! Explaining query verdicts with concrete worlds.
//!
//! In an incomplete database, "is φ true?" has three answers — certain,
//! possible-but-uncertain, impossible — and the natural follow-up is
//! *show me why*. An [`Explanation`] carries the verdict together with up
//! to two witness worlds:
//!
//! * a **witness**: an alternative world where φ holds (present unless φ is
//!   impossible);
//! * a **counterexample**: an alternative world where φ fails (present
//!   unless φ is certain).
//!
//! Each is found by one SAT call (`theory ∧ φ`, `theory ∧ ¬φ`) — no world
//! enumeration.

use crate::error::DbError;
use winslett_logic::Wff;
use winslett_theory::Theory;

/// The three-valued verdict for a ground wff over an incomplete database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// True in every alternative world.
    Certain,
    /// True in some worlds, false in others.
    Uncertain,
    /// False in every alternative world.
    Impossible,
    /// The database itself has no worlds.
    Inconsistent,
}

/// A verdict together with its witnessing worlds (as sorted atom names).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Explanation {
    /// The verdict.
    pub verdict: Verdict,
    /// A world where the wff holds, if one exists.
    pub witness: Option<Vec<String>>,
    /// A world where the wff fails, if one exists.
    pub counterexample: Option<Vec<String>>,
}

impl Explanation {
    /// Renders the explanation as human-readable text.
    pub fn describe(&self) -> String {
        let fmt = |w: &Option<Vec<String>>| match w {
            Some(atoms) => format!("{{{}}}", atoms.join(", ")),
            None => "(none)".to_string(),
        };
        match self.verdict {
            Verdict::Certain => format!(
                "CERTAIN — holds in every world; e.g. {}",
                fmt(&self.witness)
            ),
            Verdict::Uncertain => format!(
                "POSSIBLE but not certain —\n  holds in   {}\n  fails in   {}",
                fmt(&self.witness),
                fmt(&self.counterexample)
            ),
            Verdict::Impossible => format!(
                "IMPOSSIBLE — fails in every world; e.g. {}",
                fmt(&self.counterexample)
            ),
            Verdict::Inconsistent => "INCONSISTENT — the database has no worlds".to_string(),
        }
    }
}

/// Explains a ground wff against a theory.
pub fn explain(theory: &Theory, wff: &Wff) -> Result<Explanation, DbError> {
    let witness_world = theory.find_world_where(wff);
    let counter_world = theory.find_world_where(&wff.clone().not());
    let render = |w: &winslett_logic::BitSet| -> Vec<String> { theory.format_world(w) };
    let verdict = match (&witness_world, &counter_world) {
        (Some(_), Some(_)) => Verdict::Uncertain,
        (Some(_), None) => Verdict::Certain,
        (None, Some(_)) => Verdict::Impossible,
        (None, None) => Verdict::Inconsistent,
    };
    Ok(Explanation {
        verdict,
        witness: witness_world.as_ref().map(render),
        counterexample: counter_world.as_ref().map(render),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_logic::Formula;

    fn sample() -> (Theory, Wff, Wff, Wff) {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let cc = t.constant("c");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        let c = t.atom(r, &[cc]);
        t.assert_atom(a);
        t.assert_wff(&Formula::Or(vec![Wff::Atom(b), Wff::Atom(c)]));
        (t, Wff::Atom(a), Wff::Atom(b), Wff::Atom(c))
    }

    #[test]
    fn certain_wff() {
        let (t, a, _, _) = sample();
        let e = explain(&t, &a).unwrap();
        assert_eq!(e.verdict, Verdict::Certain);
        assert!(e.witness.is_some());
        assert!(e.counterexample.is_none());
        assert!(e.describe().contains("CERTAIN"));
    }

    #[test]
    fn uncertain_wff_has_both_worlds() {
        let (t, _, b, _) = sample();
        let e = explain(&t, &b).unwrap();
        assert_eq!(e.verdict, Verdict::Uncertain);
        let w = e.witness.unwrap();
        let cx = e.counterexample.unwrap();
        assert!(w.contains(&"R(b)".to_string()));
        assert!(!cx.contains(&"R(b)".to_string()));
        // Both are genuine worlds: R(a) holds in each.
        assert!(w.contains(&"R(a)".to_string()));
        assert!(cx.contains(&"R(a)".to_string()));
    }

    #[test]
    fn impossible_wff() {
        let (t, a, _, _) = sample();
        let e = explain(&t, &a.not()).unwrap();
        assert_eq!(e.verdict, Verdict::Impossible);
        assert!(e.witness.is_none());
        assert!(e.counterexample.is_some());
    }

    #[test]
    fn inconsistent_theory() {
        let (mut t, a, _, _) = sample();
        t.assert_wff(&a.clone().not());
        let e = explain(&t, &a).unwrap();
        assert_eq!(e.verdict, Verdict::Inconsistent);
        assert!(e.describe().contains("INCONSISTENT"));
    }

    #[test]
    fn compound_wff() {
        let (t, _, b, c) = sample();
        // b ∨ c is certain (it was loaded); b ∧ c is uncertain.
        let e = explain(&t, &Formula::Or(vec![b.clone(), c.clone()])).unwrap();
        assert_eq!(e.verdict, Verdict::Certain);
        let e = explain(&t, &Formula::And(vec![b, c])).unwrap();
        assert_eq!(e.verdict, Verdict::Uncertain);
    }
}
