//! Workload generators for the experiments in EXPERIMENTS.md.
//!
//! Every experiment needs (a) a theory at a controllable size `R` (the
//! §3.6 cost-model parameter: registered atoms of the largest predicate)
//! and (b) updates at a controllable size `g` (atom occurrences in the
//! update). The generators here are deterministic given a seed, so the
//! harness output is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use winslett_ldml::Update;
use winslett_logic::{AtomId, Formula, Wff};
use winslett_theory::{Dependency, Theory};

/// A seeded workload generator.
pub struct Workload {
    rng: StdRng,
}

impl Workload {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Workload {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Builds the paper's order database at scale: `Orders(OrderNo,
    /// PartNo, Quan)` with `r` certain tuples (so the cost-model `R` is
    /// `r`), plus an `InStock(PartNo, Quan)` side relation. Returns the
    /// theory and the Orders atoms.
    pub fn orders_theory(&mut self, r: usize) -> (Theory, Vec<AtomId>) {
        let mut t = Theory::new();
        let orders = t.declare_relation("Orders", 3).expect("fresh schema");
        let instock = t.declare_relation("InStock", 2).expect("fresh schema");
        let mut atoms = Vec::with_capacity(r);
        for i in 0..r {
            let order_no = t.constant(&format!("{}", 100 + i));
            let part_no = t.constant(&format!("{}", 32 + (i % 64)));
            let quan = t.constant(&format!("{}", 1 + (i % 19)));
            let a = t.atom(orders, &[order_no, part_no, quan]);
            t.assert_atom(a);
            atoms.push(a);
        }
        for p in 0..16.min(r.max(1)) {
            let part_no = t.constant(&format!("{}", 32 + p));
            let quan = t.constant(&format!("{}", 1 + (p % 19)));
            let a = t.atom(instock, &[part_no, quan]);
            t.assert_atom(a);
        }
        (t, atoms)
    }

    /// A fresh Orders atom not yet in the theory (forces Step 1 work).
    pub fn fresh_orders_atom(&mut self, theory: &mut Theory, tag: usize) -> AtomId {
        let orders = theory
            .vocab
            .find_predicate("Orders")
            .expect("orders schema");
        let order_no = theory.constant(&format!("n{}", tag));
        let part_no = theory.constant(&format!("{}", 32 + (tag % 64)));
        let quan = theory.constant(&format!("{}", 1 + (tag % 19)));
        theory.atom(orders, &[order_no, part_no, quan])
    }

    /// An update with exactly `g` atom occurrences in ω (φ = T):
    /// a conjunction of fresh and existing literals — non-branching, the
    /// common case for E3/E4 scaling.
    pub fn conjunctive_insert(
        &mut self,
        theory: &mut Theory,
        existing: &[AtomId],
        g: usize,
        tag: usize,
    ) -> Update {
        let mut parts = Vec::with_capacity(g);
        let mut used = rustc_hash::FxHashSet::default();
        for k in 0..g {
            let mut atom = if k % 2 == 0 || existing.is_empty() {
                self.fresh_orders_atom(theory, tag * 4096 + k)
            } else {
                existing[self.rng.gen_range(0..existing.len())]
            };
            // Distinct atoms only: repeating an atom with opposite polarity
            // would make ω unsatisfiable and wipe the database — a legal
            // update, but not the workload E3/E4/E8 intend to measure.
            if !used.insert(atom) {
                atom = self.fresh_orders_atom(theory, tag * 4096 + 2048 + k);
                used.insert(atom);
            }
            let lit = Wff::Atom(atom);
            parts.push(if self.rng.gen_bool(0.3) {
                lit.not()
            } else {
                lit
            });
        }
        Update::Insert {
            omega: if parts.len() == 1 {
                parts.pop().expect("len checked")
            } else {
                Formula::And(parts)
            },
            phi: Wff::t(),
        }
    }

    /// A branching update: ω is a disjunction of `width` fresh atoms.
    pub fn disjunctive_insert(&mut self, theory: &mut Theory, width: usize, tag: usize) -> Update {
        let parts: Vec<Wff> = (0..width)
            .map(|k| Wff::Atom(self.fresh_orders_atom(theory, tag * 4096 + 2048 + k)))
            .collect();
        Update::Insert {
            omega: if parts.len() == 1 {
                parts.into_iter().next().expect("width ≥ 1")
            } else {
                Formula::Or(parts)
            },
            phi: Wff::t(),
        }
    }

    /// An `ASSERT` that pins one of the named atoms true — used to resolve
    /// incompleteness in E6 mixes.
    pub fn resolving_assert(&mut self, candidates: &[AtomId]) -> Option<Update> {
        if candidates.is_empty() {
            return None;
        }
        let a = candidates[self.rng.gen_range(0..candidates.len())];
        Some(Update::assert(Wff::Atom(a)))
    }

    /// E5 worst case: a relation with an FD on column 0 where **every**
    /// tuple shares the key — each inserted tuple conflicts with all `r`
    /// existing tuples, so Step 6 instantiates Θ(r) dependency instances.
    pub fn fd_theory_worst(&mut self, r: usize) -> (Theory, Vec<AtomId>) {
        let mut t = Theory::new();
        let p = t.declare_relation("P", 2).expect("fresh schema");
        t.add_dependency(Dependency::functional("fd", p, 2, &[0]).expect("valid fd"));
        let key = t.constant("shared");
        let mut atoms = Vec::with_capacity(r);
        // Registered but *false* conflicting tuples: the theory stays
        // consistent while the matcher still sees all r tuples.
        for i in 0..r {
            let v = t.constant(&format!("v{i}"));
            let a = t.atom(p, &[key, v]);
            if i == 0 {
                t.assert_atom(a);
            } else {
                t.assert_not_atom(a);
            }
            atoms.push(a);
        }
        (t, atoms)
    }

    /// E5 best case: same size, but every tuple has a unique key — an
    /// inserted tuple with a fresh key conflicts with nothing.
    pub fn fd_theory_best(&mut self, r: usize) -> (Theory, Vec<AtomId>) {
        let mut t = Theory::new();
        let p = t.declare_relation("P", 2).expect("fresh schema");
        t.add_dependency(Dependency::functional("fd", p, 2, &[0]).expect("valid fd"));
        let mut atoms = Vec::with_capacity(r);
        for i in 0..r {
            let k = t.constant(&format!("k{i}"));
            let v = t.constant(&format!("v{i}"));
            let a = t.atom(p, &[k, v]);
            t.assert_atom(a);
            atoms.push(a);
        }
        (t, atoms)
    }

    /// The FD-workload update: insert a tuple whose key matches the shared
    /// key (worst) or is fresh (best).
    pub fn fd_insert(&mut self, theory: &mut Theory, shared_key: bool, tag: usize) -> Update {
        let p = theory.vocab.find_predicate("P").expect("fd schema");
        let key = if shared_key {
            theory.constant("shared")
        } else {
            theory.constant(&format!("fresh{tag}"))
        };
        let v = theory.constant(&format!("w{tag}"));
        let a = theory.atom(p, &[key, v]);
        Update::insert(Wff::Atom(a), Wff::t())
    }

    /// Returns a uniformly random element.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.rng.gen_range(0..xs.len())]
    }

    /// A random boolean with the given probability of `true`.
    pub fn flip(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_gua::{GuaEngine, GuaOptions, SimplifyLevel};
    use winslett_logic::ModelLimit;

    #[test]
    fn orders_theory_has_r_tuples() {
        let mut w = Workload::new(7);
        let (t, atoms) = w.orders_theory(50);
        assert_eq!(atoms.len(), 50);
        assert_eq!(t.registry.max_predicate_size(), 50);
        assert!(t.is_consistent());
    }

    #[test]
    fn generators_are_deterministic() {
        let build = || {
            let mut w = Workload::new(42);
            let (mut t, atoms) = w.orders_theory(10);
            let u = w.conjunctive_insert(&mut t, &atoms, 4, 0);
            format!("{u:?}")
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn conjunctive_insert_has_g_occurrences() {
        let mut w = Workload::new(3);
        let (mut t, atoms) = w.orders_theory(10);
        for g in [1, 2, 8, 16] {
            let u = w.conjunctive_insert(&mut t, &atoms, g, g);
            let form = u.to_insert();
            assert_eq!(form.omega.num_atom_occurrences(), g);
        }
    }

    #[test]
    fn disjunctive_insert_branches() {
        let mut w = Workload::new(4);
        let (mut t, _) = w.orders_theory(4);
        let u = w.disjunctive_insert(&mut t, 3, 0);
        assert!(u.to_insert().may_branch());
        let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::Fast));
        engine.apply(&u).unwrap();
        let worlds = engine
            .theory
            .alternative_worlds(ModelLimit::default())
            .unwrap();
        assert_eq!(worlds.len(), 7); // nonempty subsets of 3 atoms
    }

    #[test]
    fn fd_worst_case_generates_conflicts() {
        let mut w = Workload::new(5);
        let (mut t, _) = w.fd_theory_worst(20);
        assert!(t.is_consistent());
        let u = w.fd_insert(&mut t, true, 0);
        let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::None));
        let report = engine.apply(&u).unwrap();
        // The inserted tuple joins with every registered same-key tuple.
        assert!(report.dep_instances >= 20, "got {}", report.dep_instances);
    }

    #[test]
    fn fd_best_case_generates_no_conflicts() {
        let mut w = Workload::new(5);
        let (mut t, _) = w.fd_theory_best(20);
        let u = w.fd_insert(&mut t, false, 0);
        let mut engine = GuaEngine::new(t, GuaOptions::simplify_always(SimplifyLevel::None));
        let report = engine.apply(&u).unwrap();
        assert_eq!(report.dep_instances, 0);
    }
}
