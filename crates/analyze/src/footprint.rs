//! Footprint and commutativity analysis: the conflict graph of a script.
//!
//! For every statement the pass computes an [`AccessSet`] footprint from
//! its §3.2 INSERT form (reads = atoms(φ), writes = atoms(ω); see
//! `winslett_ldml::footprint`), widened against the theory's §3.5 axioms:
//! a write into a predicate constrained by a type axiom or template
//! dependency is conservatively treated as world-pruning, because rule 3
//! filtering couples atoms *across* predicates (with an FD of key 0,
//! `DELETE Orders(700,32)` and `INSERT Orders(700,33)` do not commute even
//! though their atom sets are disjoint).
//!
//! Pairs whose footprints are not syntactically independent are
//! **escalated** (under a per-pair atom budget) to an exact commutativity
//! decision: Theorem-4 equivalence implies trivial commutation, and
//! otherwise `commutes_brute` composes both orders over the joint atom set
//! through the model-level semantics. Escalation is skipped for
//! axiom-constrained statements, where the per-model argument is unsound.
//!
//! The result is a [`ConflictAnalysis`]: the pairwise conflict edges, the
//! degree of each statement, maximal provably-commutative blocks, and the
//! `W007`–`W010` diagnostics. [`ConflictAnalyzer`] packages the same
//! footprint computation as a stateful handle over raw statement text for
//! the server's write scheduler (`winslett-serve` coalesces runs of
//! pairwise-independent queued writes into one group-commit batch).

use crate::diagnostics::{Code, Diagnostic, FixHint};
use crate::passes::{universe, MAX_EQUIV_ATOMS};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use winslett_ldml::{
    commutes_brute, equivalent_updates_with, parse_update, update_footprint, Update,
};
use winslett_logic::{
    display_wff, AccessSet, AtomId, AtomTable, EntailmentSession, ParseContext, PredId, Vocabulary,
    Wff,
};
use winslett_theory::{HeadFormula, Theory};

/// Tuning knobs for [`analyze_conflicts`].
#[derive(Clone, Debug)]
pub struct ConflictOptions {
    /// Escalate syntactic conflicts to an exact commutativity decision
    /// (Theorem-4 equivalence, then brute-force composition over the joint
    /// atom set).
    pub escalate: bool,
    /// Per-pair budget: joint atom sets larger than this are not escalated
    /// (the pair stays a conflict, conservatively).
    pub max_pair_atoms: usize,
    /// `W009` fires on statements conflicting with more than this many
    /// others.
    pub hazard_threshold: usize,
}

impl Default for ConflictOptions {
    fn default() -> Self {
        ConflictOptions {
            escalate: true,
            max_pair_atoms: 12,
            hazard_threshold: 4,
        }
    }
}

/// One statement's footprint, as the conflict pass sees it.
#[derive(Clone, Debug)]
pub struct StatementFootprint {
    /// The (possibly widened) access set.
    pub access: AccessSet,
    /// Whether the raw footprint was widened because the statement writes
    /// into a predicate constrained by a type axiom or dependency.
    pub constrained: bool,
}

/// A conflicting pair `(a, b)` with `a < b`.
#[derive(Clone, Debug)]
pub struct ConflictEdge {
    /// Earlier statement (program index).
    pub a: usize,
    /// Later statement (program index).
    pub b: usize,
    /// Atoms witnessing the syntactic conflict (empty when the conflict is
    /// pruning- or axiom-induced).
    pub shared: Vec<AtomId>,
    /// Whether either endpoint may prune worlds.
    pub pruning: bool,
    /// Escalation verdict: `Some(true)` — proven commutative (the edge is
    /// harmless for reordering), `Some(false)` — proven order-sensitive,
    /// `None` — not decided (escalation off, budget exceeded, or
    /// axiom-constrained).
    pub commutes: Option<bool>,
    /// How the verdict was reached, for reports.
    pub reason: String,
}

/// The conflict graph of an update program.
#[derive(Clone, Debug)]
pub struct ConflictAnalysis {
    /// Per-statement footprints, in program order.
    pub footprints: Vec<StatementFootprint>,
    /// All syntactically-conflicting pairs, `a < b`, lexicographic.
    pub edges: Vec<ConflictEdge>,
    /// Non-adjacent subsumptions `(earlier, later, reason)` for `W008`.
    pub subsumed: Vec<(usize, usize, String)>,
    /// The options the analysis ran with.
    pub options: ConflictOptions,
}

impl ConflictAnalysis {
    /// Number of statements analyzed.
    pub fn len(&self) -> usize {
        self.footprints.len()
    }

    /// Whether the program was empty.
    pub fn is_empty(&self) -> bool {
        self.footprints.is_empty()
    }

    /// The edge between `i` and `j`, if they conflict syntactically.
    pub fn edge(&self, i: usize, j: usize) -> Option<&ConflictEdge> {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.edges.iter().find(|e| e.a == a && e.b == b)
    }

    /// Whether `i` and `j` are known to commute: either syntactically
    /// independent or escalated to a commutativity proof.
    pub fn independent(&self, i: usize, j: usize) -> bool {
        i == j
            || match self.edge(i, j) {
                None => true,
                Some(e) => e.commutes == Some(true),
            }
    }

    /// Number of statements `i` is order-sensitive against (conflicting
    /// edges not proven commutative).
    pub fn degree(&self, i: usize) -> usize {
        self.edges
            .iter()
            .filter(|e| (e.a == i || e.b == i) && e.commutes != Some(true))
            .count()
    }

    /// Maximal runs `(start, end)` (inclusive) of ≥ 2 consecutive
    /// statements that pairwise commute — safe to batch or reorder. Runs
    /// are greedy and disjoint.
    pub fn blocks(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && (i..=j).all(|k| self.independent(k, j + 1)) {
                j += 1;
            }
            if j > i {
                out.push((i, j));
            }
            i = j + 1;
        }
        out
    }

    /// The `W007`–`W010` diagnostics of this graph. `index_map` translates
    /// program indices to display indices (scripts pass their
    /// statement-line map; library callers pass `None` for identity);
    /// both `Diagnostic::statement` and in-message statement references use
    /// the mapped numbering.
    pub fn diagnostics(&self, index_map: Option<&[usize]>) -> Vec<Diagnostic> {
        let disp = |i: usize| index_map.map_or(i, |m| m[i]);
        let mut out = Vec::new();

        // W007: adjacent order-sensitive pairs — the reorderings a write
        // scheduler (or an editor) would actually consider.
        for e in &self.edges {
            if e.b != e.a + 1 || e.commutes == Some(true) {
                continue;
            }
            let proof = match e.commutes {
                Some(false) => "order-sensitivity is proven by composing both orders",
                _ => "commutation could not be proven under the analysis budget",
            };
            out.push(
                Diagnostic::new(
                    Code::W007,
                    disp(e.b),
                    format!(
                        "statements {} and {} conflict ({}); {proof}: swapping them may \
                         change the resulting theory",
                        disp(e.a),
                        disp(e.b),
                        e.reason
                    ),
                )
                .with_fix(FixHint::advice(
                    "keep order-sensitive statements in their intended order; only \
                     provably-commutative neighbours are safe to swap or batch",
                )),
            );
        }

        // W008: non-adjacent subsumption (the completion of W004).
        for (i, j, reason) in &self.subsumed {
            out.push(
                Diagnostic::new(
                    Code::W008,
                    disp(*j),
                    format!(
                        "this statement repeats statement {} ({reason}) and every statement \
                         in between commutes with it, so it can be moved back adjacent and \
                         collapsed by idempotence — the repetition has no effect",
                        disp(*i)
                    ),
                )
                .with_fix(FixHint::delete_statement("delete the duplicate statement")),
            );
        }

        // W009: serialization hazards.
        for i in 0..self.len() {
            let d = self.degree(i);
            if d > self.options.hazard_threshold {
                out.push(
                    Diagnostic::new(
                        Code::W009,
                        disp(i),
                        format!(
                            "this statement is order-sensitive against {d} other statement(s) \
                             (threshold {}): it serializes most of the script and will be a \
                             lock-contention hotspot under concurrent writers",
                            self.options.hazard_threshold
                        ),
                    )
                    .with_fix(FixHint::advice(
                        "narrow ω/φ to fewer atoms, or split the statement so each piece \
                         touches one region",
                    )),
                );
            }
        }

        // W010: provably-commutative blocks.
        for (s, e) in self.blocks() {
            out.push(
                Diagnostic::new(
                    Code::W010,
                    disp(s),
                    format!(
                        "statements {}..={} pairwise commute: the block is safe to batch \
                         into one group commit or reorder freely",
                        disp(s),
                        disp(e)
                    ),
                )
                .with_fix(FixHint::advice(
                    "a batching executor may apply this block with a single fsync and \
                     snapshot publication",
                )),
            );
        }
        out
    }

    /// Human-readable conflict report (the `ldml-lint --conflicts` body).
    pub fn render_report(&self, theory: &Theory, index_map: Option<&[usize]>) -> String {
        let disp = |i: usize| index_map.map_or(i, |m| m[i]);
        let atom = |a: AtomId| display_wff(&Wff::Atom(a), &theory.vocab, &theory.atoms).to_string();
        let set = |s: &BTreeSet<AtomId>| {
            if s.is_empty() {
                "∅".to_string()
            } else {
                s.iter().map(|&a| atom(a)).collect::<Vec<_>>().join(", ")
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "conflict analysis: {} statement(s), {} conflicting pair(s)",
            self.len(),
            self.edges.len()
        );
        for (i, fp) in self.footprints.iter().enumerate() {
            let mut tags = Vec::new();
            if fp.access.is_noop() {
                tags.push("no-op");
            }
            if fp.access.prunes {
                tags.push("prunes-worlds");
            }
            if fp.constrained {
                tags.push("axiom-constrained");
            }
            let tags = if tags.is_empty() {
                String::new()
            } else {
                format!("  [{}]", tags.join(", "))
            };
            let _ = writeln!(
                out,
                "  statement {}: reads {{{}}} writes {{{}}}{tags}",
                disp(i),
                set(&fp.access.reads),
                set(&fp.access.writes)
            );
        }
        for e in &self.edges {
            let verdict = match e.commutes {
                Some(true) => "commutes (proven)",
                Some(false) => "order-sensitive (proven)",
                None => "order-sensitive (assumed)",
            };
            let shared = if e.shared.is_empty() {
                String::new()
            } else {
                format!(
                    " on {{{}}}",
                    e.shared
                        .iter()
                        .map(|&a| atom(a))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            let _ = writeln!(
                out,
                "  {} ↔ {}: {verdict}{shared} — {}",
                disp(e.a),
                disp(e.b),
                e.reason
            );
        }
        for (s, e) in self.blocks() {
            let _ = writeln!(
                out,
                "  commutative block: statements {}..={}",
                disp(s),
                disp(e)
            );
        }
        out
    }

    /// Graphviz rendering of the conflict graph (`--conflicts-dot`): solid
    /// red edges are order-sensitive pairs, dashed green edges are
    /// escalated-and-proven-commutative pairs; independent pairs have no
    /// edge.
    pub fn to_dot(&self, index_map: Option<&[usize]>) -> String {
        let disp = |i: usize| index_map.map_or(i, |m| m[i]);
        let mut out = String::from("graph conflicts {\n  node [shape=box];\n");
        for i in 0..self.len() {
            let fp = &self.footprints[i];
            let style = if fp.access.prunes {
                " style=filled fillcolor=mistyrose"
            } else {
                ""
            };
            let _ = writeln!(out, "  s{} [label=\"statement {}\"{style}];", i, disp(i));
        }
        for e in &self.edges {
            let attrs = if e.commutes == Some(true) {
                "color=darkgreen style=dashed label=\"commutes\""
            } else {
                "color=red"
            };
            let _ = writeln!(out, "  s{} -- s{} [{attrs}];", e.a, e.b);
        }
        out.push_str("}\n");
        out
    }
}

/// Predicates coupled by the theory's §3.5 axioms: typed relations with
/// their attribute predicates, and every predicate mentioned in a
/// dependency body or head.
pub fn constrained_predicates(theory: &Theory) -> BTreeSet<PredId> {
    let mut out = BTreeSet::new();
    for (rel, attrs) in theory.schema.type_axioms() {
        out.insert(rel);
        out.extend(attrs.iter().copied());
    }
    for dep in &theory.deps {
        for pat in &dep.body {
            out.insert(pat.pred);
        }
        head_preds(&dep.head, &mut out);
    }
    out
}

fn head_preds(h: &HeadFormula, out: &mut BTreeSet<PredId>) {
    match h {
        HeadFormula::Truth(_) | HeadFormula::Eq(_, _) => {}
        HeadFormula::Atom(p) => {
            out.insert(p.pred);
        }
        HeadFormula::Not(x) => head_preds(x, out),
        HeadFormula::And(xs) | HeadFormula::Or(xs) => {
            for x in xs {
                head_preds(x, out);
            }
        }
    }
}

/// The footprint of one statement against `theory`, widened for axiom
/// coupling: a write into a constrained predicate is treated as pruning
/// (rule 3 can delete worlds based on atoms the statement never mentions).
pub fn statement_footprint(
    theory: &Theory,
    constrained: &BTreeSet<PredId>,
    u: &Update,
) -> StatementFootprint {
    let access = update_footprint(u);
    let hits_axioms = access
        .writes
        .iter()
        .any(|&a| constrained.contains(&theory.atoms.resolve(a).pred));
    let access = if hits_axioms {
        access.with_prunes(true)
    } else {
        access
    };
    StatementFootprint {
        access,
        constrained: hits_axioms,
    }
}

/// Builds the conflict graph of `program` against `theory`.
///
/// Two statements are independent iff each one's write set is disjoint
/// from the other's read∪write set (with the pruning/axiom widenings
/// above); conflicting pairs are escalated per `options`. The analysis is
/// static — no update is applied.
pub fn analyze_conflicts(
    theory: &Theory,
    program: &[Update],
    options: &ConflictOptions,
) -> ConflictAnalysis {
    let constrained = constrained_predicates(theory);
    let footprints: Vec<StatementFootprint> = program
        .iter()
        .map(|u| statement_footprint(theory, &constrained, u))
        .collect();

    // One entailment session serves every Theorem-4 escalation, exactly as
    // in `analyze_program`.
    let max_universe = program
        .iter()
        .map(|u| universe(theory, &u.to_insert()))
        .fold(theory.num_atoms(), usize::max);
    let mut session = EntailmentSession::new(max_universe);

    let joint_atoms = |a: &Update, b: &Update| -> usize {
        let mut s: BTreeSet<AtomId> = BTreeSet::new();
        for u in [a, b] {
            let f = u.to_insert();
            s.extend(f.omega.atom_set());
            s.extend(f.phi.atom_set());
        }
        s.len()
    };

    let mut edges = Vec::new();
    for i in 0..program.len() {
        for j in (i + 1)..program.len() {
            let (fi, fj) = (&footprints[i], &footprints[j]);
            if fi.access.independent(&fj.access) {
                continue;
            }
            let shared = fi.access.conflict_witness(&fj.access).unwrap_or_default();
            let pruning = fi.access.prunes || fj.access.prunes;
            let mut commutes = None;
            let mut reason = if fi.constrained || fj.constrained {
                "write into an axiom-constrained predicate: rule 3 filtering may couple \
                 the pair through atoms outside both footprints"
                    .to_string()
            } else if pruning {
                "a world-pruning statement conflicts with every effectful statement".to_string()
            } else {
                "overlapping footprints".to_string()
            };
            let escalatable = options.escalate && !fi.constrained && !fj.constrained;
            if escalatable && joint_atoms(&program[i], &program[j]) <= options.max_pair_atoms {
                if let Ok(v) = equivalent_updates_with(&mut session, &program[i], &program[j]) {
                    if v.equivalent {
                        commutes = Some(true);
                        reason = format!("equivalent updates commute trivially ({})", v.reason);
                    }
                }
                if commutes.is_none() {
                    if let Ok(c) = commutes_brute(&program[i], &program[j], options.max_pair_atoms)
                    {
                        commutes = Some(c);
                        reason = if c {
                            "both application orders produce the same world set on every \
                             model (exact composition over the joint atoms)"
                                .to_string()
                        } else {
                            "the two application orders produce different world sets on \
                             some model"
                                .to_string()
                        };
                    }
                }
            }
            edges.push(ConflictEdge {
                a: i,
                b: j,
                shared,
                pruning,
                commutes,
                reason,
            });
        }
    }

    let analysis = ConflictAnalysis {
        footprints,
        edges,
        subsumed: Vec::new(),
        options: options.clone(),
    };

    // W008: a statement Theorem-4 equivalent to its *nearest* equivalent
    // predecessor, with every intervening statement commuting with it, is
    // subsumed (commute the repeat back through the independent middle,
    // then apply single-update idempotence). The adjacent case is W004's.
    let mut subsumed = Vec::new();
    for j in 1..program.len() {
        let fj = program[j].to_insert();
        let mut j_atoms = fj.omega.atom_set();
        j_atoms.extend(fj.phi.atom_set());
        for i in (0..j).rev() {
            let equivalent = if joint_atoms(&program[i], &program[j]) <= MAX_EQUIV_ATOMS
                && j_atoms.len() <= MAX_EQUIV_ATOMS
            {
                match equivalent_updates_with(&mut session, &program[i], &program[j]) {
                    Ok(v) if v.equivalent => Some(v.reason),
                    _ => None,
                }
            } else if program[i] == program[j] {
                Some("syntactically identical".to_string())
            } else {
                None
            };
            let Some(reason) = equivalent else { continue };
            // Nearest equivalent predecessor decides: adjacent is W004's
            // case, non-adjacent needs the middle to commute with j.
            if i + 1 != j && ((i + 1)..j).all(|k| analysis.independent(k, j)) {
                subsumed.push((i, j, reason));
            }
            break;
        }
    }

    ConflictAnalysis {
        subsumed,
        ..analysis
    }
}

/// A stateful footprint extractor over raw LDML statement text, for
/// runtime consumers (the `winslett-serve` write scheduler).
///
/// The handle owns a private [`Vocabulary`] and [`AtomTable`]; parsing
/// interns symbols into them with `declare: true`, so atom identities are
/// consistent *across* calls on the same handle and footprint disjointness
/// is meaningful for any batch of statements it has seen.
///
/// ```
/// use winslett_analyze::ConflictAnalyzer;
///
/// let mut cx = ConflictAnalyzer::new();
/// let a = cx.footprint("INSERT InStock(p3) WHERE T").unwrap();
/// let b = cx.footprint("INSERT InStock(p7) WHERE T").unwrap();
/// let c = cx.footprint("DELETE InStock(p3) WHERE T").unwrap();
/// assert!(a.independent(&b)); // constant-argument refinement
/// assert!(!a.independent(&c));
/// assert!(cx.footprint("not ldml at all").is_none()); // barrier
/// ```
#[derive(Default)]
pub struct ConflictAnalyzer {
    vocab: Vocabulary,
    atoms: AtomTable,
}

impl ConflictAnalyzer {
    /// A fresh handle with an empty private vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses `src` and returns its footprint, or `None` when the
    /// statement cannot be parsed — callers must treat `None` as a
    /// barrier that conflicts with everything.
    ///
    /// The private vocabulary carries no §3.5 axioms, so this footprint is
    /// the raw L′ one; it is the right tool for *grouping* consecutive
    /// writes (apply order preserved), not for reordering statements
    /// against a theory with dependencies.
    pub fn footprint(&mut self, src: &str) -> Option<AccessSet> {
        let mut ctx = ParseContext {
            vocab: &mut self.vocab,
            atoms: &mut self.atoms,
            declare: true,
            allow_predicate_constants: false,
        };
        let update = parse_update(src, &mut ctx).ok()?;
        Some(update_footprint(&update))
    }

    /// The lock profile of `src`: canonical renderings of the atoms the
    /// statement reads and writes, suitable as lock keys for a lock table
    /// keyed by strings. Atom renderings are stable across handles (they
    /// come from the statement text itself), so two analyzers produce the
    /// same keys for the same atom — unlike raw [`AtomId`]s, which are
    /// per-handle interning artifacts.
    ///
    /// World-pruning statements (`ASSERT`/`DENY`, or anything unparseable)
    /// escalate to the global key: rule 3 filtering can couple them to
    /// atoms outside their syntactic footprint, so no finer lock is sound.
    pub fn lock_profile(&mut self, src: &str) -> LockProfile {
        let Some(access) = self.footprint(src) else {
            return LockProfile::global();
        };
        if access.prunes {
            return LockProfile::global();
        }
        let render = |set: &BTreeSet<AtomId>| {
            set.iter()
                .map(|&a| display_wff(&Wff::Atom(a), &self.vocab, &self.atoms).to_string())
                .collect()
        };
        LockProfile {
            reads: render(&access.reads),
            writes: render(&access.writes),
            global: false,
        }
    }
}

/// The lock keys of one statement, as string renderings of its footprint
/// atoms (see [`ConflictAnalyzer::lock_profile`]). `global` statements
/// conflict with everything and must take the table's global key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockProfile {
    /// Atoms the guard reads — shared locks.
    pub reads: Vec<String>,
    /// Atoms the update writes — exclusive locks.
    pub writes: Vec<String>,
    /// Whether the statement escalates to the global lock key.
    pub global: bool,
}

impl LockProfile {
    /// The profile of a statement that conflicts with everything.
    pub fn global() -> Self {
        LockProfile {
            reads: Vec::new(),
            writes: Vec::new(),
            global: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_theory::Dependency;

    fn setup() -> (Theory, Vec<AtomId>) {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let atoms = ["a", "b", "c", "d"]
            .iter()
            .map(|n| {
                let c = t.constant(n);
                t.atom(r, &[c])
            })
            .collect();
        (t, atoms)
    }

    fn w(a: AtomId) -> Wff {
        Wff::Atom(a)
    }

    #[test]
    fn disjoint_statements_have_no_edges() {
        let (t, a) = setup();
        let program = vec![
            Update::insert(w(a[0]), Wff::t()),
            Update::insert(w(a[1]), Wff::t()),
            Update::insert(w(a[2]), Wff::t()),
        ];
        let an = analyze_conflicts(&t, &program, &ConflictOptions::default());
        assert!(an.edges.is_empty());
        assert_eq!(an.blocks(), vec![(0, 2)]);
        let codes: Vec<Code> = an.diagnostics(None).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::W010]);
    }

    #[test]
    fn write_read_conflict_is_order_sensitive() {
        let (t, a) = setup();
        // s0 writes R(a); s1's guard reads R(a): proven order-sensitive.
        let program = vec![
            Update::insert(w(a[0]), Wff::t()),
            Update::insert(w(a[1]), w(a[0])),
        ];
        let an = analyze_conflicts(&t, &program, &ConflictOptions::default());
        assert_eq!(an.edges.len(), 1);
        assert_eq!(an.edges[0].commutes, Some(false));
        assert!(!an.independent(0, 1));
        let codes: Vec<Code> = an.diagnostics(None).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::W007]);
    }

    #[test]
    fn escalation_proves_commutation_of_syntactic_conflicts() {
        let (t, a) = setup();
        // Both insert R(a): write-write overlap, but identical updates
        // commute trivially (Theorem 4 equivalence)... and form a W004
        // pair, which the conflict pass leaves to analyze_program.
        let program = vec![
            Update::insert(w(a[0]), Wff::t()),
            Update::insert(w(a[0]), Wff::t()),
        ];
        let an = analyze_conflicts(&t, &program, &ConflictOptions::default());
        assert_eq!(an.edges.len(), 1);
        assert_eq!(an.edges[0].commutes, Some(true));
        assert!(an.independent(0, 1));
        // The proven pair forms a commutative block.
        let codes: Vec<Code> = an.diagnostics(None).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::W010]);
        // With escalation off the same pair is an assumed conflict.
        let off = ConflictOptions {
            escalate: false,
            ..ConflictOptions::default()
        };
        let an = analyze_conflicts(&t, &program, &off);
        assert_eq!(an.edges[0].commutes, None);
        let codes: Vec<Code> = an.diagnostics(None).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::W007]);
    }

    #[test]
    fn w008_nonadjacent_duplicate() {
        let (t, a) = setup();
        // s0 and s2 identical, s1 independent of both.
        let program = vec![
            Update::insert(w(a[0]), Wff::t()),
            Update::insert(w(a[1]), Wff::t()),
            Update::insert(w(a[0]), Wff::t()),
        ];
        let an = analyze_conflicts(&t, &program, &ConflictOptions::default());
        assert_eq!(an.subsumed.len(), 1);
        assert_eq!((an.subsumed[0].0, an.subsumed[0].1), (0, 2));
        let codes: Vec<Code> = an.diagnostics(None).iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::W008), "{codes:?}");
        // A conflicting intermediate blocks the subsumption.
        let program = vec![
            Update::insert(w(a[0]), Wff::t()),
            Update::delete(a[0], Wff::t()),
            Update::insert(w(a[0]), Wff::t()),
        ];
        let an = analyze_conflicts(&t, &program, &ConflictOptions::default());
        assert!(an.subsumed.is_empty());
    }

    #[test]
    fn w009_hazard_degree() {
        let (t, a) = setup();
        // An ASSERT prunes worlds and conflicts with every effectful
        // statement around it.
        let mut program = vec![Update::assert(w(a[0]))];
        for &atom in a.iter().take(4) {
            program.push(Update::insert(w(atom), Wff::t()));
        }
        program.push(Update::delete(a[1], Wff::t()));
        let opts = ConflictOptions {
            escalate: false,
            hazard_threshold: 4,
            ..ConflictOptions::default()
        };
        let an = analyze_conflicts(&t, &program, &opts);
        assert!(an.degree(0) > 4, "degree {}", an.degree(0));
        let codes: Vec<Code> = an.diagnostics(None).iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::W009), "{codes:?}");
        // Escalation discharges the pairs whose writes miss the ASSERT's
        // guard atom: only INSERT a0 remains genuinely order-sensitive.
        let an = analyze_conflicts(&t, &program, &ConflictOptions::default());
        assert_eq!(an.degree(0), 1);
    }

    #[test]
    fn axiom_constrained_writes_are_conservative() {
        let mut t = Theory::new();
        let p = t.declare_relation("P", 2).unwrap();
        t.add_dependency(Dependency::functional("fd", p, 2, &[0]).unwrap());
        let ca = t.constant("a");
        let cb = t.constant("b");
        let cc = t.constant("c");
        let ab = t.atom(p, &[ca, cb]);
        let ac = t.atom(p, &[ca, cc]);
        // Disjoint atom sets — but the FD couples them through rule 3:
        // DELETE P(a,b) then INSERT P(a,c) differs from the reverse order.
        let program = vec![
            Update::delete(ab, Wff::t()),
            Update::insert(w(ac), Wff::t()),
        ];
        let an = analyze_conflicts(&t, &program, &ConflictOptions::default());
        assert!(an.footprints[0].constrained && an.footprints[1].constrained);
        assert_eq!(an.edges.len(), 1);
        assert_eq!(an.edges[0].commutes, None, "must not escalate");
        assert!(!an.independent(0, 1));
    }

    #[test]
    fn report_and_dot_render() {
        let (t, a) = setup();
        let program = vec![
            Update::insert(w(a[0]), Wff::t()),
            Update::insert(w(a[1]), w(a[0])),
            Update::insert(w(a[2]), Wff::t()),
        ];
        let an = analyze_conflicts(&t, &program, &ConflictOptions::default());
        let report = an.render_report(&t, None);
        assert!(
            report.contains("statement 0: reads {∅} writes {R(a)}"),
            "{report}"
        );
        assert!(report.contains("0 ↔ 1"), "{report}");
        let dot = an.to_dot(None);
        assert!(dot.starts_with("graph conflicts {"));
        assert!(dot.contains("s0 -- s1 [color=red]"), "{dot}");
        assert!(!dot.contains("s0 -- s2"), "{dot}");
    }

    #[test]
    fn index_map_remaps_statement_numbers() {
        let (t, a) = setup();
        let program = vec![
            Update::insert(w(a[0]), Wff::t()),
            Update::insert(w(a[1]), w(a[0])),
        ];
        let an = analyze_conflicts(&t, &program, &ConflictOptions::default());
        let map = vec![7, 9];
        let diags = an.diagnostics(Some(&map));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].statement, 9);
        assert!(
            diags[0].message.contains("statements 7 and 9"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn conflict_analyzer_handle_over_text() {
        let mut cx = ConflictAnalyzer::new();
        let a = cx.footprint("INSERT Stock(p3) WHERE T").unwrap();
        let b = cx.footprint("INSERT Stock(p7) WHERE T").unwrap();
        let c = cx.footprint("DELETE Stock(p3) WHERE Ord(p3)").unwrap();
        assert!(a.independent(&b));
        assert!(!a.independent(&c));
        assert!(b.independent(&c));
        assert!(cx.footprint(".relation R/1").is_none());
        assert!(cx.footprint("INSERT R(a WHERE T").is_none());
    }

    #[test]
    fn lock_profile_renders_stable_keys() {
        let mut cx = ConflictAnalyzer::new();
        let p = cx.lock_profile("INSERT Stock(p3) WHERE Ord(p3)");
        assert!(!p.global);
        assert_eq!(p.writes, vec!["Stock(p3)"]);
        assert_eq!(p.reads, vec!["Ord(p3)"]);
        // A second handle interns in a different order but renders the
        // same keys: the keys are text, not ids.
        let mut cy = ConflictAnalyzer::new();
        cy.lock_profile("INSERT Zzz(q) WHERE T");
        let q = cy.lock_profile("INSERT Stock(p3) WHERE Ord(p3)");
        assert_eq!(p, q);
        // Pruning statements and unparseable text escalate to global.
        assert!(cx.lock_profile("ASSERT Stock(p3)").global);
        assert!(cx.lock_profile("not ldml").global);
    }
}
