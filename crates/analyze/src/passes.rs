//! The four analysis passes.
//!
//! 1. **WHERE-clause satisfiability** (`W001`, `W002`, `W006`) — SAT checks
//!    on the selection clause of the §3.2 INSERT form.
//! 2. **No-op / redundancy detection** (`W003`, `W004`) — the decidable
//!    equivalence criteria of Theorems 3 and 4.
//! 3. **Schema and dependency conformance** (`E002`, `E003`, `E004`) —
//!    forced-literal analysis of ω joined against the §3.5 type and
//!    dependency axioms: finds statements for which *every* produced world
//!    is filtered by rule 3, annihilating the database.
//! 4. **§3.6 cost estimation** (`W005`) — warns when a statement's atoms
//!    occur in a large share of the non-axiomatic section, degrading the
//!    indexed `O(g log R)` bound toward a scan.
//!
//! All passes are *static*: they inspect the update program and the initial
//! theory, and never apply an update.

use crate::diagnostics::{Batch, Code, Diagnostic, FixHint};
use std::collections::BTreeMap;
use winslett_ldml::{equivalent_updates_with, theorem3_with, InsertForm, Update};
use winslett_logic::{display_wff, forced_literals, AtomId, EntailmentSession, Wff};
use winslett_theory::{Theory, TheoryStats};

/// Skip the Theorem 3/4 equivalence passes when an update mentions more
/// atoms than this: the theorems' valuation projections are exponential in
/// the atom count, and real LDML statements are tiny.
pub(crate) const MAX_EQUIV_ATOMS: usize = 14;

/// Pass 4 stays silent for theories smaller than this: scanning a handful
/// of formulas is never a hazard.
const MIN_SECTION_FOR_COST: usize = 8;

/// Statically analyzes `program` against `theory`, returning all findings
/// in statement order.
///
/// The statements are *not* applied: every check runs against the initial
/// theory, which is what a pre-execution analyzer can soundly see. Order
/// only matters to the duplicate-statement check (`W004`).
pub fn analyze_program(theory: &Theory, program: &[Update]) -> Vec<Diagnostic> {
    let mut scratch = theory.clone();
    let backbone = theory.atom_backbone().ok().flatten();
    let stats = theory.stats();
    let consistent = theory.is_consistent();
    // One formula-level entailment session, sized to cover every atom any
    // statement mentions, serves every pure-SAT check in the program:
    // each wff is Tseitin-encoded once and every check is an
    // assumption-solve, so learnt clauses accumulate across statements.
    let max_universe = program
        .iter()
        .map(|u| universe(theory, &u.to_insert()))
        .fold(theory.num_atoms(), usize::max);
    let mut session = EntailmentSession::new(max_universe);
    let mut out = Vec::new();
    for (i, u) in program.iter().enumerate() {
        let form = u.to_insert();
        let before = out.len();
        check_where_clause(theory, &mut session, consistent, i, u, &form, &mut out);
        // A statement already established as a guaranteed no-op needs no
        // further scrutiny.
        let noop = out[before..]
            .iter()
            .any(|d| matches!(d.code, Code::W001 | Code::W006));
        if noop {
            continue;
        }
        check_noop(theory, &mut session, i, u, &form, &mut out);
        check_conformance(
            theory,
            &mut session,
            &mut scratch,
            backbone.as_deref(),
            i,
            u,
            &form,
            &mut out,
        );
        check_cost(theory, &stats, i, u, &form, &mut out);
        if i > 0 {
            check_duplicate(&mut session, i, u, &program[i - 1], &mut out);
        }
    }
    out
}

/// [`analyze_program`] plus a [`Batch`] summary.
pub fn analyze_batch(theory: &Theory, program: &[Update]) -> Batch {
    Batch::new(program.len(), analyze_program(theory, program))
}

/// The SAT universe for checks involving `form`: the theory's atom count,
/// stretched to cover any atoms interned after the theory snapshot.
pub(crate) fn universe(theory: &Theory, form: &InsertForm) -> usize {
    let mut n = theory.num_atoms();
    for w in [&form.omega, &form.phi] {
        w.for_each_atom(&mut |a: &AtomId| n = n.max(a.index() + 1));
    }
    n
}

fn show(theory: &Theory, w: &Wff) -> String {
    display_wff(w, &theory.vocab, &theory.atoms).to_string()
}

fn op_name(u: &Update) -> &'static str {
    match u {
        Update::Insert { .. } => "INSERT",
        Update::Delete { .. } => "DELETE",
        Update::Modify { .. } => "MODIFY",
        Update::Assert { .. } => "ASSERT",
    }
}

/// Pass 1: `W001` (unsatisfiable condition), `W002` (tautological DELETE /
/// MODIFY guard), `W006` (condition dead under the current theory).
fn check_where_clause(
    theory: &Theory,
    session: &mut EntailmentSession,
    consistent: bool,
    statement: usize,
    u: &Update,
    form: &InsertForm,
    out: &mut Vec<Diagnostic>,
) {
    if !session.satisfiable(&form.phi) {
        let message = match u {
            Update::Insert { phi, .. } => format!(
                "this INSERT can never fire: its WHERE clause `{}` is unsatisfiable",
                show(theory, phi)
            ),
            Update::Delete { .. } | Update::Modify { .. } => format!(
                "this {} can never fire: its condition `{}` (φ conjoined with the target) \
                 is unsatisfiable",
                op_name(u),
                show(theory, &form.phi)
            ),
            Update::Assert { phi } => format!(
                "this ASSERT is vacuous: `{}` is valid, so every world already satisfies it",
                show(theory, phi)
            ),
        };
        out.push(Diagnostic::new(Code::W001, statement, message).with_fix(
            FixHint::delete_statement("the statement has no effect on any world; delete it"),
        ));
        return;
    }
    if let Update::Delete { phi, .. } | Update::Modify { phi, .. } = u {
        if session.valid(phi) {
            out.push(
                Diagnostic::new(
                    Code::W002,
                    statement,
                    format!(
                        "the WHERE clause of this {} is a tautology: `{} ∧ t` restricts \
                         nothing beyond the target itself, so the statement applies to \
                         every world containing the target",
                        op_name(u),
                        show(theory, phi)
                    ),
                )
                .with_fix(FixHint::advice(
                    "restrict φ if the operation should be conditional",
                )),
            );
        }
    }
    // Atoms the theory has never interned cannot be judged against its
    // models; skip the theory-relative check for them.
    if consistent
        && universe(theory, form) == theory.num_atoms()
        && !theory.consistent_with(&form.phi)
    {
        out.push(
            Diagnostic::new(
                Code::W006,
                statement,
                format!(
                    "no alternative world of the current theory satisfies `{}`: the {} is a \
                     no-op on this database (though not on every database)",
                    show(theory, &form.phi),
                    op_name(u)
                ),
            )
            .with_fix(FixHint::delete_statement(
                "the statement selects no world of this database; delete it",
            )),
        );
    }
}

/// Pass 2a: `W003` — already-true INSERT, via Theorem 3 against the
/// canonical no-op `INSERT T WHERE φ`.
fn check_noop(
    theory: &Theory,
    session: &mut EntailmentSession,
    statement: usize,
    u: &Update,
    form: &InsertForm,
    out: &mut Vec<Diagnostic>,
) {
    let Update::Insert { .. } = u else { return };
    if form.omega.atom_set().len() > MAX_EQUIV_ATOMS {
        return;
    }
    if let Ok(v) = theorem3_with(session, &form.omega, &Wff::t(), &form.phi) {
        if v.equivalent {
            out.push(
                Diagnostic::new(
                    Code::W003,
                    statement,
                    format!(
                        "every world satisfying `{}` already satisfies `{}`: the INSERT is \
                         equivalent to `INSERT T`, a no-op ({})",
                        show(theory, &form.phi),
                        show(theory, &form.omega),
                        v.reason
                    ),
                )
                .with_fix(FixHint::delete_statement(
                    "the inserted wff is already guaranteed by the selection; delete the statement",
                )),
            );
        }
    }
}

/// Pass 2b: `W004` — the statement repeats its predecessor. A single LDML
/// update is idempotent at the world level (a world already satisfying ω is
/// its own unique minimal ω-model), so the repeat adds nothing.
///
/// Deliberately *adjacent-only*: without footprints there is no cheap way
/// to know whether the statements in between interfere with the repeat.
/// The conflict pass closes that blind spot — [`crate::analyze_conflicts`]
/// reports a repeat separated by provably-independent intermediates as
/// `W008`, and leaves the adjacent case here so base-lint users keep
/// getting `W004` without opting into conflict analysis.
fn check_duplicate(
    session: &mut EntailmentSession,
    statement: usize,
    u: &Update,
    prev: &Update,
    out: &mut Vec<Diagnostic>,
) {
    let fu = u.to_insert();
    let fp = prev.to_insert();
    let mut atoms = fu.omega.atom_set();
    atoms.extend(fu.phi.atom_set());
    atoms.extend(fp.omega.atom_set());
    atoms.extend(fp.phi.atom_set());
    let verdict = if atoms.len() <= MAX_EQUIV_ATOMS {
        match equivalent_updates_with(session, prev, u) {
            Ok(v) if v.equivalent => Some(v.reason),
            _ => None,
        }
    } else if u == prev {
        Some("syntactically identical".to_string())
    } else {
        None
    };
    if let Some(reason) = verdict {
        out.push(
            Diagnostic::new(
                Code::W004,
                statement,
                format!(
                    "this statement repeats the previous one ({reason}); a single \
                     LDML update is idempotent, so the repetition has no further effect"
                ),
            )
            .with_fix(FixHint::delete_statement("delete the duplicate statement")),
        );
    }
}

/// Pass 3: `E002` (unsatisfiable ω), `E003` (certain type-axiom violation),
/// `E004` (certain dependency violation).
///
/// The key observation: every world produced by `INSERT ω WHERE φ` (a) is a
/// model of ω, hence satisfies every *forced literal* of ω, and (b) keeps
/// the old value of every atom ω does not mention — in particular the
/// theory's *certain* values persist. If an instantiated §3.5 axiom
/// evaluates to false under those determined values alone, rule 3 filters
/// every produced world: the statement annihilates the database.
#[allow(clippy::too_many_arguments)]
fn check_conformance(
    theory: &Theory,
    session: &mut EntailmentSession,
    scratch: &mut Theory,
    backbone: Option<&[Option<bool>]>,
    statement: usize,
    u: &Update,
    form: &InsertForm,
    out: &mut Vec<Diagnostic>,
) {
    if matches!(u, Update::Insert { .. } | Update::Modify { .. })
        && !session.satisfiable(&form.omega)
    {
        out.push(
            Diagnostic::new(
                Code::E002,
                statement,
                format!(
                    "ω `{}` of this {} is unsatisfiable: it has no models, so every world \
                     selected by the WHERE clause is annihilated",
                    show(theory, &form.omega),
                    op_name(u)
                ),
            )
            .with_fix(FixHint::advice(
                "only ASSERT should prune worlds; make ω satisfiable or use ASSERT deliberately",
            )),
        );
        return;
    }
    let Some(forced) = forced_literals(&form.omega, 20) else {
        return;
    };
    let forced_map: BTreeMap<AtomId, bool> = forced.iter().copied().collect();
    let omega_atoms = form.omega.atom_set();
    // The value an atom certainly has in every produced world, if any.
    let value_of = |a: AtomId| -> Option<bool> {
        if let Some(&v) = forced_map.get(&a) {
            return Some(v);
        }
        if omega_atoms.contains(&a) {
            return None; // mentioned but not forced: can go either way
        }
        // Unmentioned atoms persist; unregistered atoms are pinned false.
        if a.index() >= theory.num_atoms() || !theory.registry.is_registered(a) {
            return Some(false);
        }
        backbone.and_then(|b| b.get(a.index()).copied().flatten())
    };

    let mut type_flagged = false;
    for &(atom, v) in &forced {
        if !v || type_flagged {
            continue;
        }
        if let Some(axiom) = scratch.type_axiom_instance(atom) {
            if certainly_false(&axiom, &value_of) {
                out.push(
                    Diagnostic::new(
                        Code::E003,
                        statement,
                        format!(
                            "inserting `{}` certainly violates its type axiom `{}`: some \
                             attribute atom is false in every produced world, so rule 3 \
                             (§3.5) filters all of them — the statement annihilates the \
                             database",
                            show(scratch, &Wff::Atom(atom)),
                            show(scratch, &axiom)
                        ),
                    )
                    .with_fix(FixHint::advice(
                        "insert the required attribute atoms in the same ω, or load them as \
                         facts first",
                    )),
                );
                type_flagged = true;
            }
        }
    }

    'deps: for &(atom, v) in &forced {
        if !v {
            continue;
        }
        for dep in &theory.deps {
            for inst in dep.instantiate(&scratch.registry, &mut scratch.atoms, Some(atom)) {
                if certainly_false(&inst, &value_of) {
                    out.push(
                        Diagnostic::new(
                            Code::E004,
                            statement,
                            format!(
                                "inserting `{}` certainly violates dependency `{}`: the \
                                 instance `{}` is false in every produced world, so rule 3 \
                                 (§3.5) filters all of them — the statement annihilates the \
                                 database",
                                show(scratch, &Wff::Atom(atom)),
                                dep.name,
                                show(scratch, &inst)
                            ),
                        )
                        .with_fix(FixHint::advice(
                            "delete the conflicting tuple in the same statement \
                             (INSERT new ∧ ¬old), as in the paper's §1 example",
                        )),
                    );
                    break 'deps;
                }
            }
        }
    }
}

/// Whether `w` evaluates to false once every atom with a determined value
/// is substituted — i.e. the determined values alone falsify it.
fn certainly_false(w: &Wff, value_of: &impl Fn(AtomId) -> Option<bool>) -> bool {
    let mut g = w.clone();
    for a in w.atom_set() {
        if let Some(v) = value_of(a) {
            g = g.assign(a, v);
        }
    }
    g.fold_constants() == Wff::f()
}

/// Pass 4: `W005` — §3.6 cost estimation.
///
/// The paper's per-statement cost is `O(g log R)` when every touched atom is
/// reached through the completion-registry index (`g` = atom occurrences in
/// the update, `R` = the largest relation). When the statement's atoms occur
/// in a large share of the stored formulas, the renaming/simplification work
/// is instead proportional to the non-axiomatic section itself — a scan.
fn check_cost(
    theory: &Theory,
    stats: &TheoryStats,
    statement: usize,
    u: &Update,
    form: &InsertForm,
    out: &mut Vec<Diagnostic>,
) {
    if stats.num_formulas < MIN_SECTION_FOR_COST {
        return;
    }
    let mut atoms = form.phi.atom_set();
    atoms.extend(form.omega.atom_set());
    let occ: usize = atoms.iter().map(|&a| theory.store.occurrences_of(a)).sum();
    if occ >= 4 && occ * 2 >= stats.num_formulas {
        let g = u.num_atom_occurrences();
        out.push(
            Diagnostic::new(
                Code::W005,
                statement,
                format!(
                    "the atoms of this {} occur {occ} time(s) across the {}-formula \
                     non-axiomatic section: processing is proportional to the stored \
                     section, not the indexed §3.6 bound O(g log R) (g = {g}, R = {})",
                    op_name(u),
                    stats.num_formulas,
                    stats.max_predicate_size
                ),
            )
            .with_fix(FixHint::advice(
                "tighten the WHERE clause or split the update so it touches fewer stored \
                 formulas; a simplification pass (§4) may also shrink the section first",
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use winslett_theory::Dependency;

    /// `R/1` over constants a, b with `R(a)` certain-true, `R(b)`
    /// certain-false.
    fn base() -> (Theory, AtomId, AtomId) {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let ca = t.constant("a");
        let cb = t.constant("b");
        let a = t.atom(r, &[ca]);
        let b = t.atom(r, &[cb]);
        t.assert_atom(a);
        t.assert_not_atom(b);
        (t, a, b)
    }

    fn codes(theory: &Theory, program: &[Update]) -> Vec<Code> {
        analyze_program(theory, program)
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_insert_is_silent() {
        let (t, _, b) = base();
        let u = Update::insert(Wff::Atom(b), Wff::t());
        assert!(codes(&t, &[u]).is_empty());
    }

    #[test]
    fn w001_unsatisfiable_where() {
        let (t, a, b) = base();
        let phi = Wff::and2(Wff::Atom(a), Wff::Atom(a).not());
        let u = Update::insert(Wff::Atom(b), phi);
        assert_eq!(codes(&t, &[u]), vec![Code::W001]);
        // A vacuous ASSERT is the same family.
        let v = Update::assert(Wff::or2(Wff::Atom(a), Wff::Atom(a).not()));
        assert_eq!(codes(&t, &[v]), vec![Code::W001]);
    }

    #[test]
    fn w002_tautological_delete_guard() {
        let (t, a, _) = base();
        let u = Update::delete(a, Wff::or2(Wff::Atom(a), Wff::Atom(a).not()));
        assert_eq!(codes(&t, &[u]), vec![Code::W002]);
        let explicit = Update::delete(a, Wff::t());
        assert_eq!(codes(&t, &[explicit]), vec![Code::W002]);
    }

    #[test]
    fn w003_already_true_insert() {
        let (t, a, _) = base();
        let u = Update::insert(Wff::Atom(a), Wff::Atom(a));
        let diags = analyze_program(&t, &[u]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::W003);
        assert!(diags[0].message.contains("Theorem 3"));
    }

    #[test]
    fn w004_duplicate_statement() {
        let (t, _, b) = base();
        let u = Update::insert(Wff::Atom(b), Wff::t());
        assert_eq!(codes(&t, &[u.clone(), u]), vec![Code::W004]);
    }

    #[test]
    fn w006_theory_dead_condition() {
        let (t, _, b) = base();
        // R(b) is certainly false, so no world satisfies the guard.
        let u = Update::delete(b, Wff::t());
        let got = codes(&t, &[u]);
        assert!(got.contains(&Code::W006), "got {got:?}");
    }

    #[test]
    fn e002_unsatisfiable_omega() {
        let (t, a, b) = base();
        let omega = Wff::and2(Wff::Atom(b), Wff::Atom(b).not());
        let u = Update::insert(omega, Wff::Atom(a));
        assert_eq!(codes(&t, &[u]), vec![Code::E002]);
    }

    #[test]
    fn e003_certain_type_axiom_violation() {
        let mut t = Theory::new();
        let part = t.declare_attribute("PartNo").unwrap();
        let instock = t.declare_typed_relation("InStock", &[part]).unwrap();
        let c32 = t.constant("32");
        let atom = t.atom(instock, &[c32]);
        let pa = t.atom(part, &[c32]);
        t.assert_not_atom(atom);
        t.assert_not_atom(pa);
        // Inserting InStock(32) while PartNo(32) stays false annihilates.
        let bad = Update::insert(Wff::Atom(atom), Wff::t());
        assert_eq!(codes(&t, &[bad]), vec![Code::E003]);
        // Carrying the attribute atom in ω is fine.
        let good = Update::insert(Wff::and2(Wff::Atom(atom), Wff::Atom(pa)), Wff::t());
        assert_eq!(codes(&t, &[good]), Vec::<Code>::new());
    }

    #[test]
    fn e004_certain_fd_violation() {
        let mut t = Theory::new();
        let p = t.declare_relation("P", 2).unwrap();
        t.add_dependency(Dependency::functional("fd", p, 2, &[0]).unwrap());
        let ca = t.constant("a");
        let cb = t.constant("b");
        let cc = t.constant("c");
        let ab = t.atom(p, &[ca, cb]);
        let ac = t.atom(p, &[ca, cc]);
        t.assert_atom(ab);
        t.assert_not_atom(ac);
        // P(a,b) is certain; inserting P(a,c) violates the FD everywhere.
        let bad = Update::insert(Wff::Atom(ac), Wff::t());
        assert_eq!(codes(&t, &[bad]), vec![Code::E004]);
        // The paper's §1 remedy: delete the old tuple in the same breath.
        let good = Update::insert(Wff::and2(Wff::Atom(ac), Wff::Atom(ab).not()), Wff::t());
        assert_eq!(codes(&t, &[good]), Vec::<Code>::new());
    }

    #[test]
    fn w005_scan_cost_hazard() {
        let mut t = Theory::new();
        let r = t.declare_relation("R", 1).unwrap();
        let hot = {
            let c = t.constant("hot");
            t.atom(r, &[c])
        };
        // Ten stored formulas all mentioning the hot atom.
        for i in 0..10 {
            let c = t.constant(&format!("x{i}"));
            let other = t.atom(r, &[c]);
            t.assert_wff(&Wff::or2(Wff::Atom(hot), Wff::Atom(other)));
        }
        let fresh = {
            let c = t.constant("fresh");
            t.atom(r, &[c])
        };
        let u = Update::insert(Wff::Atom(fresh), Wff::Atom(hot));
        let got = codes(&t, &[u]);
        assert!(got.contains(&Code::W005), "got {got:?}");
        // A statement avoiding the hot atom stays quiet.
        let quiet = Update::insert(Wff::Atom(fresh), Wff::t());
        assert!(!codes(&t, &[quiet]).contains(&Code::W005));
    }

    #[test]
    fn noop_statements_skip_later_passes() {
        let (t, a, b) = base();
        // Unsatisfiable guard *and* unsatisfiable ω: only W001 fires.
        let u = Update::insert(
            Wff::and2(Wff::Atom(b), Wff::Atom(b).not()),
            Wff::and2(Wff::Atom(a), Wff::Atom(a).not()),
        );
        assert_eq!(codes(&t, &[u]), vec![Code::W001]);
    }

    #[test]
    fn batch_summary_counts() {
        let (t, a, _) = base();
        let dup = Update::insert(Wff::Atom(a), Wff::Atom(a));
        let batch = analyze_batch(&t, &[dup.clone(), dup]);
        assert_eq!(batch.statements, 2);
        assert_eq!(batch.errors(), 0);
        assert!(batch.warnings() >= 2); // W003 on both, W004 on the second
    }
}
