//! The diagnostics framework: codes, severities, spans, fix hints.
//!
//! Every finding of the analyzer is a [`Diagnostic`] carrying a stable
//! machine-readable [`Code`], a [`Severity`], the index of the offending
//! statement, an optional source [`Span`] (byte range, attached by the
//! script front-end), a human-readable message, and an optional
//! machine-readable [`FixHint`]. A whole run is summarized by a [`Batch`].

use std::fmt;
use winslett_logic::Span;

/// How bad a finding is.
///
/// `Error` findings describe statements that are *guaranteed* to destroy
/// information (rule 3 of §3.5 filters every produced world) or that cannot
/// be interpreted at all; `Warning` findings describe statements that are
/// legal but almost certainly not what the author meant (no-ops,
/// duplicates, §3.6 cost hazards).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but legal.
    Warning,
    /// Guaranteed-wrong or uninterpretable.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// Warnings are `W0xx`, errors `E0xx`. The full catalogue, with the paper
/// sections each check rests on, lives in `docs/analyzer.md`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Code {
    /// The WHERE clause is unsatisfiable: the statement is a no-op (§3.2;
    /// Theorem 3's first case).
    W001,
    /// The stored φ of a `DELETE`/`MODIFY` is a tautology: the condition
    /// `φ ∧ t` reduces to `t` alone — the statement is unconditional.
    W002,
    /// Already-true INSERT: every world selected by φ already satisfies ω,
    /// so the update is equivalent to `INSERT T` (Theorem 3).
    W003,
    /// The statement repeats the previous one (Theorem 4 equivalence);
    /// single-update application is idempotent, so the repeat is redundant.
    W004,
    /// §3.6 cost hazard: the statement's atoms occur in a large share of
    /// the non-axiomatic section, degrading `O(g log R)` toward a scan.
    W005,
    /// The WHERE clause is dead *under the current theory*: no alternative
    /// world satisfies it, so the statement is a no-op on this database.
    W006,
    /// Order-sensitive pair: two statements whose footprints conflict and
    /// whose commutation could not be proven — reordering them may change
    /// the result. Emitted only under conflict analysis (`--conflicts`).
    W007,
    /// Statement subsumed by a *non-adjacent* earlier statement: it is
    /// Theorem-4 equivalent to an earlier one and every statement in
    /// between is independent of it, so it can be commuted back to be
    /// adjacent and collapsed by idempotence (the non-adjacent completion
    /// of W004). Emitted only under conflict analysis.
    W008,
    /// Serialization hazard: one statement conflicts with more than K
    /// others — a future lock-contention hotspot. Emitted only under
    /// conflict analysis.
    W009,
    /// Provably-commutative block: a maximal run of ≥2 pairwise-independent
    /// statements, safe to batch or reorder. Emitted only under conflict
    /// analysis.
    W010,
    /// The statement could not be parsed or mentions unknown symbols.
    E001,
    /// ω is unsatisfiable in an INSERT/MODIFY: every selected world is
    /// annihilated (only `ASSERT` should prune worlds).
    E002,
    /// A type-axiom instance (§3.5, item 4) is certainly violated: rule 3
    /// filters every produced world.
    E003,
    /// A dependency-axiom instance (§3.5, item 5) is certainly violated:
    /// rule 3 filters every produced world.
    E004,
}

impl Code {
    /// Every code the analyzer can emit, in catalogue order.
    pub const ALL: [Code; 14] = [
        Code::W001,
        Code::W002,
        Code::W003,
        Code::W004,
        Code::W005,
        Code::W006,
        Code::W007,
        Code::W008,
        Code::W009,
        Code::W010,
        Code::E001,
        Code::E002,
        Code::E003,
        Code::E004,
    ];

    /// The stable textual form, e.g. `"W001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::W001 => "W001",
            Code::W002 => "W002",
            Code::W003 => "W003",
            Code::W004 => "W004",
            Code::W005 => "W005",
            Code::W006 => "W006",
            Code::W007 => "W007",
            Code::W008 => "W008",
            Code::W009 => "W009",
            Code::W010 => "W010",
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
        }
    }

    /// Parses a code from its textual form.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::W001
            | Code::W002
            | Code::W003
            | Code::W004
            | Code::W005
            | Code::W006
            | Code::W007
            | Code::W008
            | Code::W009
            | Code::W010 => Severity::Warning,
            Code::E001 | Code::E002 | Code::E003 | Code::E004 => Severity::Error,
        }
    }

    /// A one-line description of what the code means.
    pub fn title(self) -> &'static str {
        match self {
            Code::W001 => "unsatisfiable WHERE clause: the statement is a no-op",
            Code::W002 => "tautological WHERE clause: the DELETE/MODIFY is unconditional",
            Code::W003 => "already-true INSERT: equivalent to INSERT T (Theorem 3)",
            Code::W004 => "statement repeats the previous update (Theorem 4)",
            Code::W005 => "§3.6 cost hazard: update touches a large share of the stored section",
            Code::W006 => "WHERE clause is dead under the current theory",
            Code::W007 => "order-sensitive pair: reordering these statements may change the result",
            Code::W008 => "statement subsumed by a non-adjacent earlier statement",
            Code::W009 => "serialization hazard: statement conflicts with many others",
            Code::W010 => "provably-commutative block: safe to batch or reorder",
            Code::E001 => "statement could not be parsed",
            Code::E002 => "unsatisfiable ω: every selected world is annihilated",
            Code::E003 => "certain type-axiom violation: rule 3 filters every produced world",
            Code::E004 => "certain dependency violation: rule 3 filters every produced world",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A machine-readable suggestion for repairing a diagnosed statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FixHint {
    /// What to do, in one sentence.
    pub summary: String,
    /// Replacement text for the whole statement, when one exists.
    /// `Some("")` means "delete the statement".
    pub replacement: Option<String>,
}

impl FixHint {
    /// A hint with no mechanical replacement.
    pub fn advice(summary: impl Into<String>) -> Self {
        FixHint {
            summary: summary.into(),
            replacement: None,
        }
    }

    /// The canonical "delete this statement" hint.
    pub fn delete_statement(summary: impl Into<String>) -> Self {
        FixHint {
            summary: summary.into(),
            replacement: Some(String::new()),
        }
    }
}

/// One analyzer finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Index of the offending statement within the analyzed program.
    pub statement: usize,
    /// Byte range in the source, when the statement came from a script.
    pub span: Option<Span>,
    /// Human-readable description of the finding.
    pub message: String,
    /// Optional repair suggestion.
    pub fix: Option<FixHint>,
}

impl Diagnostic {
    /// Builds a diagnostic for `statement` with no span and no fix.
    pub fn new(code: Code, statement: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            statement,
            span: None,
            message: message.into(),
            fix: None,
        }
    }

    /// Attaches a fix hint.
    pub fn with_fix(mut self, fix: FixHint) -> Self {
        self.fix = Some(fix);
        self
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] statement {}: {}",
            self.severity, self.code, self.statement, self.message
        )
    }
}

/// Summary of one analyzer run over a program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Batch {
    /// Number of statements analyzed.
    pub statements: usize,
    /// All findings, in statement order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Batch {
    /// Builds a batch summary.
    pub fn new(statements: usize, diagnostics: Vec<Diagnostic>) -> Self {
        Batch {
            statements,
            diagnostics,
        }
    }

    /// Number of `Error`-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether the run produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The worst severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }
}

impl fmt::Display for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} statement(s): {} error(s), {} warning(s)",
            self.statements,
            self.errors(),
            self.warnings()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_have_fixed_severities() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            let is_error = c.as_str().starts_with('E');
            assert_eq!(c.severity() == Severity::Error, is_error, "{c}");
            assert!(!c.title().is_empty());
        }
        assert_eq!(Code::parse("W999"), None);
    }

    #[test]
    fn batch_counts() {
        let b = Batch::new(
            3,
            vec![
                Diagnostic::new(Code::W001, 0, "x"),
                Diagnostic::new(Code::E003, 2, "y"),
            ],
        );
        assert_eq!(b.errors(), 1);
        assert_eq!(b.warnings(), 1);
        assert_eq!(b.worst(), Some(Severity::Error));
        assert!(!b.is_clean());
        assert!(b.to_string().contains("1 error"));
    }

    #[test]
    fn diagnostic_builders() {
        let d = Diagnostic::new(Code::W002, 1, "msg")
            .with_span(Span::new(3, 7))
            .with_fix(FixHint::delete_statement("drop it"));
        assert_eq!(d.span, Some(Span::new(3, 7)));
        assert_eq!(d.fix.as_ref().unwrap().replacement.as_deref(), Some(""));
        assert!(d.to_string().contains("W002"));
    }
}
