//! `ldml-lint` — pre-execution static analysis of `.ldml` scripts.
//!
//! ```text
//! usage: ldml-lint [--self-check] [--deny-warnings] [--conflicts]
//!                  [--conflicts-dot] <script.ldml>...
//! ```
//!
//! Prints rustc-style caret diagnostics for every finding. Exit status:
//!
//! * normal mode — `1` if any `E0xx` finding (or any finding at all under
//!   `--deny-warnings`), `0` otherwise;
//! * `--self-check` — compares the emitted codes of each script against its
//!   `-- expect: <CODE>...` annotations; `1` on any mismatch or read
//!   failure. A script without annotations must be clean. This is the mode
//!   the `ci` target runs over `examples/*.ldml`.
//!
//! `--conflicts` additionally runs the footprint/commutativity pass
//! (`W007`–`W010`) and prints the per-statement read/write report and the
//! pairwise conflict graph. Under `--self-check` the pass's codes are
//! matched against `-- expect-conflicts:` annotations. `--conflicts-dot`
//! implies `--conflicts` and emits the graph as Graphviz `dot` instead of
//! the textual report.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::io::{self, Write};
use std::process::ExitCode;
use winslett_analyze::{
    analyze_script_with, render_diagnostic, render_summary, ConflictOptions, ScriptOptions,
    Severity,
};

const USAGE: &str = "usage: ldml-lint [--self-check] [--deny-warnings] [--conflicts] \
[--conflicts-dot] <script.ldml>...";

fn main() -> ExitCode {
    let mut self_check = false;
    let mut deny_warnings = false;
    let mut conflicts = false;
    let mut dot = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--self-check" => self_check = true,
            "--deny-warnings" => deny_warnings = true,
            "--conflicts" => conflicts = true,
            "--conflicts-dot" => {
                conflicts = true;
                dot = true;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("ldml-lint: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("ldml-lint: no input files (try --help)");
        return ExitCode::FAILURE;
    }

    let options = ScriptOptions {
        conflicts: conflicts.then(ConflictOptions::default),
    };
    let stdout = io::stdout();
    let mut out = stdout.lock();
    match run(&mut out, self_check, deny_warnings, dot, &options, &files) {
        Ok(true) => ExitCode::FAILURE,
        Ok(false) => ExitCode::SUCCESS,
        // The reader closed the pipe (e.g. `ldml-lint ... | head`): stop
        // quietly instead of panicking on the next write.
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ldml-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Lints every file, writing to `out`; returns whether anything failed.
fn run(
    out: &mut impl Write,
    self_check: bool,
    deny_warnings: bool,
    dot: bool,
    options: &ScriptOptions,
    files: &[String],
) -> io::Result<bool> {
    let mut failed = false;
    for file in files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ldml-lint: cannot read `{file}`: {e}");
                failed = true;
                continue;
            }
        };
        let report = analyze_script_with(&source, options);
        for d in &report.diagnostics {
            writeln!(out, "{}", render_diagnostic(file, &source, d))?;
        }
        writeln!(out, "{}", render_summary(file, &report.diagnostics))?;
        if let Some(analysis) = &report.conflicts {
            if dot {
                writeln!(out, "{}", analysis.to_dot(Some(&report.program_map)))?;
            } else {
                writeln!(
                    out,
                    "{}",
                    analysis.render_report(&report.theory, Some(&report.program_map))
                )?;
            }
        }
        if self_check {
            if report.matches_expectations() {
                writeln!(
                    out,
                    "{file}: self-check ok ({} expected finding(s))",
                    report.expected_codes().len()
                )?;
            } else {
                let want: Vec<&str> = report
                    .expected_codes()
                    .into_iter()
                    .map(|c| c.as_str())
                    .collect();
                let got: Vec<&str> = report
                    .emitted_codes()
                    .into_iter()
                    .map(|c| c.as_str())
                    .collect();
                eprintln!(
                    "{file}: self-check FAILED: expected [{}], emitted [{}]",
                    want.join(", "),
                    got.join(", ")
                );
                failed = true;
            }
        } else {
            let errors = report
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error);
            if errors || (deny_warnings && !report.diagnostics.is_empty()) {
                failed = true;
            }
        }
    }
    Ok(failed)
}
