#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! # winslett-analyze
//!
//! A pre-execution static analyzer for LDML update programs against an
//! extended relational theory (Winslett, PODS 1986).
//!
//! The paper's update semantics make several classes of authoring mistakes
//! *silently* destructive: an update whose produced worlds all violate the
//! §3.5 type or dependency axioms annihilates the database (rule 3 filters
//! every world), an unsatisfiable WHERE clause makes a statement a no-op,
//! and an update whose atoms occur throughout the non-axiomatic section
//! forfeits the §3.6 `O(g log R)` processing bound. This crate finds all of
//! those *before* any update runs:
//!
//! 1. SAT-backed WHERE-clause checks (`W001`, `W002`, `W006`);
//! 2. no-op / redundancy detection via the decidable equivalence criteria
//!    of Theorems 3 and 4 (`W003`, `W004`);
//! 3. schema and dependency conformance pre-checks (`E002`, `E003`,
//!    `E004`);
//! 4. §3.6 cost estimation (`W005`);
//! 5. footprint/commutativity analysis (`W007`–`W010`) — per-statement
//!    read/write sets, the pairwise conflict graph, and SAT-backed
//!    commutativity escalation (opt-in; see [`analyze_conflicts`]).
//!
//! Entry points:
//!
//! * [`analyze_program`] / [`analyze_batch`] — library API over parsed
//!   [`winslett_ldml::Update`]s;
//! * [`analyze_script`] / [`analyze_script_with`] — the `.ldml` script
//!   front-end, which also builds the theory from declaration directives
//!   and attaches file-absolute spans;
//! * [`analyze_conflicts`] — the conflict graph of a program, plus
//!   [`ConflictAnalyzer`], the raw-text footprint handle the
//!   `winslett-serve` write scheduler batches with;
//! * the `ldml-lint` binary — rustc-style caret diagnostics on script
//!   files, with a `--self-check` mode driven by `-- expect:` annotations
//!   (and `-- expect-conflicts:` under `--conflicts`).
//!
//! The full diagnostic catalogue lives in `docs/analyzer.md`.
//!
//! ```
//! use winslett_analyze::{analyze_program, Code};
//! use winslett_ldml::Update;
//! use winslett_logic::Wff;
//! use winslett_theory::Theory;
//!
//! let mut t = Theory::new();
//! let r = t.declare_relation("R", 1)?;
//! let ca = t.constant("a");
//! let a = t.atom(r, &[ca]);
//! t.assert_atom(a);
//!
//! // INSERT R(a) WHERE R(a): every selected world already satisfies ω.
//! let diags = analyze_program(&t, &[Update::insert(Wff::Atom(a), Wff::Atom(a))]);
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code, Code::W003);
//! # Ok::<(), winslett_theory::TheoryError>(())
//! ```

pub mod diagnostics;
pub mod footprint;
pub mod passes;
pub mod render;
pub mod script;

pub use diagnostics::{Batch, Code, Diagnostic, FixHint, Severity};
pub use footprint::{
    analyze_conflicts, constrained_predicates, statement_footprint, ConflictAnalysis,
    ConflictAnalyzer, ConflictEdge, ConflictOptions, LockProfile, StatementFootprint,
};
pub use passes::{analyze_batch, analyze_program};
pub use render::{render_diagnostic, render_summary};
pub use script::{
    analyze_script, analyze_script_with, ScriptOptions, ScriptReport, ScriptStatement,
};
