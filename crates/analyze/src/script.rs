//! The `.ldml` script front-end: parse a whole script, build the initial
//! theory from its directives, analyze the update program, and attach
//! file-absolute [`Span`]s to every diagnostic so callers can render
//! rustc-style carets.
//!
//! Script syntax, line-oriented:
//!
//! ```text
//! -- comment (also allowed trailing a line)
//! .relation Orders/3              -- declare a relation
//! .attribute PartNo               -- declare an attribute predicate
//! .typed InStock(PartNo, Quan)    -- typed relation (type axioms, §3.5)
//! .fd orders-qty Orders key 0,1   -- functional dependency (§3.5)
//! .fact Orders(700,32,9)          -- certain fact
//! .false InStock(32,1)            -- certainly-false tuple
//! .wff InStock(32,5) | InStock(32,6)   -- arbitrary stored ground wff
//! INSERT InStock(32,5) & PartNo(32) & Quan(5) WHERE T
//! DELETE Orders(700,32,9) WHERE InStock(32,9)
//! ```
//!
//! Directives describe the *initial* database; the LDML statements form the
//! update program analyzed against it. A comment of the form
//! `-- expect: W001 E004` anywhere in the file records the codes the script
//! is expected to trigger — `ldml-lint --self-check` verifies the emitted
//! codes match exactly (an annotation-free file must be clean).

use crate::diagnostics::{Batch, Code, Diagnostic};
use crate::footprint::{analyze_conflicts, ConflictAnalysis, ConflictOptions};
use crate::passes::analyze_program;
use winslett_ldml::{parse_update, Update};
use winslett_logic::{parse_wff, ParseContext, Span};
use winslett_theory::{Dependency, Theory};

/// Front-end options for [`analyze_script_with`].
#[derive(Clone, Debug, Default)]
pub struct ScriptOptions {
    /// Run the footprint/commutativity pass (`W007`–`W010`) with these
    /// options. `None` (the default, and what [`analyze_script`] uses)
    /// skips conflict analysis entirely, so scripts stay clean under the
    /// base lints even when they contain batchable blocks.
    pub conflicts: Option<ConflictOptions>,
}

/// One meaningful script line (directive or LDML statement).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScriptStatement {
    /// The statement text, comments stripped.
    pub text: String,
    /// Byte range of `text` within the script source.
    pub span: Span,
}

/// The result of analyzing a whole script.
#[derive(Clone, Debug)]
pub struct ScriptReport {
    /// Every meaningful line, in order (directives and statements alike).
    pub statements: Vec<ScriptStatement>,
    /// All findings; `statement` indexes [`ScriptReport::statements`] and
    /// every span is file-absolute.
    pub diagnostics: Vec<Diagnostic>,
    /// Codes the script declares via `-- expect:` annotations.
    pub expected: Vec<Code>,
    /// Codes the script declares via `-- expect-conflicts:` annotations —
    /// expected *only* when the conflict pass runs.
    pub expected_conflicts: Vec<Code>,
    /// The theory built from the directives.
    pub theory: Theory,
    /// The parsed update program (statements that failed to parse are
    /// reported as `E001` and skipped).
    pub program: Vec<Update>,
    /// Maps program indices to statement indices (the display numbering).
    pub program_map: Vec<usize>,
    /// The conflict graph, when the pass ran.
    pub conflicts: Option<ConflictAnalysis>,
}

impl ScriptReport {
    /// Batch summary over the script's statements.
    pub fn batch(&self) -> Batch {
        Batch::new(self.statements.len(), self.diagnostics.clone())
    }

    /// The emitted codes, sorted — the multiset `--self-check` compares
    /// against [`ScriptReport::expected`].
    pub fn emitted_codes(&self) -> Vec<Code> {
        let mut v: Vec<Code> = self.diagnostics.iter().map(|d| d.code).collect();
        v.sort();
        v
    }

    /// Whether the emitted codes match the script's `expect:` annotations
    /// exactly (an annotation-free script must emit nothing). When the
    /// conflict pass ran, the `expect-conflicts:` annotations join the
    /// expected multiset.
    pub fn matches_expectations(&self) -> bool {
        self.emitted_codes() == self.expected_codes()
    }

    /// The sorted code multiset the script expects for the mode it was
    /// analyzed in.
    pub fn expected_codes(&self) -> Vec<Code> {
        let mut want = self.expected.clone();
        if self.conflicts.is_some() {
            want.extend(self.expected_conflicts.iter().copied());
        }
        want.sort();
        want
    }
}

/// Parses and analyzes `source` as an `.ldml` script with the default
/// options (no conflict analysis).
pub fn analyze_script(source: &str) -> ScriptReport {
    analyze_script_with(source, &ScriptOptions::default())
}

/// Parses and analyzes `source` as an `.ldml` script.
pub fn analyze_script_with(source: &str, options: &ScriptOptions) -> ScriptReport {
    let mut theory = Theory::new();
    let mut statements: Vec<ScriptStatement> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut expected: Vec<Code> = Vec::new();
    let mut expected_conflicts: Vec<Code> = Vec::new();
    // (statement index, update) for every line that parsed as an update.
    let mut program_map: Vec<usize> = Vec::new();
    let mut program: Vec<Update> = Vec::new();

    let collect_codes = |into: &mut Vec<Code>, toks: &str| {
        for tok in toks
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|t| !t.is_empty())
        {
            if let Some(c) = Code::parse(tok) {
                into.push(c);
            }
        }
    };

    let mut offset = 0usize;
    for line in source.split_inclusive('\n') {
        let line_start = offset;
        offset += line.len();
        let content = line.strip_suffix('\n').unwrap_or(line);
        let (code_part, comment) = match content.find("--") {
            Some(i) => (&content[..i], &content[i..]),
            None => (content, ""),
        };
        // `expect-conflicts:` is carved out first so its codes never leak
        // into the plain `expect:` list when both share a comment.
        let (comment, conflict_part) = match comment.find("expect-conflicts:") {
            Some(i) => (
                &comment[..i],
                Some(&comment[i + "expect-conflicts:".len()..]),
            ),
            None => (comment, None),
        };
        if let Some(toks) = conflict_part {
            collect_codes(&mut expected_conflicts, toks);
        }
        if let Some(i) = comment.find("expect:") {
            collect_codes(&mut expected, &comment[i + "expect:".len()..]);
        }
        let text = code_part.trim();
        if text.is_empty() {
            continue;
        }
        let start = line_start + (text.as_ptr() as usize - content.as_ptr() as usize);
        let span = Span::new(start, start + text.len());
        let index = statements.len();
        statements.push(ScriptStatement {
            text: text.to_string(),
            span,
        });

        if let Some(rest) = text.strip_prefix('.') {
            if let Err(message) = run_directive(&mut theory, rest) {
                diagnostics.push(Diagnostic::new(Code::E001, index, message).with_span(span));
            }
            continue;
        }

        let mut ctx = ParseContext {
            vocab: &mut theory.vocab,
            atoms: &mut theory.atoms,
            declare: true,                    // new constants are normal in updates
            allow_predicate_constants: false, // updates are wffs over L′ (§3.1)
        };
        match parse_update(text, &mut ctx) {
            Ok(u) => {
                program_map.push(index);
                program.push(u);
            }
            Err(e) => {
                let err_span = e.span().map(|s| s.shifted(span.start)).unwrap_or(span);
                diagnostics
                    .push(Diagnostic::new(Code::E001, index, e.to_string()).with_span(err_span));
            }
        }
    }

    for mut d in analyze_program(&theory, &program) {
        let index = program_map[d.statement];
        d.statement = index;
        d.span = Some(pick_span(&statements[index], d.code));
        diagnostics.push(d);
    }
    let conflicts = options.conflicts.as_ref().map(|copts| {
        let analysis = analyze_conflicts(&theory, &program, copts);
        // `diagnostics(..)` already maps statement numbers to the script's
        // display indices; only the spans remain to attach.
        for mut d in analysis.diagnostics(Some(&program_map)) {
            d.span = Some(pick_span(&statements[d.statement], d.code));
            diagnostics.push(d);
        }
        analysis
    });
    diagnostics.sort_by_key(|d| (d.statement, d.code));

    ScriptReport {
        statements,
        diagnostics,
        expected,
        expected_conflicts,
        theory,
        program,
        program_map,
        conflicts,
    }
}

/// Chooses the caret range for a program diagnostic: WHERE-clause findings
/// point at the WHERE clause, everything else at the whole statement.
fn pick_span(stmt: &ScriptStatement, code: Code) -> Span {
    match code {
        Code::W001 | Code::W002 | Code::W006 => match stmt.text.rfind("WHERE") {
            Some(i) => Span::new(stmt.span.start + i, stmt.span.end),
            None => stmt.span,
        },
        _ => stmt.span,
    }
}

/// Executes one `.directive` (leading dot already stripped).
fn run_directive(theory: &mut Theory, rest: &str) -> Result<(), String> {
    let (cmd, arg) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    match cmd {
        "relation" => {
            let (name, arity) = arg.split_once('/').ok_or("usage: .relation Name/arity")?;
            let arity: usize = arity
                .trim()
                .parse()
                .map_err(|e| format!("bad arity: {e}"))?;
            theory
                .declare_relation(name.trim(), arity)
                .map_err(|e| e.to_string())?;
            Ok(())
        }
        "attribute" => {
            theory.declare_attribute(arg).map_err(|e| e.to_string())?;
            Ok(())
        }
        "typed" => {
            let (name, attrs) = parse_application(arg)?;
            let attr_ids = attrs
                .iter()
                .map(|a| {
                    theory
                        .vocab
                        .find_predicate(a)
                        .ok_or_else(|| format!("unknown attribute `{a}`"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            theory
                .declare_typed_relation(name, &attr_ids)
                .map_err(|e| e.to_string())?;
            Ok(())
        }
        "fd" => {
            // .fd <name> <Rel> key <i[,j...]>
            let mut words = arg.split_whitespace();
            let (Some(name), Some(rel), Some("key"), Some(cols)) =
                (words.next(), words.next(), words.next(), words.next())
            else {
                return Err("usage: .fd <name> <Rel> key <i[,j...]>".into());
            };
            let pred = theory
                .vocab
                .find_predicate(rel)
                .ok_or_else(|| format!("unknown relation `{rel}`"))?;
            let arity = theory.vocab.predicate(pred).arity;
            let key: Vec<usize> = cols
                .split(',')
                .map(|c| c.trim().parse().map_err(|e| format!("bad key column: {e}")))
                .collect::<Result<_, _>>()?;
            let dep = Dependency::functional(name, pred, arity, &key).map_err(|e| e.to_string())?;
            theory.add_dependency(dep);
            Ok(())
        }
        "fact" | "false" => {
            let (name, args) = parse_application(arg)?;
            let refs: Vec<&str> = args.iter().map(String::as_str).collect();
            let atom = theory
                .atom_by_name(name, &refs)
                .map_err(|e| e.to_string())?;
            if cmd == "fact" {
                theory.assert_atom(atom);
            } else {
                theory.assert_not_atom(atom);
            }
            Ok(())
        }
        "wff" => {
            let mut ctx = ParseContext {
                vocab: &mut theory.vocab,
                atoms: &mut theory.atoms,
                declare: true,
                allow_predicate_constants: false,
            };
            let wff = parse_wff(arg, &mut ctx).map_err(|e| e.to_string())?;
            theory.assert_wff(&wff);
            Ok(())
        }
        other => Err(format!("unknown directive `.{other}`")),
    }
}

/// Splits `Name(a, b, c)` into the name and its arguments. `Name` alone is
/// accepted with no arguments.
fn parse_application(s: &str) -> Result<(&str, Vec<String>), String> {
    let Some(open) = s.find('(') else {
        if s.is_empty() {
            return Err("expected `Name(args...)`".into());
        }
        return Ok((s, Vec::new()));
    };
    let name = s[..open].trim();
    let inner = s[open + 1..]
        .strip_suffix(')')
        .ok_or("missing closing `)`")?;
    if name.is_empty() {
        return Err("expected `Name(args...)`".into());
    }
    let args = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|a| a.trim().to_string()).collect()
    };
    Ok((name, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_theory_and_analyzes() {
        let src = "\
-- the paper's inventory vocabulary
.relation Orders/3
.fact Orders(700,32,9)
INSERT Orders(100,32,1) WHERE T
";
        let r = analyze_script(src);
        assert_eq!(r.statements.len(), 3);
        assert_eq!(r.program.len(), 1);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(r.matches_expectations());
    }

    #[test]
    fn attaches_file_absolute_spans() {
        let src = ".relation R/1\nINSERT R(a) WHERE R(b) & !R(b)\n";
        let r = analyze_script(src);
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, Code::W001);
        let span = d.span.expect("script diagnostics carry spans");
        // The caret points at the WHERE clause of the second line.
        assert_eq!(&src[span.start..span.end], "WHERE R(b) & !R(b)");
    }

    #[test]
    fn parse_failures_become_e001_with_spans() {
        let src = ".relation R/1\nINSERT R(a) WHERE (R(a)\n.bogus x\n";
        let r = analyze_script(src);
        let codes = r.emitted_codes();
        assert_eq!(codes, vec![Code::E001, Code::E001]);
        assert!(r.program.is_empty());
        for d in &r.diagnostics {
            assert!(d.span.is_some());
        }
    }

    #[test]
    fn expectations_are_collected_and_compared() {
        let src = "\
.relation R/1
.fact R(a)
-- expect: W003
INSERT R(a) WHERE R(a)
";
        let r = analyze_script(src);
        assert_eq!(r.expected, vec![Code::W003]);
        assert!(r.matches_expectations(), "{:?}", r.diagnostics);
    }

    #[test]
    fn conflicts_mode_emits_and_expects_conflict_codes() {
        let src = "\
.relation R/1
-- expect-conflicts: W010
INSERT R(a) WHERE T
INSERT R(b) WHERE T
";
        // Default mode: no conflict codes, and expect-conflicts is inert.
        let plain = analyze_script(src);
        assert!(plain.diagnostics.is_empty(), "{:?}", plain.diagnostics);
        assert_eq!(plain.expected_conflicts, vec![Code::W010]);
        assert!(plain.conflicts.is_none());
        assert!(plain.matches_expectations());
        // Conflicts mode: W010 fires on the independent pair and the
        // expectation multiset includes the conflict annotations.
        let opts = ScriptOptions {
            conflicts: Some(ConflictOptions::default()),
        };
        let r = analyze_script_with(src, &opts);
        assert_eq!(r.emitted_codes(), vec![Code::W010]);
        assert!(r.matches_expectations(), "{:?}", r.diagnostics);
        assert!(r.conflicts.is_some());
        assert!(r.diagnostics[0].span.is_some());
    }

    #[test]
    fn shared_comment_keeps_expect_lists_apart() {
        let src = "\
.relation R/1
INSERT R(b) WHERE R(a)   -- expect: W006 expect-conflicts: W007
DELETE R(a) WHERE T      -- expect: W002
";
        let r = analyze_script(src);
        assert_eq!(r.expected, vec![Code::W006, Code::W002]);
        assert_eq!(r.expected_conflicts, vec![Code::W007]);
    }

    #[test]
    fn conflict_statement_numbers_use_script_indices() {
        let src = "\
.relation R/1
.fact R(a)
INSERT R(b) WHERE T
DELETE R(b) WHERE R(a)
";
        let opts = ScriptOptions {
            conflicts: Some(ConflictOptions::default()),
        };
        let r = analyze_script_with(src, &opts);
        let w007: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::W007)
            .collect();
        assert_eq!(w007.len(), 1, "{:?}", r.diagnostics);
        // Statements 0 and 1 are directives; the updates are 2 and 3.
        assert_eq!(w007[0].statement, 3);
        assert!(
            w007[0].message.contains("statements 2 and 3"),
            "{}",
            w007[0].message
        );
    }

    #[test]
    fn typed_and_fd_directives() {
        let src = "\
.attribute PartNo
.attribute Quan
.typed InStock(PartNo, Quan)
.relation Orders/2
.fd orders-fd Orders key 0
.fact Orders(700,32)
.false InStock(32,5)
";
        let r = analyze_script(src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.theory.deps.len(), 1);
        assert!(r.theory.schema.has_type_axioms());
    }
}
