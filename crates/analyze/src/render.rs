//! Rustc-style textual rendering of diagnostics against script source.

use crate::diagnostics::{Diagnostic, Severity};

/// Renders one diagnostic the way rustc does:
///
/// ```text
/// warning[W001]: this INSERT can never fire: ...
///   --> examples/demo.ldml:4:13
///    |
///  4 | INSERT R(a) WHERE R(b) & !R(b)
///    |             ^^^^^^^^^^^^^^^^^^
///    = help: the statement has no effect on any world; delete it
/// ```
///
/// `file` is the display name of the script and `source` its full text;
/// the diagnostic's span must be file-absolute (as produced by
/// [`crate::analyze_script`]). Diagnostics without spans render without the
/// source excerpt.
pub fn render_diagnostic(file: &str, source: &str, d: &Diagnostic) -> String {
    let mut out = format!("{}[{}]: {}\n", d.severity, d.code, d.message);
    if let Some(span) = d.span {
        let start = span.start.min(source.len());
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = source[start..]
            .find('\n')
            .map_or(source.len(), |i| start + i);
        let line_no = source[..start].matches('\n').count() + 1;
        let col = start - line_start + 1;
        let line = &source[line_start..line_end];
        let gutter = line_no.to_string().len().max(2);
        out.push_str(&format!(
            "{:gutter$}--> {file}:{line_no}:{col}\n",
            "",
            gutter = gutter
        ));
        out.push_str(&format!("{:gutter$} |\n", "", gutter = gutter));
        out.push_str(&format!("{line_no:gutter$} | {line}\n", gutter = gutter));
        let width = span.end.min(line_end).saturating_sub(start).max(1);
        out.push_str(&format!(
            "{:gutter$} | {:col_pad$}{}\n",
            "",
            "",
            "^".repeat(width),
            gutter = gutter,
            col_pad = col - 1
        ));
    }
    if let Some(fix) = &d.fix {
        out.push_str(&format!("  = help: {}\n", fix.summary));
        if let Some(rep) = &fix.replacement {
            if rep.is_empty() {
                out.push_str("  = fix: delete the statement\n");
            } else {
                out.push_str(&format!("  = fix: replace with `{rep}`\n"));
            }
        }
    }
    out
}

/// Renders the closing summary line for a batch of diagnostics.
pub fn render_summary(file: &str, diagnostics: &[Diagnostic]) -> String {
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    if diagnostics.is_empty() {
        format!("{file}: clean")
    } else {
        format!("{file}: {errors} error(s), {warnings} warning(s)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_script;

    #[test]
    fn renders_caret_under_where_clause() {
        let src = ".relation R/1\nINSERT R(a) WHERE R(b) & !R(b)\n";
        let r = analyze_script(src);
        let text = render_diagnostic("demo.ldml", src, &r.diagnostics[0]);
        assert!(text.starts_with("warning[W001]:"), "{text}");
        assert!(text.contains("demo.ldml:2:13"), "{text}");
        assert!(
            text.contains(&"^".repeat("WHERE R(b) & !R(b)".len())),
            "{text}"
        );
        assert!(text.contains("= help:"), "{text}");
        assert!(text.contains("= fix: delete the statement"), "{text}");
    }

    #[test]
    fn summary_counts() {
        let src = ".relation R/1\nINSERT R(a) WHERE R(b) & !R(b)\n";
        let r = analyze_script(src);
        let s = render_summary("demo.ldml", &r.diagnostics);
        assert_eq!(s, "demo.ldml: 0 error(s), 1 warning(s)");
        assert_eq!(render_summary("x.ldml", &[]), "x.ldml: clean");
    }
}
