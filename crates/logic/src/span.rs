//! Byte-offset source spans.
//!
//! Parsers in this workspace operate on plain `&str` statements, but
//! diagnostics (notably `ldml-lint`) want to point *into* the original
//! source. A [`Span`] is a half-open byte range `start..end` into whatever
//! string the producing parser was handed; [`Span::shifted`] rebases a span
//! produced against a sub-slice onto the enclosing source.

/// A half-open byte range `start..end` into some source string.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// A zero-width span at `offset` (a point of failure with no extent).
    pub fn point(offset: usize) -> Self {
        Span {
            start: offset,
            end: offset,
        }
    }

    /// Number of bytes covered.
    pub fn len(self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The span rebased by `base` bytes: a span into a sub-slice becomes a
    /// span into the string the sub-slice was cut from.
    pub fn shifted(self, base: usize) -> Self {
        Span {
            start: self.start + base,
            end: self.end + base,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Self {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether `offset` falls inside the span (or on a zero-width span's
    /// point).
    pub fn contains(self, offset: usize) -> bool {
        (self.start..self.end).contains(&offset) || (self.is_empty() && offset == self.start)
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifting_and_union() {
        let s = Span::new(3, 7);
        assert_eq!(s.len(), 4);
        assert_eq!(s.shifted(10), Span::new(13, 17));
        assert_eq!(s.to(Span::new(9, 12)), Span::new(3, 12));
        assert!(s.contains(3));
        assert!(!s.contains(7));
    }

    #[test]
    fn point_spans() {
        let p = Span::point(5);
        assert!(p.is_empty());
        assert!(p.contains(5));
        assert_eq!(Span::new(8, 2), Span::new(8, 8), "end clamped to start");
    }
}
