//! Error types for the logic kernel.

use std::fmt;

/// Errors produced by the logic kernel: parsing, arity checking, and
/// resource limits during model enumeration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogicError {
    /// The parser encountered malformed input.
    Parse {
        /// Byte offset into the input where the error was detected.
        offset: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A predicate was applied to the wrong number of arguments.
    ArityMismatch {
        /// Name of the predicate.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// A name was looked up that the vocabulary does not contain.
    UnknownSymbol {
        /// The unresolved name.
        name: String,
        /// What kind of symbol was expected ("predicate" or "constant").
        kind: &'static str,
    },
    /// Model enumeration exceeded the caller-supplied limit.
    TooManyModels {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The formula mentions an atom outside the expected universe.
    AtomOutOfUniverse {
        /// Display form of the offending atom.
        atom: String,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            LogicError::ArityMismatch {
                predicate,
                expected,
                got,
            } => write!(
                f,
                "predicate `{predicate}` has arity {expected} but was applied to {got} arguments"
            ),
            LogicError::UnknownSymbol { name, kind } => {
                write!(f, "unknown {kind} `{name}`")
            }
            LogicError::TooManyModels { limit } => {
                write!(f, "model enumeration exceeded the limit of {limit} models")
            }
            LogicError::AtomOutOfUniverse { atom } => {
                write!(f, "atom `{atom}` lies outside the theory's atom universe")
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LogicError::ArityMismatch {
            predicate: "Orders".into(),
            expected: 3,
            got: 2,
        };
        let s = e.to_string();
        assert!(s.contains("Orders"));
        assert!(s.contains('3'));
        assert!(s.contains('2'));
    }

    #[test]
    fn parse_error_reports_offset() {
        let e = LogicError::Parse {
            offset: 7,
            message: "expected ')'".into(),
        };
        assert!(e.to_string().contains("byte 7"));
    }
}
