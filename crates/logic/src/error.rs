//! Error types for the logic kernel.

use crate::span::Span;
use std::fmt;

/// Errors produced by the logic kernel: parsing, arity checking, and
/// resource limits during model enumeration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogicError {
    /// The parser encountered malformed input.
    Parse {
        /// Byte offset into the input where the error was detected.
        offset: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A predicate was applied to the wrong number of arguments.
    ArityMismatch {
        /// Name of the predicate.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
        /// Source range of the offending application.
        span: Span,
    },
    /// A name was looked up that the vocabulary does not contain.
    UnknownSymbol {
        /// The unresolved name.
        name: String,
        /// What kind of symbol was expected ("predicate" or "constant").
        kind: &'static str,
        /// Source range of the unresolved name.
        span: Span,
    },
    /// Model enumeration exceeded the caller-supplied limit.
    TooManyModels {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The formula mentions an atom outside the expected universe.
    AtomOutOfUniverse {
        /// Display form of the offending atom.
        atom: String,
    },
}

impl LogicError {
    /// The source range this error points at, if it carries one.
    ///
    /// [`LogicError::Parse`] yields a zero-width span at its offset; the
    /// resource-limit errors have no source location.
    pub fn span(&self) -> Option<Span> {
        match self {
            LogicError::Parse { offset, .. } => Some(Span::point(*offset)),
            LogicError::ArityMismatch { span, .. } | LogicError::UnknownSymbol { span, .. } => {
                Some(*span)
            }
            LogicError::TooManyModels { .. } | LogicError::AtomOutOfUniverse { .. } => None,
        }
    }

    /// Rebases any carried source location by `base` bytes.
    ///
    /// Used when a sub-slice of a larger statement was parsed: the error's
    /// offsets, which are relative to the sub-slice, become offsets into the
    /// enclosing statement.
    pub fn with_base_offset(self, base: usize) -> Self {
        match self {
            LogicError::Parse { offset, message } => LogicError::Parse {
                offset: offset + base,
                message,
            },
            LogicError::ArityMismatch {
                predicate,
                expected,
                got,
                span,
            } => LogicError::ArityMismatch {
                predicate,
                expected,
                got,
                span: span.shifted(base),
            },
            LogicError::UnknownSymbol { name, kind, span } => LogicError::UnknownSymbol {
                name,
                kind,
                span: span.shifted(base),
            },
            other => other,
        }
    }
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            LogicError::ArityMismatch {
                predicate,
                expected,
                got,
                ..
            } => write!(
                f,
                "predicate `{predicate}` has arity {expected} but was applied to {got} arguments"
            ),
            LogicError::UnknownSymbol { name, kind, .. } => {
                write!(f, "unknown {kind} `{name}`")
            }
            LogicError::TooManyModels { limit } => {
                write!(f, "model enumeration exceeded the limit of {limit} models")
            }
            LogicError::AtomOutOfUniverse { atom } => {
                write!(f, "atom `{atom}` lies outside the theory's atom universe")
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LogicError::ArityMismatch {
            predicate: "Orders".into(),
            expected: 3,
            got: 2,
            span: Span::new(0, 6),
        };
        let s = e.to_string();
        assert!(s.contains("Orders"));
        assert!(s.contains('3'));
        assert!(s.contains('2'));
    }

    #[test]
    fn spans_rebase() {
        let e = LogicError::UnknownSymbol {
            name: "S".into(),
            kind: "predicate",
            span: Span::new(2, 3),
        };
        assert_eq!(e.span(), Some(Span::new(2, 3)));
        assert_eq!(e.with_base_offset(10).span(), Some(Span::new(12, 13)));
        let p = LogicError::Parse {
            offset: 4,
            message: "boom".into(),
        };
        assert_eq!(p.with_base_offset(3).span(), Some(Span::point(7)));
        let l = LogicError::TooManyModels { limit: 9 };
        assert_eq!(l.clone().with_base_offset(5), l);
        assert_eq!(l.span(), None);
    }

    #[test]
    fn parse_error_reports_offset() {
        let e = LogicError::Parse {
            offset: 7,
            message: "expected ')'".into(),
        };
        assert!(e.to_string().contains("byte 7"));
    }
}
