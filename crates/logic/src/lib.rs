//! # winslett-logic
//!
//! The ground first-order logic kernel underlying the reproduction of
//! Winslett, *"A Model-Theoretic Approach to Updating Logical Databases"*
//! (PODS 1986).
//!
//! Everything in the non-axiomatic section of an extended relational theory
//! — and everything in an LDML update — is a **ground** well-formed formula:
//! no variables, no equality. Over a fixed finite universe of ground atomic
//! formulas, ground FOL *is* propositional logic, so this crate provides:
//!
//! * interned vocabularies of constants and predicates ([`Vocabulary`]),
//! * interned ground atoms ([`AtomTable`], [`AtomId`]),
//! * a formula AST generic over its leaf type ([`Formula`], [`Wff`]),
//! * a parser and pretty-printer for the concrete syntax used in the paper's
//!   examples ([`parse_wff`], [`display_wff`]),
//! * NNF / CNF conversion, including Tseitin encoding ([`cnf`]),
//! * a DPLL/CDCL SAT solver with two-watched-literal propagation ([`sat`]),
//! * model enumeration, both SAT-backed and brute-force ([`enumerate`]),
//! * dense truth valuations ([`BitSet`], [`Valuation`]).
//!
//! The unique-name and completion axioms of the paper are *structural* here:
//! distinct [`ConstId`]s denote distinct individuals, and the atom universe
//! registered in an [`AtomTable`] plays the role of the completion axioms'
//! disjunct lists (see `winslett-theory`). This matches the paper's remark
//! that "in an implementation … we would not actually store any of these
//! axioms".

pub mod access;
pub mod atoms;
pub mod bitset;
pub mod cnf;
pub mod enumerate;
pub mod error;
pub mod formula;
pub mod intern;
pub mod nnf;
pub mod parser;
pub mod printer;
pub mod sat;
pub mod session;
pub mod span;
pub mod symbols;
pub mod valuation;

pub use access::AccessSet;
pub use atoms::{AtomTable, GroundAtom};
pub use bitset::BitSet;
pub use cnf::{CnfFormula, Tseitin};
pub use enumerate::{enumerate_models, enumerate_models_brute, ModelLimit};
pub use error::LogicError;
pub use formula::{Formula, Polarity, Wff};
pub use intern::Interner;
pub use nnf::{forced_literals, to_nnf};
pub use parser::{parse_wff, ParseContext};
pub use printer::{display_wff, WffDisplay};
pub use sat::{backbone, Lit, SatResult, Solver, Var};
pub use session::{EntailmentSession, SessionStats};
pub use span::Span;
pub use symbols::{ConstId, PredId, Predicate, PredicateKind, Vocabulary};
pub use valuation::Valuation;

/// Identifier of an interned ground atomic formula.
///
/// Atom ids are dense `u32` indices into an [`AtomTable`]. Predicate
/// constants (the paper's auxiliary 0-ary predicates) receive atom ids from
/// the same space; they are distinguished by the [`PredicateKind`] of their
/// predicate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The dense index of this atom.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AtomId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}
