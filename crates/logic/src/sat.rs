//! A small CDCL SAT solver.
//!
//! The paper's equivalence theorems (Theorems 3 and 4) and its query
//! semantics require deciding satisfiability and validity of ground wffs,
//! and enumerating the models of a theory ("alternative worlds"). Over the
//! finite atom universe these are propositional problems; this module
//! provides a conflict-driven clause-learning solver in the MiniSat style:
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! backjumping, and VSIDS-like variable activities.
//!
//! The solver is deliberately one-shot per query: callers build a solver,
//! add clauses, and call [`Solver::solve`]. Model enumeration re-uses one
//! solver by adding blocking clauses between calls (see
//! [`crate::enumerate`]); [`Solver::add_clause`] backtracks to the root
//! level first, which makes that safe.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable together with a sign.
///
/// Encoded as `var * 2 + (1 if negated)` so literals index watch lists
/// directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    #[inline]
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[inline]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense code suitable for indexing (2 codes per variable).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "!x{}", self.var().0)
        }
    }
}

/// Outcome of [`Solver::solve`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; the vector holds one truth value per variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

const ACTIVITY_DECAY: f64 = 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;

/// A CDCL SAT solver.
///
/// ```
/// use winslett_logic::{Lit, SatResult, Solver, Var};
///
/// let mut s = Solver::new(2);
/// s.add_clause(&[Lit::pos(Var(0)), Lit::pos(Var(1))]); // x0 ∨ x1
/// s.add_clause(&[Lit::neg(Var(0))]);                   // ¬x0
/// match s.solve() {
///     SatResult::Sat(model) => assert!(!model[0] && model[1]),
///     SatResult::Unsat => unreachable!(),
/// }
/// ```
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// For each literal code, the indices of clauses currently watching it.
    watches: Vec<Vec<u32>>,
    assign: Vec<Option<bool>>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// The clause that implied each assignment (`None` for decisions).
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    /// `trail_lim[d]` = trail length when decision level `d+1` began.
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    /// Saved phases for decision polarity.
    phase: Vec<bool>,
    /// `false` once a top-level conflict has been derived.
    ok: bool,
    seen: Vec<bool>,
    /// Statistics: number of conflicts encountered.
    pub conflicts: u64,
    /// Statistics: number of decisions made.
    pub decisions: u64,
    /// Statistics: number of literal propagations.
    pub propagations: u64,
    /// Statistics: number of clauses learnt (and retained) from conflicts.
    pub learnt_clauses: u64,
}

impl Solver {
    /// Creates a solver over `num_vars` variables (indices `0..num_vars`).
    pub fn new(num_vars: usize) -> Self {
        Solver {
            num_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: vec![0.0; num_vars],
            act_inc: 1.0,
            phase: vec![false; num_vars],
            ok: true,
            seen: vec![false; num_vars],
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            learnt_clauses: 0,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the variable space to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        if n > self.num_vars {
            self.num_vars = n;
            self.watches.resize(n * 2, Vec::new());
            self.assign.resize(n, None);
            self.level.resize(n, 0);
            self.reason.resize(n, None);
            self.activity.resize(n, 0.0);
            self.phase.resize(n, false);
            self.seen.resize(n, false);
        }
    }

    #[inline]
    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|v| v == l.is_pos())
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (adding the empty clause, or a unit clause that
    /// conflicts at the root level).
    ///
    /// The solver backtracks to the root level before adding, so this may be
    /// called between [`Solver::solve`] calls (e.g. for blocking clauses).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack_to(0);

        // Normalize: sort, dedupe, drop root-level-false literals, detect
        // tautologies and root-level-true literals.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            debug_assert!(l.var().index() < self.num_vars, "literal out of range");
            if i + 1 < c.len() && c[i + 1] == l.negate() {
                return true; // tautology: trivially satisfied
            }
            match self.value(l) {
                Some(true) => return true, // satisfied at root level
                Some(false) => {}          // falsified at root: drop
                None => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(out[0], None);
                // Propagate eagerly so later add_clause calls see the
                // consequences at the root level.
                if self.propagate().is_some() {
                    self.ok = false;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(out);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>) -> u32 {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        self.clauses.push(lits);
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert!(self.value(l).is_none());
        let v = l.var().index();
        self.assign[v] = Some(l.is_pos());
        self.level[v] = self.current_level();
        self.reason[v] = reason;
        self.phase[v] = l.is_pos();
        self.trail.push(l);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            self.propagations += 1;
            let false_lit = lit.negate();
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i] as usize;
                // Make sure the falsified literal is in slot 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                let first = self.clauses[ci][0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != Some(false) {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watches[new_watch.code()].push(ci as u32);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting on `first`.
                match self.value(first) {
                    Some(false) => {
                        // Conflict: restore the watch list and report.
                        self.watches[false_lit.code()] = ws;
                        self.prop_head = self.trail.len();
                        return Some(ci as u32);
                    }
                    _ => {
                        self.enqueue(first, Some(ci as u32));
                        i += 1;
                    }
                }
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn backtrack_to(&mut self, target_level: u32) {
        while self.current_level() > target_level {
            let start = self.trail_lim.pop().expect("level > 0 implies limit");
            while self.trail.len() > start {
                let l = self.trail.pop().expect("trail shrink");
                let v = l.var().index();
                self.assign[v] = None;
                self.reason[v] = None;
            }
        }
        self.prop_head = self.trail.len().min(self.prop_head);
        if target_level == 0 {
            self.prop_head = self.prop_head.min(self.trail.len());
        }
    }

    fn bump_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.act_inc;
        if self.activity[v.index()] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a /= ACTIVITY_RESCALE;
            }
            self.act_inc /= ACTIVITY_RESCALE;
        }
    }

    fn decay_activity(&mut self) {
        self.act_inc /= ACTIVITY_DECAY;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let cur_level = self.current_level();

        let mut scratch: Vec<Lit> = Vec::new();
        loop {
            scratch.clear();
            scratch.extend_from_slice(&self.clauses[confl as usize]);
            for &q in &scratch {
                // When resolving on a trail literal `p`, skip `p` itself —
                // the reason clause contains it as its asserted literal.
                if Some(q) == p {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_activity(v);
                    if self.level[v.index()] == cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = lit.negate();
                break;
            }
            p = Some(lit);
            confl = self.reason[lit.var().index()]
                .expect("non-UIP literal at conflict level must have a reason");
        }

        // Compute the backjump level and clear the seen flags.
        let mut back_level = 0u32;
        let mut swap_pos = 1usize;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > back_level {
                back_level = lv;
                swap_pos = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, swap_pos);
        }
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, back_level)
    }

    fn decide(&mut self) -> bool {
        let mut best: Option<usize> = None;
        let mut best_act = f64::NEG_INFINITY;
        for v in 0..self.num_vars {
            if self.assign[v].is_none() && self.activity[v] > best_act {
                best = Some(v);
                best_act = self.activity[v];
            }
        }
        match best {
            None => false,
            Some(v) => {
                self.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let phase = self.phase[v];
                self.enqueue(Lit::new(Var(v as u32), phase), None);
                true
            }
        }
    }

    /// Runs the CDCL main loop to completion.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under *assumptions*: literals treated as forced decisions for
    /// this call only. Learnt clauses persist across calls (they follow
    /// from the clause set alone), so repeated assumption queries share
    /// work — the incremental pattern behind backbone computation and
    /// certain-atom extraction.
    ///
    /// Returns `Unsat` when the clauses are unsatisfiable *under the
    /// assumptions*; unless the clause set itself is unsatisfiable, the
    /// solver remains usable for further calls.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        self.prop_head = 0;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.current_level() == 0 {
                    // Conflict below every assumption: globally unsat.
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, back_level) = self.analyze(confl);
                self.backtrack_to(back_level);
                self.decay_activity();
                self.learnt_clauses += 1;
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    debug_assert_eq!(self.current_level(), 0);
                    if self.value(asserting) == Some(false) {
                        self.ok = false;
                        return SatResult::Unsat;
                    }
                    if self.value(asserting).is_none() {
                        self.enqueue(asserting, None);
                    }
                } else {
                    let ci = self.attach_clause(learnt);
                    if self.value(asserting).is_none() {
                        self.enqueue(asserting, Some(ci));
                    }
                }
            } else {
                // Install pending assumptions as decisions, one level each.
                let mut installed = false;
                let mut refuted = false;
                while self.current_level() < assumptions.len() as u32 {
                    let p = assumptions[self.current_level() as usize];
                    match self.value(p) {
                        Some(true) => {
                            // Already true: open an empty level so the
                            // assumption index keeps advancing.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            refuted = true;
                            break;
                        }
                        None => {
                            self.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, None);
                            installed = true;
                            break;
                        }
                    }
                }
                if refuted {
                    // The clause set (plus earlier assumptions) falsifies
                    // this assumption: unsat under assumptions only.
                    self.backtrack_to(0);
                    return SatResult::Unsat;
                }
                if installed {
                    continue;
                }
                if !self.decide() {
                    // All variables assigned without conflict: a model.
                    let model: Vec<bool> = self
                        .assign
                        .iter()
                        .map(|v| v.expect("complete assignment"))
                        .collect();
                    // Leave the solver clean for the next incremental call.
                    self.backtrack_to(0);
                    return SatResult::Sat(model);
                }
            }
        }
    }
}

/// Computes the *backbone* of a clause set over the first `num_vars`
/// variables: for each variable, `Some(value)` when every model assigns it
/// that value, `None` when both values occur. Returns `None` for the whole
/// result when the clauses are unsatisfiable.
///
/// Implementation: one initial model, then one assumption query per
/// still-undetermined candidate, pruning candidates by intersecting with
/// each discovered model — all on a single solver, so learnt clauses
/// accumulate across queries.
pub fn backbone(solver: &mut Solver, num_vars: usize) -> Option<Vec<Option<bool>>> {
    let first = match solver.solve() {
        SatResult::Sat(m) => m,
        SatResult::Unsat => return None,
    };
    // Candidate backbone literals: the first model's assignments.
    let mut candidate: Vec<Option<bool>> = first.iter().copied().map(Some).collect();
    let mut result: Vec<Option<bool>> = vec![None; num_vars];
    for v in 0..num_vars.min(candidate.len()) {
        let Some(val) = candidate[v] else { continue };
        // Can the variable take the opposite value?
        match solver.solve_with(&[Lit::new(Var(v as u32), !val)]) {
            SatResult::Unsat => {
                result[v] = Some(val);
            }
            SatResult::Sat(m) => {
                // Every variable that flipped is not backbone: prune.
                for (i, c) in candidate.iter_mut().enumerate() {
                    if let Some(cv) = *c {
                        if m.get(i) != Some(&cv) {
                            *c = None;
                        }
                    }
                }
            }
        }
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(v: i32) -> Lit {
        if v > 0 {
            Lit::pos(Var((v - 1) as u32))
        } else {
            Lit::neg(Var((-v - 1) as u32))
        }
    }

    /// Brute-force satisfiability check for cross-validation.
    fn brute_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        assert!(num_vars <= 20);
        'outer: for mask in 0u32..(1 << num_vars) {
            for c in clauses {
                let sat = c.iter().any(|&lit| {
                    let bit = (mask >> lit.var().0) & 1 == 1;
                    bit == lit.is_pos()
                });
                if !sat {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn check_model(model: &[bool], clauses: &[Vec<Lit>]) {
        for c in clauses {
            assert!(
                c.iter()
                    .any(|&lit| model[lit.var().index()] == lit.is_pos()),
                "model {model:?} violates clause {c:?}"
            );
        }
    }

    fn run(num_vars: usize, clauses: &[Vec<Lit>]) -> SatResult {
        let mut s = Solver::new(num_vars);
        for c in clauses {
            s.add_clause(c);
        }
        let r = s.solve();
        if let SatResult::Sat(m) = &r {
            check_model(m, clauses);
        }
        assert_eq!(
            r.is_sat(),
            brute_sat(num_vars, clauses),
            "disagrees with brute force"
        );
        r
    }

    #[test]
    fn lit_encoding() {
        let v = Var(3);
        assert_eq!(Lit::pos(v).var(), v);
        assert!(Lit::pos(v).is_pos());
        assert!(!Lit::neg(v).is_pos());
        assert_eq!(Lit::pos(v).negate(), Lit::neg(v));
        assert_eq!(Lit::neg(v).negate(), Lit::pos(v));
        assert_eq!(Lit::new(v, true), Lit::pos(v));
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(run(3, &[]).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new(1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn unit_clauses() {
        let r = run(2, &[vec![l(1)], vec![l(-2)]]);
        match r {
            SatResult::Sat(m) => {
                assert!(m[0]);
                assert!(!m[1]);
            }
            _ => panic!("expected sat"),
        }
    }

    #[test]
    fn contradictory_units_unsat() {
        assert_eq!(run(1, &[vec![l(1)], vec![l(-1)]]), SatResult::Unsat);
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new(2);
        assert!(s.add_clause(&[l(1), l(-1)]));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_literals_deduped() {
        assert!(run(1, &[vec![l(1), l(1), l(1)]]).is_sat());
    }

    #[test]
    fn chain_of_implications() {
        // x1 & (x1->x2) & ... & (x9->x10) forces all true.
        let mut clauses = vec![vec![l(1)]];
        for i in 1..10 {
            clauses.push(vec![l(-i), l(i + 1)]);
        }
        let r = run(10, &clauses);
        match r {
            SatResult::Sat(m) => assert!(m.iter().all(|&b| b)),
            _ => panic!("expected sat"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{ij}: pigeon i in hole j. 3 pigeons, 2 holes.
        // var index = i*2 + j + 1 (1-based for `l`).
        let p = |i: i32, j: i32| i * 2 + j + 1;
        let mut clauses = Vec::new();
        for i in 0..3 {
            clauses.push(vec![l(p(i, 0)), l(p(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![l(-p(i1, j)), l(-p(i2, j))]);
                }
            }
        }
        assert_eq!(run(6, &clauses), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        // Deterministic pseudo-random instance generation (xorshift).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let nv = 3 + (next() % 8) as usize; // 3..=10 vars
            let nc = 2 + (next() % 30) as usize;
            let mut clauses = Vec::with_capacity(nc);
            for _ in 0..nc {
                let width = 1 + (next() % 3) as usize;
                let mut c = Vec::with_capacity(width);
                for _ in 0..width {
                    let v = (next() % nv as u64) as u32;
                    let sign = next() % 2 == 0;
                    c.push(Lit::new(Var(v), sign));
                }
                clauses.push(c);
            }
            let _ = run(nv, &clauses); // run() asserts agreement with brute force
            let _ = trial;
        }
    }

    #[test]
    fn blocking_clauses_after_solve() {
        // Enumerate all 4 models of "no constraints over 2 vars" by blocking.
        let mut s = Solver::new(2);
        let mut models = Vec::new();
        while let SatResult::Sat(m) = s.solve() {
            {
                {
                    let block: Vec<Lit> = m
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| Lit::new(Var(i as u32), !b))
                        .collect();
                    models.push(m);
                    if !s.add_clause(&block) {
                        break;
                    }
                }
            }
        }
        assert_eq!(models.len(), 4);
        models.sort();
        models.dedup();
        assert_eq!(models.len(), 4);
    }

    #[test]
    fn assumptions_are_temporary() {
        // x0 ∨ x1; assuming ¬x0 forces x1; afterwards both free again.
        let mut s = Solver::new(2);
        s.add_clause(&[l(1), l(2)]);
        match s.solve_with(&[l(-1)]) {
            SatResult::Sat(m) => {
                assert!(!m[0]);
                assert!(m[1]);
            }
            SatResult::Unsat => panic!("satisfiable under assumption"),
        }
        // Contradictory assumptions: unsat under assumptions only.
        assert_eq!(s.solve_with(&[l(1), l(-1)]), SatResult::Unsat);
        // Solver still alive.
        assert!(s.solve().is_sat());
        assert!(s.solve_with(&[l(1)]).is_sat());
    }

    #[test]
    fn assumptions_respect_learnt_units() {
        let mut s = Solver::new(2);
        s.add_clause(&[l(1)]); // x0 forced
        assert_eq!(s.solve_with(&[l(-1)]), SatResult::Unsat);
        assert!(s.solve().is_sat()); // still globally sat
    }

    #[test]
    fn assumptions_match_clause_conditioning() {
        // Cross-check: solve_with(a) must equal solving a fresh solver with
        // the assumption added as a unit clause.
        let mut state = 0x600D_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..100 {
            let nv = 3 + (next() % 5) as usize;
            let nc = 2 + (next() % 15) as usize;
            let clauses: Vec<Vec<Lit>> = (0..nc)
                .map(|_| {
                    (0..(1 + next() % 3))
                        .map(|_| Lit::new(Var((next() % nv as u64) as u32), next() % 2 == 0))
                        .collect()
                })
                .collect();
            let mut incremental = Solver::new(nv);
            let mut base_ok = true;
            for c in &clauses {
                base_ok &= incremental.add_clause(c);
            }
            for trial in 0..4 {
                let a = Lit::new(Var((next() % nv as u64) as u32), next() % 2 == 0);
                let inc = incremental.solve_with(&[a]).is_sat();
                let mut fresh = Solver::new(nv);
                let mut ok = true;
                for c in &clauses {
                    ok &= fresh.add_clause(c);
                }
                ok &= fresh.add_clause(&[a]);
                let reference = ok && fresh.solve().is_sat();
                assert_eq!(inc, reference, "trial {trial}, assumption {a:?}");
            }
            let _ = base_ok;
        }
    }

    #[test]
    fn backbone_detects_forced_variables() {
        // x0, x0→x1, x2 free: backbone is {x0: true, x1: true, x2: –}.
        let mut s = Solver::new(3);
        s.add_clause(&[l(1)]);
        s.add_clause(&[l(-1), l(2)]);
        let bb = backbone(&mut s, 3).expect("satisfiable");
        assert_eq!(bb, vec![Some(true), Some(true), None]);
    }

    #[test]
    fn backbone_of_unsat_is_none() {
        let mut s = Solver::new(1);
        s.add_clause(&[l(1)]);
        s.add_clause(&[l(-1)]);
        assert_eq!(backbone(&mut s, 1), None);
    }

    #[test]
    fn backbone_matches_enumeration() {
        let mut state = 0xBB_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..100 {
            let nv = 2 + (next() % 5) as usize;
            let nc = 1 + (next() % 12) as usize;
            let clauses: Vec<Vec<Lit>> = (0..nc)
                .map(|_| {
                    (0..(1 + next() % 3))
                        .map(|_| Lit::new(Var((next() % nv as u64) as u32), next() % 2 == 0))
                        .collect()
                })
                .collect();
            // Reference: sweep all assignments.
            let mut always: Vec<Option<Option<bool>>> = vec![None; nv]; // None=unseen
            let mut any = false;
            'outer: for mask in 0u32..(1 << nv) {
                for c in &clauses {
                    if !c
                        .iter()
                        .any(|lit| ((mask >> lit.var().0) & 1 == 1) == lit.is_pos())
                    {
                        continue 'outer;
                    }
                }
                any = true;
                for (v, slot) in always.iter_mut().enumerate() {
                    let bit = (mask >> v) & 1 == 1;
                    *slot = match *slot {
                        None => Some(Some(bit)),
                        Some(Some(prev)) if prev == bit => Some(Some(bit)),
                        _ => Some(None),
                    };
                }
            }
            let mut s = Solver::new(nv);
            let mut ok = true;
            for c in &clauses {
                ok &= s.add_clause(c);
            }
            let bb = backbone(&mut s, nv);
            if !any {
                assert_eq!(bb, None);
            } else {
                let expected: Vec<Option<bool>> =
                    always.iter().map(|o| o.unwrap_or(None)).collect();
                assert_eq!(bb, Some(expected), "clauses: {clauses:?} ok: {ok}");
            }
        }
    }

    #[test]
    fn ensure_vars_grows() {
        let mut s = Solver::new(1);
        s.ensure_vars(5);
        assert!(s.add_clause(&[l(5)]));
        assert!(s.solve().is_sat());
    }
}
