//! Negation normal form and small-formula semantic analysis.
//!
//! Utilities used by the §4 simplifier: pushing negations down to literals
//! ([`to_nnf`]) and extracting *forced literals* from small formulas
//! ([`forced_literals`]) — atoms whose truth value is the same in every
//! satisfying valuation of the formula, so `f ≡ lit ∧ f[lit]` and the unit
//! can be split out for propagation.

use crate::formula::Formula;

/// Converts a formula to negation normal form: negations appear only
/// directly above atoms, and `→`/`↔` are expanded. Semantics-preserving.
pub fn to_nnf<A: Copy + Ord>(w: &Formula<A>) -> Formula<A> {
    nnf(w, false)
}

fn nnf<A: Copy + Ord>(w: &Formula<A>, negate: bool) -> Formula<A> {
    match w {
        Formula::Truth(b) => Formula::Truth(*b != negate),
        Formula::Atom(a) => {
            if negate {
                Formula::Atom(*a).not()
            } else {
                Formula::Atom(*a)
            }
        }
        Formula::Not(x) => nnf(x, !negate),
        Formula::And(xs) => {
            let parts: Vec<_> = xs.iter().map(|x| nnf(x, negate)).collect();
            if negate {
                Formula::or(parts)
            } else {
                Formula::and(parts)
            }
        }
        Formula::Or(xs) => {
            let parts: Vec<_> = xs.iter().map(|x| nnf(x, negate)).collect();
            if negate {
                Formula::and(parts)
            } else {
                Formula::or(parts)
            }
        }
        Formula::Implies(a, b) => {
            // a → b ≡ ¬a ∨ b; negated: a ∧ ¬b.
            if negate {
                Formula::and(vec![nnf(a, false), nnf(b, true)])
            } else {
                Formula::or(vec![nnf(a, true), nnf(b, false)])
            }
        }
        Formula::Iff(a, b) => {
            // a ↔ b ≡ (a ∧ b) ∨ (¬a ∧ ¬b); negated: (a ∧ ¬b) ∨ (¬a ∧ b).
            if negate {
                Formula::or(vec![
                    Formula::and(vec![nnf(a, false), nnf(b, true)]),
                    Formula::and(vec![nnf(a, true), nnf(b, false)]),
                ])
            } else {
                Formula::or(vec![
                    Formula::and(vec![nnf(a, false), nnf(b, false)]),
                    Formula::and(vec![nnf(a, true), nnf(b, true)]),
                ])
            }
        }
    }
}

/// For a formula over at most `max_atoms` distinct atoms, computes the
/// literals it forces: `(atom, value)` pairs such that every satisfying
/// valuation assigns `atom := value`. Returns `None` when the formula is
/// too large to sweep or has no satisfying valuation at all (the caller
/// should treat unsatisfiable formulas separately).
pub fn forced_literals<A: Copy + Ord>(w: &Formula<A>, max_atoms: usize) -> Option<Vec<(A, bool)>> {
    let atoms: Vec<A> = w.atom_set().into_iter().collect();
    if atoms.len() > max_atoms || atoms.len() > 20 {
        return None;
    }
    let mut always_true = vec![true; atoms.len()];
    let mut always_false = vec![true; atoms.len()];
    let mut satisfiable = false;
    for mask in 0u32..(1u32 << atoms.len()) {
        let ok = w.eval(&mut |a: &A| {
            let i = atoms.iter().position(|x| x == a).expect("atom in set");
            (mask >> i) & 1 == 1
        });
        if ok {
            satisfiable = true;
            for (i, _) in atoms.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    always_false[i] = false;
                } else {
                    always_true[i] = false;
                }
            }
        }
    }
    if !satisfiable {
        return None;
    }
    let mut out = Vec::new();
    for (i, &a) in atoms.iter().enumerate() {
        if always_true[i] {
            out.push((a, true));
        } else if always_false[i] {
            out.push((a, false));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomId, Wff};

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    fn equivalent(x: &Wff, y: &Wff, n: usize) -> bool {
        (0u32..(1 << n)).all(|mask| {
            let mut env = |at: &AtomId| (mask >> at.0) & 1 == 1;
            x.eval(&mut env) == y.eval(&mut env)
        })
    }

    #[test]
    fn nnf_pushes_negations_to_literals() {
        let w = Wff::implies(Wff::and2(a(0), a(1)), Wff::iff(a(2), a(0))).not();
        let n = to_nnf(&w);
        assert!(equivalent(&w, &n, 3));
        // No Not above anything but an atom.
        fn check(w: &Wff) {
            match w {
                Formula::Not(x) => assert!(matches!(**x, Formula::Atom(_)), "bad NNF: {w:?}"),
                Formula::And(xs) | Formula::Or(xs) => xs.iter().for_each(check),
                Formula::Implies(_, _) | Formula::Iff(_, _) => {
                    panic!("connective survived NNF: {w:?}")
                }
                _ => {}
            }
        }
        check(&n);
    }

    #[test]
    fn nnf_handles_truth_values() {
        assert_eq!(to_nnf(&Wff::t().not()), Wff::f());
        assert_eq!(to_nnf(&Wff::implies(a(0), Wff::f())), a(0).not());
    }

    #[test]
    fn nnf_random_equivalence() {
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let w = random(&mut next, 3);
            assert!(equivalent(&w, &to_nnf(&w), 4), "nnf broke {w:?}");
        }
    }

    fn random(next: &mut impl FnMut() -> u64, depth: usize) -> Wff {
        if depth == 0 || next().is_multiple_of(3) {
            return match next() % 6 {
                0 => Wff::t(),
                1 => Wff::f(),
                _ => a((next() % 4) as u32),
            };
        }
        match next() % 5 {
            0 => random(next, depth - 1).not(),
            1 => Formula::And(vec![random(next, depth - 1), random(next, depth - 1)]),
            2 => Formula::Or(vec![random(next, depth - 1), random(next, depth - 1)]),
            3 => Wff::implies(random(next, depth - 1), random(next, depth - 1)),
            _ => Wff::iff(random(next, depth - 1), random(next, depth - 1)),
        }
    }

    #[test]
    fn forced_literals_found() {
        // a ∧ (b ∨ c): forces a, nothing else.
        let w = Formula::And(vec![a(0), Formula::Or(vec![a(1), a(2)])]);
        let forced = forced_literals(&w, 8).unwrap();
        assert_eq!(forced, vec![(AtomId(0), true)]);
        // ¬a ∧ (a ∨ b): forces ¬a and b.
        let w = Formula::And(vec![a(0).not(), Formula::Or(vec![a(0), a(1)])]);
        let mut forced = forced_literals(&w, 8).unwrap();
        forced.sort();
        assert_eq!(forced, vec![(AtomId(0), false), (AtomId(1), true)]);
    }

    #[test]
    fn forced_literals_none_when_free() {
        let w = Formula::Or(vec![a(0), a(1)]);
        assert_eq!(forced_literals(&w, 8).unwrap(), vec![]);
    }

    #[test]
    fn forced_literals_unsat_or_oversized() {
        let w = Formula::And(vec![a(0), a(0).not()]);
        assert_eq!(forced_literals(&w, 8), None); // unsat
        let wide = Formula::Or((0..10).map(a).collect());
        assert_eq!(forced_literals(&wide, 4), None); // too many atoms
    }
}
