//! Ground well-formed formulas.
//!
//! The non-axiomatic section of an extended relational theory "may be any
//! finite set of wffs of L that do not contain variables or the equality
//! predicate" (§2). [`Formula`] is that wff language: truth constants,
//! atoms, `¬`, `∧`, `∨`, `→`, `↔`.
//!
//! The type is generic over its leaf type `A` so the same machinery serves
//! formulas over interned atoms ([`Wff`] = `Formula<AtomId>`) and formulas
//! over storage slots in the indexed formula store of `winslett-theory`.

use crate::AtomId;
use std::collections::BTreeSet;

/// A ground well-formed formula with leaves of type `A`.
///
/// `And`/`Or` are n-ary to keep trees shallow; `and(vec![])` is `T` and
/// `or(vec![])` is `F`, the usual identities.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula<A> {
    /// The truth value `T` (true) or `F` (false).
    Truth(bool),
    /// A ground atomic formula.
    Atom(A),
    /// Negation.
    Not(Box<Formula<A>>),
    /// N-ary conjunction.
    And(Vec<Formula<A>>),
    /// N-ary disjunction.
    Or(Vec<Formula<A>>),
    /// Material implication.
    Implies(Box<Formula<A>>, Box<Formula<A>>),
    /// Biconditional.
    Iff(Box<Formula<A>>, Box<Formula<A>>),
}

/// A wff over interned ground atoms — the workhorse formula type.
pub type Wff = Formula<AtomId>;

/// Occurrence polarity of an atom within a formula.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Polarity {
    /// Occurs only under an even number of negations.
    Positive,
    /// Occurs only under an odd number of negations.
    Negative,
    /// Occurs with both polarities (or under `↔`, which mixes them).
    Both,
}

impl Polarity {
    fn join(self, other: Polarity) -> Polarity {
        if self == other {
            self
        } else {
            Polarity::Both
        }
    }

    fn flip(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
            Polarity::Both => Polarity::Both,
        }
    }
}

impl<A> Formula<A> {
    /// The formula `T`.
    pub fn t() -> Self {
        Formula::Truth(true)
    }

    /// The formula `F`.
    pub fn f() -> Self {
        Formula::Truth(false)
    }

    /// An atom leaf.
    pub fn atom(a: A) -> Self {
        Formula::Atom(a)
    }

    /// Negation, without simplification.
    #[allow(clippy::should_implement_trait)] // `w.not()` reads like the logic
    pub fn not(self) -> Self {
        Formula::Not(Box::new(self))
    }

    /// N-ary conjunction, recursively flattening nested `And`s and dropping
    /// `T`s. Returns `F` eagerly if any conjunct is `F`.
    pub fn and(parts: Vec<Formula<A>>) -> Self {
        let mut out = Vec::with_capacity(parts.len());
        let mut stack: Vec<Formula<A>> = parts.into_iter().rev().collect();
        while let Some(p) = stack.pop() {
            match p {
                Formula::Truth(true) => {}
                Formula::Truth(false) => return Formula::f(),
                Formula::And(inner) => stack.extend(inner.into_iter().rev()),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::t(),
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// N-ary disjunction, recursively flattening nested `Or`s and dropping
    /// `F`s. Returns `T` eagerly if any disjunct is `T`.
    pub fn or(parts: Vec<Formula<A>>) -> Self {
        let mut out = Vec::with_capacity(parts.len());
        let mut stack: Vec<Formula<A>> = parts.into_iter().rev().collect();
        while let Some(p) = stack.pop() {
            match p {
                Formula::Truth(false) => {}
                Formula::Truth(true) => return Formula::t(),
                Formula::Or(inner) => stack.extend(inner.into_iter().rev()),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::f(),
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Binary conjunction.
    pub fn and2(a: Formula<A>, b: Formula<A>) -> Self {
        Formula::and(vec![a, b])
    }

    /// Binary disjunction.
    pub fn or2(a: Formula<A>, b: Formula<A>) -> Self {
        Formula::or(vec![a, b])
    }

    /// Implication `a → b`.
    pub fn implies(a: Formula<A>, b: Formula<A>) -> Self {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Biconditional `a ↔ b`.
    pub fn iff(a: Formula<A>, b: Formula<A>) -> Self {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    /// Number of AST nodes — the size measure used for the O(g) growth
    /// accounting of §3.6.
    pub fn size(&self) -> usize {
        match self {
            Formula::Truth(_) | Formula::Atom(_) => 1,
            Formula::Not(x) => 1 + x.size(),
            Formula::And(xs) | Formula::Or(xs) => 1 + xs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(a, b) | Formula::Iff(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Visits every atom leaf.
    pub fn for_each_atom<'a, F: FnMut(&'a A)>(&'a self, f: &mut F) {
        match self {
            Formula::Truth(_) => {}
            Formula::Atom(a) => f(a),
            Formula::Not(x) => x.for_each_atom(f),
            Formula::And(xs) | Formula::Or(xs) => {
                for x in xs {
                    x.for_each_atom(f);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.for_each_atom(f);
                b.for_each_atom(f);
            }
        }
    }

    /// Total number of atom occurrences (with multiplicity). This is the
    /// paper's `g` when applied to the wffs of an update.
    pub fn num_atom_occurrences(&self) -> usize {
        let mut n = 0;
        self.for_each_atom(&mut |_| n += 1);
        n
    }

    /// Rewrites every leaf through `f`, preserving structure.
    pub fn map_atoms<B, F: FnMut(&A) -> B>(&self, f: &mut F) -> Formula<B> {
        match self {
            Formula::Truth(b) => Formula::Truth(*b),
            Formula::Atom(a) => Formula::Atom(f(a)),
            Formula::Not(x) => Formula::Not(Box::new(x.map_atoms(f))),
            Formula::And(xs) => Formula::And(xs.iter().map(|x| x.map_atoms(f)).collect()),
            Formula::Or(xs) => Formula::Or(xs.iter().map(|x| x.map_atoms(f)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.map_atoms(f)), Box::new(b.map_atoms(f)))
            }
            Formula::Iff(a, b) => Formula::Iff(Box::new(a.map_atoms(f)), Box::new(b.map_atoms(f))),
        }
    }

    /// Replaces every leaf by a whole sub-formula through `f`.
    pub fn subst_atoms<B, F: FnMut(&A) -> Formula<B>>(&self, f: &mut F) -> Formula<B> {
        match self {
            Formula::Truth(b) => Formula::Truth(*b),
            Formula::Atom(a) => f(a),
            Formula::Not(x) => Formula::Not(Box::new(x.subst_atoms(f))),
            Formula::And(xs) => Formula::And(xs.iter().map(|x| x.subst_atoms(f)).collect()),
            Formula::Or(xs) => Formula::Or(xs.iter().map(|x| x.subst_atoms(f)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.subst_atoms(f)), Box::new(b.subst_atoms(f)))
            }
            Formula::Iff(a, b) => {
                Formula::Iff(Box::new(a.subst_atoms(f)), Box::new(b.subst_atoms(f)))
            }
        }
    }

    /// Evaluates the formula under a truth assignment for the leaves.
    pub fn eval<F: FnMut(&A) -> bool>(&self, f: &mut F) -> bool {
        match self {
            Formula::Truth(b) => *b,
            Formula::Atom(a) => f(a),
            Formula::Not(x) => !x.eval(f),
            Formula::And(xs) => xs.iter().all(|x| x.eval(f)),
            Formula::Or(xs) => xs.iter().any(|x| x.eval(f)),
            Formula::Implies(a, b) => !a.eval(f) || b.eval(f),
            Formula::Iff(a, b) => a.eval(f) == b.eval(f),
        }
    }
}

/// Negation of an already-constant-folded formula, folding `¬T`/`¬F`.
fn fold_not<A>(x: Formula<A>) -> Formula<A> {
    match x {
        Formula::Truth(b) => Formula::Truth(!b),
        other => Formula::Not(Box::new(other)),
    }
}

impl<A: Copy + Ord> Formula<A> {
    /// The set of distinct atoms occurring in the formula, in leaf order
    /// (sorted). For an update `INSERT ω WHERE φ` this is how the paper's
    /// "ground atomic formulas of ω" are computed.
    pub fn atom_set(&self) -> BTreeSet<A> {
        let mut set = BTreeSet::new();
        self.for_each_atom(&mut |a| {
            set.insert(*a);
        });
        set
    }

    /// Whether the atom `a` occurs anywhere in the formula.
    pub fn contains_atom(&self, a: A) -> bool {
        let mut found = false;
        self.for_each_atom(&mut |x| found |= *x == a);
        found
    }

    /// Occurrence polarity of `a`, or `None` if it does not occur.
    ///
    /// `↔` and the antecedents of `→` mix polarities in the usual way.
    pub fn polarity_of(&self, a: A) -> Option<Polarity> {
        fn go<A: Copy + Ord>(f: &Formula<A>, a: A, pol: Polarity) -> Option<Polarity> {
            match f {
                Formula::Truth(_) => None,
                Formula::Atom(x) => (*x == a).then_some(pol),
                Formula::Not(x) => go(x, a, pol.flip()),
                Formula::And(xs) | Formula::Or(xs) => {
                    let mut acc: Option<Polarity> = None;
                    for x in xs {
                        if let Some(p) = go(x, a, pol) {
                            acc = Some(acc.map_or(p, |q| q.join(p)));
                        }
                    }
                    acc
                }
                Formula::Implies(l, r) => {
                    let left = go(l, a, pol.flip());
                    let right = go(r, a, pol);
                    match (left, right) {
                        (Some(p), Some(q)) => Some(p.join(q)),
                        (x, None) => x,
                        (None, y) => y,
                    }
                }
                Formula::Iff(l, r) => {
                    // Each side occurs both positively and negatively.
                    let any = l.contains_atom(a) || r.contains_atom(a);
                    any.then_some(Polarity::Both)
                }
            }
        }
        go(self, a, Polarity::Positive)
    }

    /// Substitutes atom `from` by atom `to` throughout. This is the paper's
    /// substitution `(α)^{from}_{to}` used by GUA Step 2 (at the semantic
    /// level; the indexed store performs the same operation in O(1)).
    pub fn rename_atom(&self, from: A, to: A) -> Formula<A> {
        self.map_atoms(&mut |x| if *x == from { to } else { *x })
    }

    /// Assigns a fixed truth value to atom `a` and constant-folds — the
    /// Shannon cofactor used by simplification and predicate-constant
    /// elimination.
    pub fn assign(&self, a: A, value: bool) -> Formula<A> {
        self.subst_atoms(&mut |x| {
            if *x == a {
                Formula::Truth(value)
            } else {
                Formula::Atom(*x)
            }
        })
        .fold_constants()
    }

    /// Propagates truth constants: `T ∧ x ⇒ x`, `¬F ⇒ T`, etc. The result
    /// contains no `Truth` node unless it *is* a `Truth` node.
    pub fn fold_constants(&self) -> Formula<A> {
        match self {
            Formula::Truth(b) => Formula::Truth(*b),
            Formula::Atom(a) => Formula::Atom(*a),
            Formula::Not(x) => match x.fold_constants() {
                Formula::Truth(b) => Formula::Truth(!b),
                other => Formula::Not(Box::new(other)),
            },
            Formula::And(xs) => Formula::and(xs.iter().map(Formula::fold_constants).collect()),
            Formula::Or(xs) => Formula::or(xs.iter().map(Formula::fold_constants).collect()),
            Formula::Implies(a, b) => match (a.fold_constants(), b.fold_constants()) {
                (Formula::Truth(false), _) => Formula::t(),
                (Formula::Truth(true), y) => y,
                (_, Formula::Truth(true)) => Formula::t(),
                (x, Formula::Truth(false)) => fold_not(x),
                (x, y) => Formula::Implies(Box::new(x), Box::new(y)),
            },
            Formula::Iff(a, b) => match (a.fold_constants(), b.fold_constants()) {
                (Formula::Truth(true), y) => y,
                (x, Formula::Truth(true)) => x,
                (Formula::Truth(false), y) => fold_not(y),
                (x, Formula::Truth(false)) => fold_not(x),
                (x, y) => Formula::Iff(Box::new(x), Box::new(y)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    #[test]
    fn and_or_identities() {
        assert_eq!(Wff::and(vec![]), Wff::t());
        assert_eq!(Wff::or(vec![]), Wff::f());
        assert_eq!(Wff::and(vec![a(1)]), a(1));
        assert_eq!(Wff::or(vec![a(1)]), a(1));
    }

    #[test]
    fn and_short_circuits_on_false() {
        assert_eq!(Wff::and(vec![a(1), Wff::f(), a(2)]), Wff::f());
        assert_eq!(Wff::or(vec![a(1), Wff::t(), a(2)]), Wff::t());
    }

    #[test]
    fn flattening() {
        let nested = Wff::And(vec![a(1), Wff::And(vec![a(2), a(3)])]);
        let flat = Wff::and(vec![nested]);
        assert_eq!(flat, Wff::And(vec![a(1), a(2), a(3)]));
    }

    #[test]
    fn eval_truth_tables() {
        let assignments = [(false, false), (false, true), (true, false), (true, true)];
        for (va, vb) in assignments {
            let mut env = |x: &AtomId| if x.0 == 0 { va } else { vb };
            assert_eq!(Wff::and2(a(0), a(1)).eval(&mut env), va && vb);
            assert_eq!(Wff::or2(a(0), a(1)).eval(&mut env), va || vb);
            assert_eq!(Wff::implies(a(0), a(1)).eval(&mut env), !va || vb);
            assert_eq!(Wff::iff(a(0), a(1)).eval(&mut env), va == vb);
            assert_eq!(a(0).not().eval(&mut env), !va);
        }
    }

    #[test]
    fn atom_set_and_occurrences() {
        let f = Wff::and2(Wff::or2(a(3), a(1)), a(3).not());
        assert_eq!(
            f.atom_set().into_iter().collect::<Vec<_>>(),
            vec![AtomId(1), AtomId(3)]
        );
        assert_eq!(f.num_atom_occurrences(), 3);
        assert!(f.contains_atom(AtomId(3)));
        assert!(!f.contains_atom(AtomId(2)));
    }

    #[test]
    fn polarity_basic() {
        let f = Wff::and2(a(1), a(2).not());
        assert_eq!(f.polarity_of(AtomId(1)), Some(Polarity::Positive));
        assert_eq!(f.polarity_of(AtomId(2)), Some(Polarity::Negative));
        assert_eq!(f.polarity_of(AtomId(9)), None);
    }

    #[test]
    fn polarity_through_implication() {
        // In a → b, a is negative and b is positive.
        let f = Wff::implies(a(1), a(2));
        assert_eq!(f.polarity_of(AtomId(1)), Some(Polarity::Negative));
        assert_eq!(f.polarity_of(AtomId(2)), Some(Polarity::Positive));
        // a occurring on both sides mixes.
        let g = Wff::implies(a(1), a(1));
        assert_eq!(g.polarity_of(AtomId(1)), Some(Polarity::Both));
    }

    #[test]
    fn polarity_iff_is_both() {
        let f = Wff::iff(a(1), a(2));
        assert_eq!(f.polarity_of(AtomId(1)), Some(Polarity::Both));
    }

    #[test]
    fn rename_atom_renames_all_occurrences() {
        let f = Wff::or2(a(1), Wff::and2(a(1), a(2)));
        let g = f.rename_atom(AtomId(1), AtomId(7));
        assert!(!g.contains_atom(AtomId(1)));
        assert_eq!(g.num_atom_occurrences(), 3);
        assert!(g.contains_atom(AtomId(7)));
    }

    #[test]
    fn assign_cofactor() {
        // (a ∨ b)[a := F] = b ; (a ∨ b)[a := T] = T.
        let f = Wff::or2(a(1), a(2));
        assert_eq!(f.assign(AtomId(1), false), a(2));
        assert_eq!(f.assign(AtomId(1), true), Wff::t());
    }

    #[test]
    fn fold_constants_implication_and_iff() {
        assert_eq!(Wff::implies(Wff::f(), a(1)).fold_constants(), Wff::t());
        assert_eq!(Wff::implies(Wff::t(), a(1)).fold_constants(), a(1));
        assert_eq!(Wff::implies(a(1), Wff::f()).fold_constants(), a(1).not());
        assert_eq!(Wff::iff(Wff::t(), a(1)).fold_constants(), a(1));
        assert_eq!(Wff::iff(Wff::f(), a(1)).fold_constants(), a(1).not());
    }

    #[test]
    fn size_counts_nodes() {
        let f = Wff::and2(a(1), a(2).not()); // And(a1, Not(a2)) = 4 nodes
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn subst_atoms_replaces_with_formulas() {
        let f = Wff::or2(a(1), a(2));
        let g = f.subst_atoms(&mut |x: &AtomId| {
            if x.0 == 1 {
                Wff::and2(a(10), a(11))
            } else {
                Wff::atom(*x)
            }
        });
        assert!(g.contains_atom(AtomId(10)));
        assert!(g.contains_atom(AtomId(2)));
        assert!(!g.contains_atom(AtomId(1)));
    }
}
