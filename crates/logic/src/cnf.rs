//! CNF conversion via the Tseitin transformation.
//!
//! Ground wffs are converted to clause form before being handed to the SAT
//! solver. Variables `0..num_atoms` correspond one-to-one with
//! [`AtomId`](crate::AtomId)s;
//! auxiliary Tseitin variables are allocated above the atom universe, so
//! projecting a model onto `0..num_atoms` recovers the truth valuation of
//! the ground atomic formulas — exactly an *alternative world* candidate.
//!
//! Because each auxiliary variable is functionally determined by the atom
//! variables, projected model enumeration with blocking clauses (see
//! [`crate::enumerate`]) visits each alternative world exactly once.

use crate::formula::Formula;
use crate::sat::{Lit, Solver, Var};
use crate::Wff;

/// A formula in conjunctive normal form.
#[derive(Clone, Default, Debug)]
pub struct CnfFormula {
    /// Total number of variables, including auxiliary ones.
    pub num_vars: usize,
    /// The clauses; an empty clause marks unsatisfiability.
    pub clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Builds a solver containing these clauses.
    pub fn into_solver(&self) -> Solver {
        let mut s = Solver::new(self.num_vars);
        for c in &self.clauses {
            if !s.add_clause(c) {
                break; // already unsat; solver remembers
            }
        }
        s
    }
}

/// Incremental Tseitin encoder.
///
/// Assert any number of wffs as true; the resulting [`CnfFormula`] is
/// satisfiable exactly when their conjunction is, and its models restricted
/// to `0..num_atoms` are exactly the models of the conjunction.
pub struct Tseitin {
    num_atoms: usize,
    next_var: u32,
    clauses: Vec<Vec<Lit>>,
    /// Lazily allocated always-true variable for `Truth` leaves.
    const_true: Option<Var>,
}

impl Tseitin {
    /// Creates an encoder whose first `num_atoms` variables are the atom
    /// universe.
    pub fn new(num_atoms: usize) -> Self {
        Tseitin {
            num_atoms,
            next_var: u32::try_from(num_atoms).expect("atom universe too large"),
            clauses: Vec::new(),
            const_true: None,
        }
    }

    /// The number of ground-atom variables.
    pub fn num_atoms(&self) -> usize {
        self.num_atoms
    }

    /// Total number of variables allocated so far, auxiliaries included.
    pub fn num_vars(&self) -> usize {
        self.next_var as usize
    }

    /// Drains the clauses accumulated since the last call, leaving the
    /// encoder ready for more input. Used by incremental consumers that
    /// stream clauses into a live solver instead of calling
    /// [`Tseitin::finish`].
    pub fn take_clauses(&mut self) -> Vec<Vec<Lit>> {
        std::mem::take(&mut self.clauses)
    }

    fn fresh(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        v
    }

    fn true_lit(&mut self) -> Lit {
        match self.const_true {
            Some(v) => Lit::pos(v),
            None => {
                let v = self.fresh();
                self.const_true = Some(v);
                self.clauses.push(vec![Lit::pos(v)]);
                Lit::pos(v)
            }
        }
    }

    /// Encodes `wff` to a literal equisatisfiably representing it.
    pub fn encode(&mut self, wff: &Wff) -> Lit {
        match wff {
            Formula::Truth(true) => self.true_lit(),
            Formula::Truth(false) => self.true_lit().negate(),
            Formula::Atom(a) => {
                debug_assert!(
                    a.index() < self.num_atoms,
                    "atom {a:?} outside declared universe of {}",
                    self.num_atoms
                );
                Lit::pos(Var(a.0))
            }
            Formula::Not(x) => self.encode(x).negate(),
            Formula::And(xs) => {
                let lits: Vec<Lit> = xs.iter().map(|x| self.encode(x)).collect();
                self.encode_and(&lits)
            }
            Formula::Or(xs) => {
                let lits: Vec<Lit> = xs.iter().map(|x| self.encode(x)).collect();
                self.encode_or(&lits)
            }
            Formula::Implies(a, b) => {
                let la = self.encode(a).negate();
                let lb = self.encode(b);
                self.encode_or(&[la, lb])
            }
            Formula::Iff(a, b) => {
                let la = self.encode(a);
                let lb = self.encode(b);
                let v = self.fresh();
                let lv = Lit::pos(v);
                // v ↔ (la ↔ lb)
                self.clauses.push(vec![lv.negate(), la.negate(), lb]);
                self.clauses.push(vec![lv.negate(), la, lb.negate()]);
                self.clauses.push(vec![lv, la, lb]);
                self.clauses.push(vec![lv, la.negate(), lb.negate()]);
                lv
            }
        }
    }

    fn encode_and(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.true_lit(),
            1 => lits[0],
            _ => {
                let v = self.fresh();
                let lv = Lit::pos(v);
                let mut long = Vec::with_capacity(lits.len() + 1);
                long.push(lv);
                for &l in lits {
                    self.clauses.push(vec![lv.negate(), l]);
                    long.push(l.negate());
                }
                self.clauses.push(long);
                lv
            }
        }
    }

    fn encode_or(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.true_lit().negate(),
            1 => lits[0],
            _ => {
                let v = self.fresh();
                let lv = Lit::pos(v);
                let mut long = Vec::with_capacity(lits.len() + 1);
                long.push(lv.negate());
                for &l in lits {
                    self.clauses.push(vec![lv, l.negate()]);
                    long.push(l);
                }
                self.clauses.push(long);
                lv
            }
        }
    }

    /// Asserts that `wff` is true.
    pub fn assert_true(&mut self, wff: &Wff) {
        // Shortcut top-level conjunctions to avoid needless aux variables.
        match wff {
            Formula::Truth(true) => {}
            Formula::Truth(false) => self.clauses.push(Vec::new()),
            Formula::And(xs) => {
                for x in xs {
                    self.assert_true(x);
                }
            }
            Formula::Or(xs) => {
                let lits: Vec<Lit> = xs.iter().map(|x| self.encode(x)).collect();
                self.clauses.push(lits);
            }
            Formula::Implies(a, b) => {
                let la = self.encode(a).negate();
                let lb = self.encode(b);
                self.clauses.push(vec![la, lb]);
            }
            other => {
                let l = self.encode(other);
                self.clauses.push(vec![l]);
            }
        }
    }

    /// Asserts that `wff` is false.
    pub fn assert_false(&mut self, wff: &Wff) {
        let l = self.encode(wff);
        self.clauses.push(vec![l.negate()]);
    }

    /// Finishes encoding, producing the CNF.
    pub fn finish(self) -> CnfFormula {
        CnfFormula {
            num_vars: self.next_var as usize,
            clauses: self.clauses,
        }
    }
}

/// Convenience: is the conjunction of `wffs` satisfiable over a universe of
/// `num_atoms` atoms?
pub fn satisfiable(wffs: &[&Wff], num_atoms: usize) -> bool {
    let mut ts = Tseitin::new(num_atoms);
    for w in wffs {
        ts.assert_true(w);
    }
    ts.finish().into_solver().solve().is_sat()
}

/// Convenience: is `wff` valid (true under every assignment)?
pub fn valid(wff: &Wff, num_atoms: usize) -> bool {
    let mut ts = Tseitin::new(num_atoms);
    ts.assert_false(wff);
    !ts.finish().into_solver().solve().is_sat()
}

/// Convenience: does the conjunction of `premises` entail `conclusion`?
pub fn entails(premises: &[&Wff], conclusion: &Wff, num_atoms: usize) -> bool {
    let mut ts = Tseitin::new(num_atoms);
    for p in premises {
        ts.assert_true(p);
    }
    ts.assert_false(conclusion);
    !ts.finish().into_solver().solve().is_sat()
}

/// Convenience: are two wffs logically equivalent?
pub fn equivalent(a: &Wff, b: &Wff, num_atoms: usize) -> bool {
    let mut ts = Tseitin::new(num_atoms);
    let la = ts.encode(a);
    let lb = ts.encode(b);
    // Assert a XOR b; equivalence holds iff that is unsatisfiable.
    ts.clauses.push(vec![la, lb]);
    ts.clauses.push(vec![la.negate(), lb.negate()]);
    !ts.finish().into_solver().solve().is_sat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtomId;

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    /// Checks Tseitin equisatisfiability against direct evaluation: for
    /// every assignment of the atoms, the wff is true iff the CNF is
    /// satisfiable with those atom values fixed.
    fn check_encoding(wff: &Wff, num_atoms: usize) {
        assert!(num_atoms <= 12);
        for mask in 0u32..(1 << num_atoms) {
            let expected = wff.clone().eval(&mut |x: &AtomId| (mask >> x.0) & 1 == 1);
            let mut ts = Tseitin::new(num_atoms);
            ts.assert_true(wff);
            let cnf = ts.finish();
            let mut s = cnf.into_solver();
            for v in 0..num_atoms {
                let bit = (mask >> v) & 1 == 1;
                s.add_clause(&[Lit::new(Var(v as u32), bit)]);
            }
            assert_eq!(
                s.solve().is_sat(),
                expected,
                "encoding mismatch for {wff:?} under mask {mask:b}"
            );
        }
    }

    #[test]
    fn encodes_connectives_correctly() {
        check_encoding(&Wff::and2(a(0), a(1)), 2);
        check_encoding(&Wff::or2(a(0), a(1)), 2);
        check_encoding(&Wff::implies(a(0), a(1)), 2);
        check_encoding(&Wff::iff(a(0), a(1)), 2);
        check_encoding(&a(0).not(), 1);
        check_encoding(&Wff::t(), 1);
        check_encoding(&Wff::f(), 1);
    }

    #[test]
    fn encodes_nested_formulas() {
        let w = Wff::iff(
            Wff::implies(Wff::and2(a(0), a(1).not()), Wff::or2(a(2), a(3))),
            Wff::or2(a(0).not(), a(3)),
        );
        check_encoding(&w, 4);
    }

    #[test]
    fn empty_and_or() {
        check_encoding(&Wff::And(vec![]), 1);
        check_encoding(&Wff::Or(vec![]), 1);
    }

    #[test]
    fn validity_checks() {
        assert!(valid(&Wff::or2(a(0), a(0).not()), 1)); // excluded middle
        assert!(!valid(&a(0), 1));
        assert!(valid(&Wff::implies(Wff::and2(a(0), a(1)), a(0)), 2));
    }

    #[test]
    fn entailment_checks() {
        let p = a(0);
        let p_implies_q = Wff::implies(a(0), a(1));
        assert!(entails(&[&p, &p_implies_q], &a(1), 2)); // modus ponens
        assert!(!entails(&[&p_implies_q], &a(1), 2));
    }

    #[test]
    fn equivalence_checks() {
        // De Morgan.
        let lhs = Wff::and2(a(0), a(1)).not();
        let rhs = Wff::or2(a(0).not(), a(1).not());
        assert!(equivalent(&lhs, &rhs, 2));
        assert!(!equivalent(&a(0), &a(1), 2));
        // The paper's §3.2 point: T and g ∨ ¬g ARE logically equivalent —
        // the update semantics distinguishes them, but the logic must not.
        assert!(equivalent(&Wff::t(), &Wff::or2(a(0), a(0).not()), 1));
    }

    #[test]
    fn satisfiable_conjunction() {
        assert!(satisfiable(&[&a(0), &a(1).not()], 2));
        assert!(!satisfiable(&[&a(0), &a(0).not()], 1));
    }
}
