//! A small string interner.
//!
//! The cost model of §3.6 of the paper assumes that "the names of ground
//! atomic formulas cannot be physically stored with the non-axiomatic wffs
//! they appear in; however, the non-axiomatic wffs may contain pointers into
//! a separate name space". [`Interner`] is that separate name space: every
//! constant and predicate name is stored once, and all structures above it
//! traffic in dense `u32` handles.

use rustc_hash::FxHashMap;

/// Bidirectional map between strings and dense `u32` handles.
///
/// Lookups by name are hash-map time; lookups by handle are a vector index.
/// Handles are allocated densely starting at zero, so they double as indices
/// into side tables.
#[derive(Clone, Default, Debug)]
pub struct Interner {
    names: Vec<Box<str>>,
    ids: FxHashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its handle. Re-interning an existing name
    /// returns the original handle.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id =
            u32::try_from(self.names.len()).expect("interner overflow: more than u32::MAX symbols");
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// Returns the handle for `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Returns the name for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Orders");
        let b = i.intern("InStock");
        let a2 = i.intern("Orders");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Orders");
        assert_eq!(i.resolve(b), "InStock");
    }

    #[test]
    fn ids_are_dense() {
        let mut i = Interner::new();
        for (k, name) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(i.intern(name), k as u32);
        }
        assert_eq!(i.len(), 4);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let id = i.intern("x");
        assert_eq!(i.get("x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_allocation_order() {
        let mut i = Interner::new();
        i.intern("p");
        i.intern("q");
        let pairs: Vec<_> = i.iter().map(|(id, n)| (id, n.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "p".to_owned()), (1, "q".to_owned())]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
