//! Model enumeration — computing the alternative worlds of a set of wffs.
//!
//! An alternative world of a theory is "a set of truth valuations for all
//! the ground atomic formulas of T of arity 1 or more, such that S holds
//! for some model M of T" (§2). Operationally: enumerate the models of the
//! conjunction of the theory's wffs, then project away predicate-constant
//! variables — two models that agree on everything except predicate
//! constants represent the same alternative world.
//!
//! Two engines are provided: [`enumerate_models`] (SAT with blocking
//! clauses, projected onto a caller-chosen variable set) and
//! [`enumerate_models_brute`] (exhaustive truth-table sweep), used to
//! cross-validate each other in tests.

use crate::bitset::BitSet;
use crate::cnf::Tseitin;
use crate::error::LogicError;
use crate::sat::{Lit, SatResult, Var};
use crate::{AtomId, Wff};

/// Cap on the number of models an enumeration may produce.
///
/// The cap is **inclusive**: an enumeration with exactly `ModelLimit(n)`
/// models succeeds and returns all `n`; discovering an `(n+1)`-th model
/// aborts with [`LogicError::TooManyModels`] *before* the excess model is
/// admitted to the result set.
#[derive(Clone, Copy, Debug)]
pub struct ModelLimit(pub usize);

impl Default for ModelLimit {
    fn default() -> Self {
        // Generous for tests and the baseline engine; branching updates can
        // double the world count, so callers doing repeated updates should
        // set their own budget.
        ModelLimit(1 << 20)
    }
}

/// Enumerates the models of the conjunction of `wffs`, projected onto the
/// atoms selected by `projection` (atom indices). Returns each projected
/// model exactly once, sorted for determinism.
///
/// `num_atoms` is the size of the atom universe; every atom of every wff
/// must lie below it. Atoms in the universe but not in any wff are *free*
/// and will take both values, multiplying models — this is intentional: the
/// universe is the completion-axiom atom list, and an atom unconstrained by
/// the non-axiomatic section genuinely may be either true or false... except
/// that in a legal extended relational theory every registered atom is
/// mentioned somewhere. Callers control the universe.
pub fn enumerate_models(
    wffs: &[&Wff],
    num_atoms: usize,
    projection: &BitSet,
    limit: ModelLimit,
) -> Result<Vec<BitSet>, LogicError> {
    let mut ts = Tseitin::new(num_atoms);
    for w in wffs {
        ts.assert_true(w);
    }
    let cnf = ts.finish();
    let mut solver = cnf.into_solver();
    let proj_vars: Vec<usize> = projection.ones().filter(|&i| i < num_atoms).collect();

    let mut out: Vec<BitSet> = Vec::new();
    loop {
        match solver.solve() {
            SatResult::Unsat => break,
            SatResult::Sat(model) => {
                let mut world = BitSet::zeros(num_atoms);
                for &i in &proj_vars {
                    if model[i] {
                        world.set(i, true);
                    }
                }
                // Block this projected model: at least one projected
                // variable must differ.
                let block: Vec<Lit> = proj_vars
                    .iter()
                    .map(|&i| Lit::new(Var(i as u32), !model[i]))
                    .collect();
                if out.len() == limit.0 {
                    // Inclusive cap: the model just found would be the
                    // (limit+1)-th — abort without admitting it.
                    return Err(LogicError::TooManyModels { limit: limit.0 });
                }
                out.push(world);
                if block.is_empty() || !solver.add_clause(&block) {
                    break; // no projected vars, or blocking made it unsat
                }
            }
        }
    }
    out.sort_by(|a, b| {
        a.ones()
            .collect::<Vec<_>>()
            .cmp(&b.ones().collect::<Vec<_>>())
    });
    out.dedup();
    Ok(out)
}

/// Exhaustively enumerates models by truth-table sweep (universe ≤ 24
/// atoms). Used to cross-validate the SAT-based enumerator.
pub fn enumerate_models_brute(
    wffs: &[&Wff],
    num_atoms: usize,
    projection: &BitSet,
) -> Result<Vec<BitSet>, LogicError> {
    if num_atoms > 24 {
        return Err(LogicError::TooManyModels { limit: 1 << 24 });
    }
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << num_atoms) {
        let ok = wffs
            .iter()
            .all(|w| w.eval(&mut |a: &AtomId| (mask >> a.0) & 1 == 1));
        if ok {
            let mut world = BitSet::zeros(num_atoms);
            for i in 0..num_atoms {
                if (mask >> i) & 1 == 1 && projection.get(i) {
                    world.set(i, true);
                }
            }
            out.push(world);
        }
    }
    out.sort_by(|a, b| {
        a.ones()
            .collect::<Vec<_>>()
            .cmp(&b.ones().collect::<Vec<_>>())
    });
    out.dedup();
    Ok(out)
}

/// The full projection (all atoms visible).
pub fn full_projection(num_atoms: usize) -> BitSet {
    (0..num_atoms).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;

    fn a(i: u32) -> Wff {
        Formula::Atom(AtomId(i))
    }

    fn check_agreement(wffs: &[&Wff], num_atoms: usize, projection: &BitSet) -> Vec<BitSet> {
        let sat = enumerate_models(wffs, num_atoms, projection, ModelLimit::default()).unwrap();
        let brute = enumerate_models_brute(wffs, num_atoms, projection).unwrap();
        assert_eq!(sat, brute, "SAT and brute-force enumeration disagree");
        sat
    }

    #[test]
    fn paper_example_insert_a_or_b() {
        // §3.2: inserting a ∨ b yields three (truth assignments to {a,b}):
        // {a,b}, {a}, {b}.
        let w = Wff::or2(a(0), a(1));
        let models = check_agreement(&[&w], 2, &full_projection(2));
        assert_eq!(models.len(), 3);
    }

    #[test]
    fn paper_example_two_worlds() {
        // §3.3: non-axiomatic section {a, a ∨ b} has models {a} and {a,b}.
        let w1 = a(0);
        let w2 = Wff::or2(a(0), a(1));
        let models = check_agreement(&[&w1, &w2], 2, &full_projection(2));
        assert_eq!(models.len(), 2);
        let sizes: Vec<usize> = models.iter().map(BitSet::count_ones).collect();
        assert!(sizes.contains(&1) && sizes.contains(&2));
    }

    #[test]
    fn projection_merges_models() {
        // Over {a, p} with no constraints there are 4 models but only 2
        // projected worlds when p is invisible.
        let w = Wff::t();
        let mut proj = BitSet::zeros(2);
        proj.set(0, true);
        let models = check_agreement(&[&w], 2, &proj);
        assert_eq!(models.len(), 2);
    }

    #[test]
    fn unsat_theory_has_no_worlds() {
        let w = Wff::and2(a(0), a(0).not());
        let models = check_agreement(&[&w], 1, &full_projection(1));
        assert!(models.is_empty());
    }

    #[test]
    fn empty_projection_yields_single_world_if_sat() {
        let w = Wff::or2(a(0), a(1));
        let proj = BitSet::zeros(2);
        let models = check_agreement(&[&w], 2, &proj);
        assert_eq!(models.len(), 1);
    }

    #[test]
    fn limit_enforced() {
        let r = enumerate_models(&[&Wff::t()], 10, &full_projection(10), ModelLimit(5));
        assert!(matches!(r, Err(LogicError::TooManyModels { limit: 5 })));
    }

    #[test]
    fn limit_boundary_is_inclusive() {
        // Free universe of 3 atoms has exactly 8 models.
        let w = Wff::t();
        // Exactly at the cap: all 8 models are returned.
        let ok = enumerate_models(&[&w], 3, &full_projection(3), ModelLimit(8)).unwrap();
        assert_eq!(ok.len(), 8);
        // One below the cap: the 8th model must error, and must do so
        // without having admitted a (limit+1)-th partial result.
        let r = enumerate_models(&[&w], 3, &full_projection(3), ModelLimit(7));
        assert!(matches!(r, Err(LogicError::TooManyModels { limit: 7 })));
    }

    #[test]
    fn paper_branching_example_four_worlds() {
        // §3.3 branching example final theory over atoms {a=0, b=1, c=2,
        // p_a=3, p_c=4}:
        //   p_a, p_a ∨ b, ¬p_c,
        //   (b ∧ p_a) → (c ∨ a),
        //   ¬(b ∧ p_a) → (p_a ↔ a),
        //   ¬(b ∧ p_a) → (p_c ↔ c)
        // has 4 models / 4 alternative worlds (projection hides p_a, p_c):
        //   {a}, {b,c}, {b,a}, {b,c,a}.
        let pa = a(3);
        let pc = a(4);
        let sel = Wff::and2(a(1), pa.clone());
        let wffs: Vec<Wff> = vec![
            pa.clone(),
            Wff::or2(pa.clone(), a(1)),
            pc.clone().not(),
            Wff::implies(sel.clone(), Wff::or2(a(2), a(0))),
            Wff::implies(sel.clone().not(), Wff::iff(pa.clone(), a(0))),
            Wff::implies(sel.not(), Wff::iff(pc, a(2))),
        ];
        let refs: Vec<&Wff> = wffs.iter().collect();
        let mut proj = BitSet::zeros(5);
        for i in 0..3 {
            proj.set(i, true);
        }
        let models = check_agreement(&refs, 5, &proj);
        let expected: Vec<BitSet> = vec![
            [0usize].into_iter().collect(),
            [0usize, 1].into_iter().collect(),
            [0usize, 1, 2].into_iter().collect(),
            [1usize, 2].into_iter().collect(),
        ];
        let mut expected = expected;
        expected.sort_by_key(|x| x.ones().collect::<Vec<_>>());
        assert_eq!(models, expected);
    }

    #[test]
    fn random_formulas_agree() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..100 {
            let n = 2 + (next() % 5) as usize;
            let w = random_wff(&mut next, n, 3);
            check_agreement(&[&w], n, &full_projection(n));
        }
    }

    fn random_wff(next: &mut impl FnMut() -> u64, num_atoms: usize, depth: usize) -> Wff {
        if depth == 0 || next().is_multiple_of(4) {
            return match next() % 5 {
                0 => Wff::t(),
                1 => Wff::f(),
                _ => a((next() % num_atoms as u64) as u32),
            };
        }
        match next() % 5 {
            0 => random_wff(next, num_atoms, depth - 1).not(),
            1 => Wff::and2(
                random_wff(next, num_atoms, depth - 1),
                random_wff(next, num_atoms, depth - 1),
            ),
            2 => Wff::or2(
                random_wff(next, num_atoms, depth - 1),
                random_wff(next, num_atoms, depth - 1),
            ),
            3 => Wff::implies(
                random_wff(next, num_atoms, depth - 1),
                random_wff(next, num_atoms, depth - 1),
            ),
            _ => Wff::iff(
                random_wff(next, num_atoms, depth - 1),
                random_wff(next, num_atoms, depth - 1),
            ),
        }
    }
}
