//! Read/write access sets over ground atoms — the pairwise-independence
//! primitive behind conflict graphs.
//!
//! A ground statement's *footprint* is the pair of atom sets it reads
//! (atoms whose values select its behaviour) and writes (atoms whose
//! values it can change). Two footprints are **independent** when each
//! one's write set is disjoint from the other's read∪write set — the
//! classic conflict-serializability condition, instantiated at ground-atom
//! granularity. Independence of ground LDML updates at this level is
//! *sound* for commutation: unmentioned atoms persist under the §3.2
//! minimal-change semantics, so two updates whose footprints are
//! independent act on disjoint coordinates of every world and compose in
//! either order to the same world set (`winslett-ldml` cross-validates
//! this against the per-world semantics).
//!
//! The sets are kept at atom granularity — for ground updates every atom
//! is a fully-applied constant tuple, so this *is* the constant-argument
//! refinement (`InStock(p3)` conflicts with `InStock(p3)` but not with
//! `InStock(p7)`). [`AccessSet::read_preds`]/[`AccessSet::write_preds`]
//! project to predicate granularity (`InStock(*)`) for coarser consumers
//! such as lock tables.

use crate::atoms::AtomTable;
use crate::symbols::PredId;
use crate::AtomId;
use std::collections::BTreeSet;

/// The read and write atom sets of one ground statement.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct AccessSet {
    /// Atoms whose current values the statement observes.
    pub reads: BTreeSet<AtomId>,
    /// Atoms whose values the statement can change.
    pub writes: BTreeSet<AtomId>,
    /// Whether the statement can delete worlds outright (an `ASSERT`, or
    /// an INSERT whose ω is the constant `F`). World deletion changes the
    /// certain/possible status of arbitrary atoms at the theory level, so
    /// a pruning statement conflicts with everything except other pure
    /// no-ops — the conservative over-approximation documented in
    /// `docs/analyzer.md`.
    pub prunes: bool,
}

impl AccessSet {
    /// Builds an access set from explicit atom collections.
    pub fn new(
        reads: impl IntoIterator<Item = AtomId>,
        writes: impl IntoIterator<Item = AtomId>,
    ) -> Self {
        AccessSet {
            reads: reads.into_iter().collect(),
            writes: writes.into_iter().collect(),
            prunes: false,
        }
    }

    /// Marks the statement as world-pruning (see [`AccessSet::prunes`]).
    pub fn with_prunes(mut self, prunes: bool) -> Self {
        self.prunes = prunes;
        self
    }

    /// All atoms the statement touches, read or write.
    pub fn touched(&self) -> BTreeSet<AtomId> {
        self.reads.union(&self.writes).copied().collect()
    }

    /// The read set projected to predicate granularity.
    pub fn read_preds(&self, atoms: &AtomTable) -> BTreeSet<PredId> {
        self.reads.iter().map(|&a| atoms.resolve(a).pred).collect()
    }

    /// The write set projected to predicate granularity.
    pub fn write_preds(&self, atoms: &AtomTable) -> BTreeSet<PredId> {
        self.writes.iter().map(|&a| atoms.resolve(a).pred).collect()
    }

    /// Whether `self`'s writes intersect `other`'s read∪write set.
    fn writes_into(&self, other: &AccessSet) -> bool {
        self.writes
            .iter()
            .any(|a| other.reads.contains(a) || other.writes.contains(a))
    }

    /// Whether the statement is the identity transformation: it writes no
    /// atom and prunes no world, so regardless of what it reads it maps
    /// every world to itself and commutes with everything.
    pub fn is_noop(&self) -> bool {
        !self.prunes && self.writes.is_empty()
    }

    /// The pairwise commutativity entry point: two statements are
    /// syntactically independent iff each one's write set is disjoint
    /// from the other's read∪write set and neither prunes worlds. A
    /// statement that is a [no-op](AccessSet::is_noop) is independent of
    /// everything; otherwise a pruning statement conflicts with everything
    /// — it can remove the very worlds the other statement's selection
    /// observes.
    ///
    /// Symmetric: `a.independent(b) == b.independent(a)`.
    pub fn independent(&self, other: &AccessSet) -> bool {
        if self.is_noop() || other.is_noop() {
            return true;
        }
        if self.prunes || other.prunes {
            return false;
        }
        !self.writes_into(other) && !other.writes_into(self)
    }

    /// The complement of [`AccessSet::independent`], with the shared atoms
    /// that witness the conflict (empty when the conflict is due to
    /// pruning alone).
    pub fn conflict_witness(&self, other: &AccessSet) -> Option<Vec<AtomId>> {
        if self.independent(other) {
            return None;
        }
        let mut shared: BTreeSet<AtomId> = BTreeSet::new();
        for a in &self.writes {
            if other.reads.contains(a) || other.writes.contains(a) {
                shared.insert(*a);
            }
        }
        for a in &other.writes {
            if self.reads.contains(a) || self.writes.contains(a) {
                shared.insert(*a);
            }
        }
        Some(shared.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<AtomId> {
        xs.iter().map(|&i| AtomId(i)).collect()
    }

    #[test]
    fn disjoint_footprints_are_independent() {
        let a = AccessSet::new(ids(&[0]), ids(&[1]));
        let b = AccessSet::new(ids(&[2]), ids(&[3]));
        assert!(a.independent(&b));
        assert!(b.independent(&a));
        assert_eq!(a.conflict_witness(&b), None);
    }

    #[test]
    fn write_read_overlap_conflicts() {
        // a writes atom 1; b reads atom 1.
        let a = AccessSet::new(ids(&[0]), ids(&[1]));
        let b = AccessSet::new(ids(&[1]), ids(&[2]));
        assert!(!a.independent(&b));
        assert!(!b.independent(&a));
        assert_eq!(a.conflict_witness(&b), Some(ids(&[1])));
    }

    #[test]
    fn write_write_overlap_conflicts() {
        let a = AccessSet::new(ids(&[]), ids(&[1]));
        let b = AccessSet::new(ids(&[]), ids(&[1]));
        assert!(!a.independent(&b));
        assert_eq!(a.conflict_witness(&b), Some(ids(&[1])));
    }

    #[test]
    fn read_read_overlap_is_independent() {
        let a = AccessSet::new(ids(&[0]), ids(&[1]));
        let b = AccessSet::new(ids(&[0]), ids(&[2]));
        assert!(a.independent(&b));
    }

    #[test]
    fn pruning_conflicts_with_everything_but_noops() {
        let a = AccessSet::new(ids(&[0]), ids(&[])).with_prunes(true);
        let b = AccessSet::new(ids(&[2]), ids(&[3]));
        assert!(!a.independent(&b));
        assert!(!b.independent(&a));
        // The witness is empty: the conflict is the pruning itself.
        assert_eq!(a.conflict_witness(&b), Some(Vec::new()));
        // A no-op (no writes, no pruning) commutes even with a pruner.
        let noop = AccessSet::new(ids(&[0, 2]), ids(&[]));
        assert!(noop.is_noop());
        assert!(a.independent(&noop) && noop.independent(&a));
        assert!(!AccessSet::default().with_prunes(true).is_noop());
    }

    #[test]
    fn touched_unions_both_sets() {
        let a = AccessSet::new(ids(&[0, 1]), ids(&[1, 2]));
        assert_eq!(a.touched(), ids(&[0, 1, 2]).into_iter().collect());
    }
}
