//! Interned ground atomic formulas.
//!
//! A ground atomic formula such as `Orders(700, 32, 9)` is a predicate
//! applied to constants. The [`AtomTable`] interns each distinct atom once
//! and hands out dense [`AtomId`]s; the table is the "index … per predicate,
//! so that lookup and insertion time is O(log R)" required by the §3.6 cost
//! model (we use hash maps for the global intern step and `BTreeMap`s for
//! the per-predicate indices kept in `winslett-theory`).

use crate::symbols::{ConstId, PredId, PredicateKind, Vocabulary};
use crate::AtomId;
use rustc_hash::FxHashMap;
use smallvec::SmallVec;
use std::fmt;

/// A ground atomic formula: a predicate applied to zero or more constants.
///
/// Predicate constants are `GroundAtom`s with an empty argument list.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundAtom {
    /// The predicate being applied.
    pub pred: PredId,
    /// The constant arguments, in positional order.
    pub args: SmallVec<[ConstId; 3]>,
}

impl GroundAtom {
    /// Builds an atom from a predicate and argument slice.
    pub fn new(pred: PredId, args: &[ConstId]) -> Self {
        GroundAtom {
            pred,
            args: SmallVec::from_slice(args),
        }
    }

    /// Builds a 0-ary atom (a predicate constant occurrence).
    pub fn nullary(pred: PredId) -> Self {
        GroundAtom {
            pred,
            args: SmallVec::new(),
        }
    }

    /// Renders the atom using the names in `vocab`.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> AtomDisplay<'a> {
        AtomDisplay { atom: self, vocab }
    }
}

/// Helper returned by [`GroundAtom::display`].
pub struct AtomDisplay<'a> {
    atom: &'a GroundAtom,
    vocab: &'a Vocabulary,
}

impl fmt::Display for AtomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.vocab.predicate(self.atom.pred);
        write!(f, "{}", p.name)?;
        if !self.atom.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.atom.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.vocab.constant_name(*a))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Interning table for ground atoms.
///
/// Every distinct ground atom receives a dense [`AtomId`]; the id space is
/// shared between ordinary atoms and predicate constants so that formulas,
/// valuations, and SAT variables can all be indexed by one `u32`.
#[derive(Clone, Default, Debug)]
pub struct AtomTable {
    atoms: Vec<GroundAtom>,
    ids: FxHashMap<GroundAtom, AtomId>,
}

impl AtomTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `atom`, returning its id. Idempotent.
    pub fn intern(&mut self, atom: GroundAtom) -> AtomId {
        if let Some(&id) = self.ids.get(&atom) {
            return id;
        }
        let id = AtomId(u32::try_from(self.atoms.len()).expect("atom table overflow"));
        self.atoms.push(atom.clone());
        self.ids.insert(atom, id);
        id
    }

    /// Convenience: interns `pred(args…)`.
    pub fn intern_app(&mut self, pred: PredId, args: &[ConstId]) -> AtomId {
        self.intern(GroundAtom::new(pred, args))
    }

    /// Looks up an atom without interning it.
    pub fn get(&self, atom: &GroundAtom) -> Option<AtomId> {
        self.ids.get(atom).copied()
    }

    /// Returns the atom for `id`.
    pub fn resolve(&self, id: AtomId) -> &GroundAtom {
        &self.atoms[id.index()]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over `(id, atom)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &GroundAtom)> {
        self.atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (AtomId(i as u32), a))
    }

    /// Whether `id` denotes a predicate-constant occurrence (checked against
    /// the vocabulary's predicate kinds).
    pub fn is_predicate_constant(&self, id: AtomId, vocab: &Vocabulary) -> bool {
        vocab.predicate(self.resolve(id).pred).kind == PredicateKind::PredicateConstant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::PredicateKind;

    fn vocab_with_orders() -> (Vocabulary, PredId, Vec<ConstId>) {
        let mut v = Vocabulary::new();
        let p = v
            .declare_predicate("Orders", 3, PredicateKind::Relation)
            .unwrap();
        let cs = ["700", "32", "9"].iter().map(|c| v.constant(c)).collect();
        (v, p, cs)
    }

    #[test]
    fn intern_is_idempotent() {
        let (_, p, cs) = vocab_with_orders();
        let mut t = AtomTable::new();
        let a1 = t.intern_app(p, &cs);
        let a2 = t.intern_app(p, &cs);
        assert_eq!(a1, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_args_distinct_ids() {
        let (_, p, cs) = vocab_with_orders();
        let mut t = AtomTable::new();
        let a1 = t.intern_app(p, &cs);
        let a2 = t.intern_app(p, &[cs[0], cs[1], cs[1]]);
        assert_ne!(a1, a2);
        assert_eq!(t.resolve(a1).args.as_slice(), cs.as_slice());
    }

    #[test]
    fn display_matches_paper_syntax() {
        let (v, p, cs) = vocab_with_orders();
        let atom = GroundAtom::new(p, &cs);
        assert_eq!(atom.display(&v).to_string(), "Orders(700,32,9)");
    }

    #[test]
    fn nullary_atom_display_has_no_parens() {
        let mut v = Vocabulary::new();
        let p = v.fresh_predicate_constant();
        let atom = GroundAtom::nullary(p);
        let s = atom.display(&v).to_string();
        assert!(s.starts_with("__p"));
        assert!(!s.contains('('));
    }

    #[test]
    fn predicate_constant_detection() {
        let mut v = Vocabulary::new();
        let r = v
            .declare_predicate("R", 1, PredicateKind::Relation)
            .unwrap();
        let c = v.constant("a");
        let pc = v.fresh_predicate_constant();
        let mut t = AtomTable::new();
        let ra = t.intern_app(r, &[c]);
        let pa = t.intern(GroundAtom::nullary(pc));
        assert!(!t.is_predicate_constant(ra, &v));
        assert!(t.is_predicate_constant(pa, &v));
    }

    #[test]
    fn get_does_not_intern() {
        let (_, p, cs) = vocab_with_orders();
        let mut t = AtomTable::new();
        let probe = GroundAtom::new(p, &cs);
        assert_eq!(t.get(&probe), None);
        let id = t.intern(probe.clone());
        assert_eq!(t.get(&probe), Some(id));
    }
}
