//! A compact growable bitset.
//!
//! Alternative worlds are "truth valuations for all the ground atomic
//! formulas of T" (§2) — a dense bit per atom. The possible-worlds baseline
//! engine materializes many of these, so the representation matters: one
//! `u64` word per 64 atoms, with fast equality/hashing so worlds can be
//! deduplicated in hash sets.

use std::fmt;

const BITS: usize = 64;

/// A fixed-capacity-free, growable set of bits.
///
/// Equality and hashing are *semantic*: two bitsets are equal iff they have
/// the same set bits, regardless of logical length or capacity.
#[derive(Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Logical length in bits; bits at index ≥ `len` are always zero.
    len: usize,
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short.iter().zip(long.iter()).all(|(a, b)| a == b)
            && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for BitSet {}

impl std::hash::Hash for BitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash only up to the last nonzero word so equal sets hash equally.
        let last = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        self.words[..last].hash(state);
    }
}

impl BitSet {
    /// Creates an empty bitset of logical length 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitset of logical length `len`, all bits clear.
    pub fn zeros(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Logical length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is 0.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grows the logical length to at least `len` bits (new bits clear).
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            let need = len.div_ceil(BITS);
            if need > self.words.len() {
                self.words.resize(need, 0);
            }
        }
    }

    /// Returns bit `i`. Out-of-range bits read as `false`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / BITS] >> (i % BITS)) & 1 != 0
    }

    /// Sets bit `i` to `value`, growing if needed.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        if i >= self.len {
            self.grow(i + 1);
        }
        let w = &mut self.words[i / BITS];
        let mask = 1u64 << (i % BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flips bit `i`, growing if needed.
    #[inline]
    pub fn toggle(&mut self, i: usize) {
        let v = self.get(i);
        self.set(i, !v);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Clears all bits, keeping the logical length.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Restricts this set to bits also present in `mask` (bitwise AND).
    ///
    /// The logical length stays the same; mask bits beyond `mask.len()` are
    /// treated as zero.
    pub fn intersect_with(&mut self, mask: &BitSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= mask.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Returns a copy restricted to `mask` (used to project models onto the
    /// externally visible atoms — dropping predicate constants).
    pub fn masked(&self, mask: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(mask);
        out
    }
}

/// Iterator over set-bit indices. See [`BitSet::ones`].
pub struct Ones<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * BITS + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet{{")?;
        for (k, i) in self.ones().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.set(i, true);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::new();
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(200, true);
        assert!(b.get(0));
        assert!(b.get(63));
        assert!(b.get(64));
        assert!(b.get(200));
        assert!(!b.get(1));
        assert!(!b.get(199));
        assert!(!b.get(10_000));
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn ones_iterates_in_order() {
        let b: BitSet = [5usize, 64, 3, 128].into_iter().collect();
        let v: Vec<_> = b.ones().collect();
        assert_eq!(v, vec![3, 5, 64, 128]);
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let mut a = BitSet::zeros(10);
        a.set(3, true);
        let mut b = BitSet::new();
        b.set(3, true);
        b.grow(10);
        assert_eq!(a, b);
    }

    #[test]
    fn toggle_flips() {
        let mut b = BitSet::zeros(4);
        b.toggle(2);
        assert!(b.get(2));
        b.toggle(2);
        assert!(!b.get(2));
    }

    #[test]
    fn masked_projects() {
        let world: BitSet = [0usize, 1, 2, 3].into_iter().collect();
        let visible: BitSet = [0usize, 2].into_iter().collect();
        let proj = world.masked(&visible);
        assert_eq!(proj.ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn clear_keeps_length() {
        let mut b: BitSet = [1usize, 65].into_iter().collect();
        let len = b.len();
        b.clear();
        assert_eq!(b.len(), len);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn set_false_beyond_len_grows_without_setting() {
        let mut b = BitSet::new();
        b.set(70, false);
        assert_eq!(b.len(), 71);
        assert_eq!(b.count_ones(), 0);
    }
}
