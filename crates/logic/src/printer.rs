//! Pretty-printing of wffs in the same concrete syntax the parser accepts,
//! so that `parse(print(w)) == w` (up to the flattening the smart
//! constructors perform — see the round-trip property test).

use crate::atoms::AtomTable;
use crate::formula::{Formula, Wff};
use crate::symbols::Vocabulary;
use std::fmt;

/// Binding strength, used to decide where parentheses are required.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Iff = 0,
    Imp = 1,
    Or = 2,
    And = 3,
    Neg = 4,
    Atom = 5,
}

/// Lazily formats `wff` using the names in `vocab`/`atoms`.
pub fn display_wff<'a>(
    wff: &'a Wff,
    vocab: &'a Vocabulary,
    atoms: &'a AtomTable,
) -> WffDisplay<'a> {
    WffDisplay { wff, vocab, atoms }
}

/// Helper returned by [`display_wff`]; implements [`fmt::Display`].
pub struct WffDisplay<'a> {
    wff: &'a Wff,
    vocab: &'a Vocabulary,
    atoms: &'a AtomTable,
}

impl fmt::Display for WffDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_prec(self.wff, self.vocab, self.atoms, Prec::Iff, f)
    }
}

fn write_prec(
    w: &Wff,
    vocab: &Vocabulary,
    atoms: &AtomTable,
    ambient: Prec,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let mine = prec_of(w);
    let need_parens = mine < ambient;
    if need_parens {
        write!(f, "(")?;
    }
    match w {
        Formula::Truth(true) => write!(f, "T")?,
        Formula::Truth(false) => write!(f, "F")?,
        Formula::Atom(id) => write!(f, "{}", atoms.resolve(*id).display(vocab))?,
        Formula::Not(x) => {
            write!(f, "!")?;
            write_prec(x, vocab, atoms, Prec::Neg, f)?;
        }
        Formula::And(xs) => {
            if xs.is_empty() {
                write!(f, "T")?;
            }
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write_prec(x, vocab, atoms, Prec::Neg, f)?;
            }
        }
        Formula::Or(xs) => {
            if xs.is_empty() {
                write!(f, "F")?;
            }
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write_prec(x, vocab, atoms, Prec::And, f)?;
            }
        }
        Formula::Implies(a, b) => {
            write_prec(a, vocab, atoms, Prec::Or, f)?;
            write!(f, " -> ")?;
            // Right-associative: the rhs may be another implication without
            // parentheses.
            write_prec(b, vocab, atoms, Prec::Imp, f)?;
        }
        Formula::Iff(a, b) => {
            write_prec(a, vocab, atoms, Prec::Imp, f)?;
            write!(f, " <-> ")?;
            write_prec(b, vocab, atoms, Prec::Imp, f)?;
        }
    }
    if need_parens {
        write!(f, ")")?;
    }
    Ok(())
}

fn prec_of(w: &Wff) -> Prec {
    match w {
        Formula::Truth(_) | Formula::Atom(_) => Prec::Atom,
        Formula::Not(_) => Prec::Neg,
        Formula::And(xs) => {
            if xs.len() <= 1 {
                Prec::Atom
            } else {
                Prec::And
            }
        }
        Formula::Or(xs) => {
            if xs.len() <= 1 {
                Prec::Atom
            } else {
                Prec::Or
            }
        }
        Formula::Implies(_, _) => Prec::Imp,
        Formula::Iff(_, _) => Prec::Iff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_wff, ParseContext};

    fn roundtrip(src: &str) -> (String, Wff, Wff) {
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let w = parse_wff(src, &mut ctx).unwrap();
        let printed = display_wff(&w, &v, &t).to_string();
        let mut ctx2 = ParseContext::permissive(&mut v, &mut t);
        let reparsed = parse_wff(&printed, &mut ctx2).unwrap();
        (printed, w, reparsed)
    }

    #[test]
    fn roundtrip_simple() {
        for src in [
            "T",
            "F",
            "Orders(700,32,9)",
            "!a",
            "a & b & c",
            "a | b | c",
            "a -> b",
            "a <-> b",
            "(a | b) & c",
            "a | b & c",
            "!(a -> b)",
            "a -> b -> c",
            "!(a <-> b) | (c & !d)",
        ] {
            let (printed, w, reparsed) = roundtrip(src);
            assert_eq!(w, reparsed, "roundtrip failed for `{src}` via `{printed}`");
        }
    }

    #[test]
    fn printing_matches_paper_style() {
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let w = parse_wff("(b & p_a) -> (!a & a1)", &mut ctx).unwrap();
        let s = display_wff(&w, &v, &t).to_string();
        assert_eq!(s, "b & p_a -> !a & a1");
    }

    #[test]
    fn nullary_atoms_and_truths_print_bare() {
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let w = parse_wff("p & T | F", &mut ctx).unwrap();
        let s = display_wff(&w, &v, &t).to_string();
        assert_eq!(s, "p & T | F");
    }

    #[test]
    fn deeply_nested_roundtrip() {
        let src = "((a -> b) <-> (c | (d & !e))) & !(f -> (g <-> h))";
        let (printed, w, reparsed) = roundtrip(src);
        assert_eq!(w, reparsed, "via `{printed}`");
    }

    #[test]
    fn single_element_and_or_print_without_connective() {
        // And/Or with one element print as the element itself.
        let mut v = Vocabulary::new();
        let mut t = AtomTable::new();
        let mut ctx = ParseContext::permissive(&mut v, &mut t);
        let a = parse_wff("a", &mut ctx).unwrap();
        let one_and = Formula::And(vec![a.clone()]);
        let s = display_wff(&one_and, &v, &t).to_string();
        assert_eq!(s, "a");
        let one_or = Formula::Or(vec![a]);
        let s = display_wff(&one_or, &v, &t).to_string();
        assert_eq!(s, "a");
    }

    #[test]
    fn parens_preserved_where_needed() {
        let (printed, _, _) = roundtrip("(a | b) & c");
        assert!(printed.contains('('), "needed parens dropped: {printed}");
        let (printed2, _, _) = roundtrip("a | b & c");
        assert!(!printed2.contains('('), "spurious parens added: {printed2}");
    }
}
