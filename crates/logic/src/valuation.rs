//! Truth valuations over the atom universe.
//!
//! The paper's Theorem 3 works with *valuations*: "a set of truth
//! assignments to all the ground atomic formulas of a wff". [`Valuation`]
//! is a partial assignment — each atom is either unassigned or assigned a
//! boolean — so it can represent both the total valuations of alternative
//! worlds and the projected valuations `v₂ ⊆ v₁` of Theorem 3.

use crate::bitset::BitSet;
use crate::AtomId;

/// A partial truth assignment over [`AtomId`]s.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct Valuation {
    values: BitSet,
    defined: BitSet,
}

impl Valuation {
    /// The empty (everywhere-undefined) valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// A total valuation over atoms `0..n`, everything false.
    pub fn all_false(n: usize) -> Self {
        Valuation {
            values: BitSet::zeros(n),
            defined: (0..n).collect(),
        }
    }

    /// Builds a total valuation over atoms `0..n` from the set of true atoms.
    pub fn from_true_set(true_atoms: &BitSet, n: usize) -> Self {
        let mut v = Valuation::all_false(n);
        for i in true_atoms.ones() {
            v.assign(AtomId(i as u32), true);
        }
        v
    }

    /// Assigns `atom := value`.
    pub fn assign(&mut self, atom: AtomId, value: bool) {
        self.values.set(atom.index(), value);
        self.defined.set(atom.index(), true);
    }

    /// Removes any assignment for `atom`.
    pub fn unassign(&mut self, atom: AtomId) {
        self.values.set(atom.index(), false);
        self.defined.set(atom.index(), false);
    }

    /// The value assigned to `atom`, if any.
    pub fn get(&self, atom: AtomId) -> Option<bool> {
        self.defined
            .get(atom.index())
            .then(|| self.values.get(atom.index()))
    }

    /// Whether `atom` has an assignment.
    pub fn is_defined(&self, atom: AtomId) -> bool {
        self.defined.get(atom.index())
    }

    /// Number of assigned atoms.
    pub fn len(&self) -> usize {
        self.defined.count_ones()
    }

    /// Whether no atom is assigned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(atom, value)` pairs in atom order.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, bool)> + '_ {
        self.defined
            .ones()
            .map(move |i| (AtomId(i as u32), self.values.get(i)))
    }

    /// Restricts to the atoms in `atoms` — the projection `v₂` of Theorem 3.
    pub fn project(&self, atoms: &BitSet) -> Valuation {
        Valuation {
            values: self.values.masked(atoms),
            defined: self.defined.masked(atoms),
        }
    }

    /// Whether `self` agrees with `other` on every atom where *both* are
    /// defined.
    pub fn agrees_with(&self, other: &Valuation) -> bool {
        self.iter()
            .all(|(a, v)| other.get(a).is_none_or(|w| w == v))
    }

    /// Whether every assignment of `other` also holds in `self`
    /// (i.e. `other ⊆ self` as partial functions).
    pub fn extends(&self, other: &Valuation) -> bool {
        other.iter().all(|(a, v)| self.get(a) == Some(v))
    }

    /// The set of true atoms, as a bitset (the alternative-world snapshot).
    pub fn true_set(&self) -> BitSet {
        self.values.clone()
    }
}

impl FromIterator<(AtomId, bool)> for Valuation {
    fn from_iter<I: IntoIterator<Item = (AtomId, bool)>>(iter: I) -> Self {
        let mut v = Valuation::new();
        for (a, b) in iter {
            v.assign(a, b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_get_roundtrip() {
        let mut v = Valuation::new();
        assert_eq!(v.get(AtomId(3)), None);
        v.assign(AtomId(3), true);
        v.assign(AtomId(5), false);
        assert_eq!(v.get(AtomId(3)), Some(true));
        assert_eq!(v.get(AtomId(5)), Some(false));
        assert_eq!(v.get(AtomId(4)), None);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn unassign_removes() {
        let mut v = Valuation::new();
        v.assign(AtomId(1), true);
        v.unassign(AtomId(1));
        assert_eq!(v.get(AtomId(1)), None);
        assert!(v.is_empty());
    }

    #[test]
    fn projection_restricts_domain() {
        let v: Valuation = [(AtomId(0), true), (AtomId(1), false), (AtomId(2), true)]
            .into_iter()
            .collect();
        let mask: BitSet = [0usize, 2].into_iter().collect();
        let p = v.project(&mask);
        assert_eq!(p.get(AtomId(0)), Some(true));
        assert_eq!(p.get(AtomId(1)), None);
        assert_eq!(p.get(AtomId(2)), Some(true));
    }

    #[test]
    fn extends_and_agrees() {
        let total: Valuation = [(AtomId(0), true), (AtomId(1), false)]
            .into_iter()
            .collect();
        let partial: Valuation = [(AtomId(0), true)].into_iter().collect();
        assert!(total.extends(&partial));
        assert!(!partial.extends(&total));
        assert!(partial.agrees_with(&total));
        let conflicting: Valuation = [(AtomId(0), false)].into_iter().collect();
        assert!(!conflicting.agrees_with(&total));
    }

    #[test]
    fn all_false_is_total() {
        let v = Valuation::all_false(4);
        for i in 0..4 {
            assert_eq!(v.get(AtomId(i)), Some(false));
        }
        assert_eq!(v.get(AtomId(4)), None);
    }

    #[test]
    fn from_true_set_roundtrip() {
        let trues: BitSet = [1usize, 3].into_iter().collect();
        let v = Valuation::from_true_set(&trues, 5);
        assert_eq!(v.get(AtomId(0)), Some(false));
        assert_eq!(v.get(AtomId(1)), Some(true));
        assert_eq!(v.get(AtomId(3)), Some(true));
        assert_eq!(v.true_set().ones().collect::<Vec<_>>(), vec![1, 3]);
    }
}
