//! Vocabularies: the language `L` of an extended relational theory.
//!
//! Section 2 of the paper defines the language as a set of constants
//! (attribute-domain elements), a finite set of predicates of arity ≥ 1
//! (database relations and attributes), and an infinite supply of 0-ary
//! *predicate constants* used internally by the update algorithm. The
//! [`Vocabulary`] type holds all three, with dense ids suitable for indexing.
//!
//! Unique-name axioms are structural: two distinct [`ConstId`]s always denote
//! distinct individuals, so `¬(c1 = c2)` never needs to be materialized.

use crate::intern::Interner;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an interned constant (a domain element such as `700`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ConstId(pub u32);

impl ConstId {
    /// Dense index of this constant.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of an interned predicate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PredId(pub u32);

impl PredId {
    /// Dense index of this predicate.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// What role a predicate plays in the theory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PredicateKind {
    /// An ordinary database relation of arity ≥ 1 (e.g. `Orders/3`).
    Relation,
    /// A unary attribute predicate, a member of the distinguished set `A`
    /// used by type axioms (§3.5).
    Attribute,
    /// A 0-ary predicate constant, invisible in alternative worlds. These
    /// are minted by GUA Step 2 and must never appear in queries.
    PredicateConstant,
}

impl PredicateKind {
    /// Whether atoms of this predicate are visible in alternative worlds.
    ///
    /// Per §2: "predicate constants are 'invisible' in alternative worlds".
    #[inline]
    pub fn visible(self) -> bool {
        !matches!(self, PredicateKind::PredicateConstant)
    }
}

/// Metadata for one predicate of the language.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Predicate {
    /// The predicate's name as written in formulas.
    pub name: String,
    /// Number of argument positions. Zero exactly for predicate constants.
    pub arity: usize,
    /// The predicate's role.
    pub kind: PredicateKind,
}

/// The language `L`: interned constants and predicates.
///
/// Predicate constants are allocated from a reserved `__p<N>` namespace via
/// [`Vocabulary::fresh_predicate_constant`], guaranteeing GUA Step 2's
/// requirement of "a new predicate constant not previously appearing in T".
#[derive(Clone, Default, Debug)]
pub struct Vocabulary {
    consts: Interner,
    pred_names: Interner,
    preds: Vec<Predicate>,
    fresh_counter: u64,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a constant name, returning its id. Idempotent.
    pub fn constant(&mut self, name: &str) -> ConstId {
        ConstId(self.consts.intern(name))
    }

    /// Looks up a constant without interning.
    pub fn find_constant(&self, name: &str) -> Option<ConstId> {
        self.consts.get(name).map(ConstId)
    }

    /// Resolves a constant id to its name.
    pub fn constant_name(&self, id: ConstId) -> &str {
        self.consts.resolve(id.0)
    }

    /// Number of constants interned so far.
    pub fn num_constants(&self) -> usize {
        self.consts.len()
    }

    /// Iterates over all constants in allocation order.
    pub fn constants(&self) -> impl Iterator<Item = (ConstId, &str)> {
        self.consts.iter().map(|(id, n)| (ConstId(id), n))
    }

    /// Declares a predicate with the given arity and kind, returning its id.
    ///
    /// Re-declaring an existing name returns the existing id when arity and
    /// kind match, and `None` if they conflict.
    pub fn declare_predicate(
        &mut self,
        name: &str,
        arity: usize,
        kind: PredicateKind,
    ) -> Option<PredId> {
        debug_assert!(
            (arity == 0) == matches!(kind, PredicateKind::PredicateConstant),
            "arity 0 iff predicate constant"
        );
        if let Some(id) = self.pred_names.get(name) {
            let existing = &self.preds[id as usize];
            if existing.arity == arity && existing.kind == kind {
                return Some(PredId(id));
            }
            return None;
        }
        let id = self.pred_names.intern(name);
        debug_assert_eq!(id as usize, self.preds.len());
        self.preds.push(Predicate {
            name: name.to_owned(),
            arity,
            kind,
        });
        Some(PredId(id))
    }

    /// Looks up a predicate by name.
    pub fn find_predicate(&self, name: &str) -> Option<PredId> {
        self.pred_names.get(name).map(PredId)
    }

    /// Returns the metadata for `id`.
    pub fn predicate(&self, id: PredId) -> &Predicate {
        &self.preds[id.index()]
    }

    /// Number of declared predicates (including predicate constants).
    pub fn num_predicates(&self) -> usize {
        self.preds.len()
    }

    /// Iterates over all predicates in declaration order.
    pub fn predicates(&self) -> impl Iterator<Item = (PredId, &Predicate)> {
        self.preds
            .iter()
            .enumerate()
            .map(|(i, p)| (PredId(i as u32), p))
    }

    /// The current value of the fresh-name counter (the `N` of the next
    /// `__pN…` predicate constant to be minted). Persisted by the dump
    /// format of `winslett-core` so a restored theory keeps minting names
    /// disjoint from every name the saved theory ever used — including
    /// names freed by simplification, which no longer appear in the dump.
    pub fn fresh_counter(&self) -> u64 {
        self.fresh_counter
    }

    /// Raises the fresh-name counter to at least `n`. Used on restore; the
    /// counter never moves backwards.
    pub fn bump_fresh_counter_to(&mut self, n: u64) {
        self.fresh_counter = self.fresh_counter.max(n);
    }

    /// Mints a brand-new 0-ary predicate constant, guaranteed not to clash
    /// with any existing predicate. Used by GUA Step 2.
    pub fn fresh_predicate_constant(&mut self) -> PredId {
        loop {
            let name = format!("__p{}", self.fresh_counter);
            self.fresh_counter += 1;
            if self.pred_names.get(&name).is_none() {
                return self
                    .declare_predicate(&name, 0, PredicateKind::PredicateConstant)
                    .expect("fresh name cannot conflict");
            }
        }
    }

    /// Mints a fresh predicate constant whose name records the atom it
    /// replaced, e.g. `__p3_Orders_700_32_9` — purely cosmetic, for
    /// debuggability of update transcripts. The name is sanitized to
    /// identifier characters so printed theories re-parse (see the
    /// persistence layer of `winslett-core`).
    pub fn fresh_predicate_constant_for(&mut self, renamed: &str) -> PredId {
        let tag: String = renamed
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '\'' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        loop {
            let name = format!("__p{}_{}", self.fresh_counter, tag);
            self.fresh_counter += 1;
            if self.pred_names.get(&name).is_none() {
                return self
                    .declare_predicate(&name, 0, PredicateKind::PredicateConstant)
                    .expect("fresh name cannot conflict");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_interned_idempotently() {
        let mut v = Vocabulary::new();
        let a = v.constant("700");
        let b = v.constant("32");
        assert_eq!(v.constant("700"), a);
        assert_ne!(a, b);
        assert_eq!(v.constant_name(a), "700");
        assert_eq!(v.num_constants(), 2);
    }

    #[test]
    fn predicate_declaration_checks_conflicts() {
        let mut v = Vocabulary::new();
        let p = v
            .declare_predicate("Orders", 3, PredicateKind::Relation)
            .unwrap();
        // Same signature: same id.
        assert_eq!(
            v.declare_predicate("Orders", 3, PredicateKind::Relation),
            Some(p)
        );
        // Conflicting arity: rejected.
        assert_eq!(
            v.declare_predicate("Orders", 2, PredicateKind::Relation),
            None
        );
        assert_eq!(v.predicate(p).arity, 3);
        assert_eq!(v.predicate(p).name, "Orders");
    }

    #[test]
    fn fresh_predicate_constants_never_collide() {
        let mut v = Vocabulary::new();
        let p1 = v.fresh_predicate_constant();
        let p2 = v.fresh_predicate_constant();
        assert_ne!(p1, p2);
        assert_eq!(v.predicate(p1).kind, PredicateKind::PredicateConstant);
        assert_eq!(v.predicate(p1).arity, 0);
        assert!(!v.predicate(p1).kind.visible());
    }

    #[test]
    fn fresh_predicate_constant_skips_taken_names() {
        let mut v = Vocabulary::new();
        v.declare_predicate("__p0", 0, PredicateKind::PredicateConstant)
            .unwrap();
        let p = v.fresh_predicate_constant();
        assert_ne!(v.predicate(p).name, "__p0");
    }

    #[test]
    fn visibility_by_kind() {
        assert!(PredicateKind::Relation.visible());
        assert!(PredicateKind::Attribute.visible());
        assert!(!PredicateKind::PredicateConstant.visible());
    }

    #[test]
    fn predicate_iteration_order() {
        let mut v = Vocabulary::new();
        v.declare_predicate("A", 1, PredicateKind::Attribute)
            .unwrap();
        v.declare_predicate("R", 2, PredicateKind::Relation)
            .unwrap();
        let names: Vec<_> = v.predicates().map(|(_, p)| p.name.clone()).collect();
        assert_eq!(names, vec!["A", "R"]);
    }
}
